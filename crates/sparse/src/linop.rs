//! Matrix-free linear operators.
//!
//! The SGLA objective is evaluated at many weight vectors `w`; materializing
//! `L(w) = Σ wᵢ Lᵢ` for each evaluation would cost `O(Σ nnz(Lᵢ))` in
//! allocations alone. [`ScaledSumOp`] instead applies the aggregation lazily
//! inside the Lanczos matvec — the same trick that makes Algorithm 1's
//! per-iteration cost `O(m + qnK)` in the paper's complexity analysis.

use crate::{CsrMatrix, DenseMatrix};

/// A symmetric linear operator given by its matvec action.
pub trait LinOp {
    /// Operator dimension (`n` for an `n × n` operator).
    fn dim(&self) -> usize;

    /// `y ← A x`.
    fn matvec(&self, x: &[f64], y: &mut [f64]);

    /// Batched matvec `Y ← A X` over row-major blocks whose columns are
    /// the vectors (`X`, `Y` both `n × b`). The default applies
    /// [`Self::matvec`] column by column; concrete operators override it
    /// with a single-traversal kernel (see [`CsrMatrix::matvec_block`])
    /// that the block subspace eigensolver relies on. `threads` caps the
    /// worker-pool width for overriding implementations.
    fn matvec_block(&self, x: &DenseMatrix, y: &mut DenseMatrix, threads: usize) {
        let _ = threads;
        let n = self.dim();
        debug_assert_eq!(x.nrows(), n);
        debug_assert_eq!(y.nrows(), n);
        debug_assert_eq!(x.ncols(), y.ncols());
        let mut xc = vec![0.0f64; n];
        let mut yc = vec![0.0f64; n];
        for j in 0..x.ncols() {
            for i in 0..n {
                xc[i] = x[(i, j)];
            }
            self.matvec(&xc, &mut yc);
            for i in 0..n {
                y[(i, j)] = yc[i];
            }
        }
    }

    /// An upper bound on the spectral radius, used by the Lanczos driver to
    /// pick a spectrum-flipping shift. Laplacian-like operators override
    /// this with a tight bound (2.0); the default is a Gershgorin-free
    /// conservative estimate obtained by a few power iterations.
    fn spectral_bound(&self) -> Option<f64> {
        None
    }
}

impl LinOp for CsrMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        CsrMatrix::matvec(self, x, y);
    }

    fn matvec_block(&self, x: &DenseMatrix, y: &mut DenseMatrix, threads: usize) {
        CsrMatrix::matvec_block(self, x, y, threads);
    }

    fn spectral_bound(&self) -> Option<f64> {
        // Gershgorin: max_r Σ_c |A[r,c]|.
        let mut bound = 0.0f64;
        for r in 0..self.nrows() {
            let s: f64 = self.row_vals(r).iter().map(|v| v.abs()).sum();
            bound = bound.max(s);
        }
        Some(bound)
    }
}

/// Lazy weighted sum `Σ wᵢ Aᵢ` of operators sharing a dimension.
///
/// This is the matrix-free form of the paper's Eq. (1); `matvec` costs the
/// sum of the constituents' matvec costs and allocates nothing.
pub struct ScaledSumOp<'a> {
    mats: Vec<&'a CsrMatrix>,
    weights: Vec<f64>,
    dim: usize,
}

impl<'a> ScaledSumOp<'a> {
    /// Creates the lazy sum. Panics in debug builds if shapes differ or the
    /// list is empty (callers validate at the API boundary in `sgla-core`).
    pub fn new(mats: Vec<&'a CsrMatrix>, weights: Vec<f64>) -> Self {
        debug_assert!(!mats.is_empty());
        debug_assert_eq!(mats.len(), weights.len());
        let dim = mats[0].nrows();
        debug_assert!(mats.iter().all(|m| m.nrows() == dim && m.ncols() == dim));
        ScaledSumOp { mats, weights, dim }
    }

    /// Replaces the weights without re-borrowing the matrices; used by the
    /// SGLA iteration to move to the next weight vector for free.
    pub fn set_weights(&mut self, weights: &[f64]) {
        debug_assert_eq!(weights.len(), self.weights.len());
        self.weights.copy_from_slice(weights);
    }

    /// Current weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl LinOp for ScaledSumOp<'_> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        crate::vecops::zero(y);
        for (m, &w) in self.mats.iter().zip(&self.weights) {
            if w != 0.0 {
                m.matvec_acc(w, x, y);
            }
        }
    }

    fn matvec_block(&self, x: &DenseMatrix, y: &mut DenseMatrix, threads: usize) {
        debug_assert_eq!(x.nrows(), self.dim);
        debug_assert_eq!(y.nrows(), self.dim);
        debug_assert_eq!(x.ncols(), y.ncols());
        let b = x.ncols();
        if b == 0 || self.dim == 0 {
            return;
        }
        // One pooled pass over output rows; all views accumulate into
        // the resident row before moving on.
        let mats = &self.mats;
        let weights = &self.weights;
        let mut rows: Vec<&mut [f64]> = y.data_mut().chunks_mut(b).collect();
        crate::parallel::par_chunks_mut(&mut rows, threads, |start, block| {
            for (off, out_row) in block.iter_mut().enumerate() {
                let r = start + off;
                out_row.fill(0.0);
                for (m, &w) in mats.iter().zip(weights) {
                    if w == 0.0 {
                        continue;
                    }
                    for (&c, &v) in m.row_cols(r).iter().zip(m.row_vals(r)) {
                        let wv = w * v;
                        for (o, &xv) in out_row.iter_mut().zip(x.row(c)) {
                            *o += wv * xv;
                        }
                    }
                }
            }
        });
    }

    fn spectral_bound(&self) -> Option<f64> {
        // ‖Σ wᵢ Aᵢ‖ ≤ Σ |wᵢ| ‖Aᵢ‖.
        let mut bound = 0.0;
        for (m, &w) in self.mats.iter().zip(&self.weights) {
            bound += w.abs() * LinOp::spectral_bound(*m)?;
        }
        Some(bound)
    }
}

/// The spectral complement `shift·I − A` of an operator.
///
/// For a normalized Laplacian (`spec(L) ⊆ [0, 2]`) with `shift = 2`, the
/// *smallest* eigenpairs of `L` become the *dominant* eigenpairs of the
/// complement, which is what Lanczos converges to fastest — avoiding any
/// shift-invert linear solves.
pub struct ShiftedNegOp<'a, T: LinOp + ?Sized> {
    inner: &'a T,
    shift: f64,
}

impl<'a, T: LinOp + ?Sized> ShiftedNegOp<'a, T> {
    /// Wraps `inner` as `shift·I − inner`.
    pub fn new(inner: &'a T, shift: f64) -> Self {
        ShiftedNegOp { inner, shift }
    }

    /// The shift in use.
    pub fn shift(&self) -> f64 {
        self.shift
    }
}

impl<T: LinOp + ?Sized> LinOp for ShiftedNegOp<'_, T> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        self.inner.matvec(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = self.shift * xi - *yi;
        }
    }

    fn matvec_block(&self, x: &DenseMatrix, y: &mut DenseMatrix, threads: usize) {
        self.inner.matvec_block(x, y, threads);
        // X and Y share the row-major n × b layout, so the complement is
        // one aligned elementwise pass.
        for (yi, xi) in y.data_mut().iter_mut().zip(x.data()) {
            *yi = self.shift * xi - *yi;
        }
    }

    fn spectral_bound(&self) -> Option<f64> {
        self.inner.spectral_bound().map(|b| b + self.shift.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn laplacian_path3() -> CsrMatrix {
        // Path graph 0-1-2, unnormalized Laplacian.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 2.0).unwrap();
        coo.push(2, 2, 1.0).unwrap();
        coo.push_sym(0, 1, -1.0).unwrap();
        coo.push_sym(1, 2, -1.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn csr_linop_matches_matvec() {
        let l = laplacian_path3();
        let x = [1.0, 2.0, 3.0];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        LinOp::matvec(&l, &x, &mut y1);
        l.matvec(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn gershgorin_bound_dominates_eigenvalues() {
        let l = laplacian_path3();
        // Largest eigenvalue of this Laplacian is 3; Gershgorin gives 4.
        let b = LinOp::spectral_bound(&l).unwrap();
        assert!(b >= 3.0);
        assert_eq!(b, 4.0);
    }

    #[test]
    fn scaled_sum_matches_materialized() {
        let a = laplacian_path3();
        let b = CsrMatrix::identity(3);
        let op = ScaledSumOp::new(vec![&a, &b], vec![0.3, 0.7]);
        let m = CsrMatrix::linear_combination(&[&a, &b], &[0.3, 0.7]).unwrap();
        let x = [1.0, -2.0, 0.5];
        let mut y1 = [0.0; 3];
        let mut y2 = [0.0; 3];
        op.matvec(&x, &mut y1);
        m.matvec(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn set_weights_updates_action() {
        let a = laplacian_path3();
        let b = CsrMatrix::identity(3);
        let mut op = ScaledSumOp::new(vec![&a, &b], vec![1.0, 0.0]);
        let x = [1.0, 1.0, 1.0];
        let mut y = [0.0; 3];
        op.matvec(&x, &mut y);
        assert_eq!(y, [0.0, 0.0, 0.0]); // Laplacian kills constants
        op.set_weights(&[0.0, 1.0]);
        op.matvec(&x, &mut y);
        assert_eq!(y, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn scaled_sum_block_matches_columnwise() {
        let a = laplacian_path3();
        let b = CsrMatrix::identity(3);
        let op = ScaledSumOp::new(vec![&a, &b], vec![0.3, 0.7]);
        let x =
            DenseMatrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 4.0], vec![-1.5, 0.25]]).unwrap();
        let mut y = DenseMatrix::zeros(3, 2);
        op.matvec_block(&x, &mut y, 4);
        let mut xc = [0.0; 3];
        let mut yc = [0.0; 3];
        for j in 0..2 {
            for i in 0..3 {
                xc[i] = x[(i, j)];
            }
            op.matvec(&xc, &mut yc);
            for i in 0..3 {
                assert!((y[(i, j)] - yc[i]).abs() < 1e-14, "col {j} row {i}");
            }
        }
    }

    #[test]
    fn shifted_neg_flips_spectrum() {
        let l = laplacian_path3();
        let op = ShiftedNegOp::new(&l, 4.0);
        // (4I - L) * ones = 4*ones since L*ones = 0.
        let x = [1.0, 1.0, 1.0];
        let mut y = [0.0; 3];
        op.matvec(&x, &mut y);
        for v in y {
            assert!((v - 4.0).abs() < 1e-14);
        }
    }
}

//! Kuhn–Munkres (Hungarian) optimal assignment.
//!
//! Shortest-augmenting-path formulation with dual potentials — `O(k³)` for
//! a `k × k` cost matrix. Clustering accuracy needs the assignment of
//! predicted clusters to ground-truth classes that maximizes the matched
//! count; we minimize negated counts.

use crate::{EvalError, Result};
use mvag_sparse::DenseMatrix;

/// Solves the min-cost assignment for a (possibly rectangular) cost matrix
/// with `nrows ≤ ncols`. Returns `(assignment, total_cost)` where
/// `assignment[row] = col`.
///
/// # Errors
/// [`EvalError::InvalidArgument`] if the matrix is empty, has more rows
/// than columns, or contains non-finite costs.
pub fn hungarian_min(cost: &DenseMatrix) -> Result<(Vec<usize>, f64)> {
    let n = cost.nrows();
    let m = cost.ncols();
    if n == 0 || m == 0 {
        return Err(EvalError::InvalidArgument("empty cost matrix".into()));
    }
    if n > m {
        return Err(EvalError::InvalidArgument(format!(
            "hungarian needs nrows <= ncols, got {n} x {m}"
        )));
    }
    if cost.data().iter().any(|v| !v.is_finite()) {
        return Err(EvalError::InvalidArgument("non-finite cost entry".into()));
    }
    // 1-based potentials algorithm (e-maxx formulation).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[(i0 - 1, j - 1)] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the recorded path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![usize::MAX; n];
    let mut total = 0.0;
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
            total += cost[(p[j] - 1, j - 1)];
        }
    }
    Ok((assignment, total))
}

/// Maximizes total profit instead of minimizing cost.
///
/// # Errors
/// See [`hungarian_min`].
pub fn hungarian_max(profit: &DenseMatrix) -> Result<(Vec<usize>, f64)> {
    let mut neg = profit.clone();
    neg.map_inplace(|v| -v);
    let (assign, cost) = hungarian_min(&neg)?;
    Ok((assign, -cost))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_assignment() {
        let cost = DenseMatrix::from_rows(&[
            vec![0.0, 5.0, 5.0],
            vec![5.0, 0.0, 5.0],
            vec![5.0, 5.0, 0.0],
        ])
        .unwrap();
        let (assign, total) = hungarian_min(&cost).unwrap();
        assert_eq!(assign, vec![0, 1, 2]);
        assert_eq!(total, 0.0);
    }

    #[test]
    fn classic_example() {
        // Known optimum: rows → (1, 0, 2) with cost 1+2+2 = 5... verify by
        // brute force instead of trusting the hand computation.
        let cost = DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ])
        .unwrap();
        let (assign, total) = hungarian_min(&cost).unwrap();
        // Brute force all 6 permutations.
        let perms = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let brute = perms
            .iter()
            .map(|p| (0..3).map(|i| cost[(i, p[i])]).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        assert_eq!(total, brute);
        // Assignment is a permutation.
        let mut seen = [false; 3];
        for &a in &assign {
            assert!(!seen[a]);
            seen[a] = true;
        }
    }

    #[test]
    fn rectangular_assignment() {
        let cost =
            DenseMatrix::from_rows(&[vec![10.0, 1.0, 10.0, 10.0], vec![1.0, 10.0, 10.0, 10.0]])
                .unwrap();
        let (assign, total) = hungarian_min(&cost).unwrap();
        assert_eq!(assign, vec![1, 0]);
        assert_eq!(total, 2.0);
    }

    #[test]
    fn maximization() {
        let profit = DenseMatrix::from_rows(&[vec![10.0, 1.0], vec![1.0, 10.0]]).unwrap();
        let (assign, total) = hungarian_max(&profit).unwrap();
        assert_eq!(assign, vec![0, 1]);
        assert_eq!(total, 20.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(hungarian_min(&DenseMatrix::zeros(0, 0)).is_err());
        assert!(hungarian_min(&DenseMatrix::zeros(3, 2)).is_err());
        let mut nan = DenseMatrix::zeros(2, 2);
        nan[(0, 0)] = f64::NAN;
        assert!(hungarian_min(&nan).is_err());
    }

    #[test]
    fn random_matches_brute_force() {
        // 5x5 random instances vs brute force over 120 permutations.
        let mut state = 7u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0
        };
        for _case in 0..20 {
            let mut cost = DenseMatrix::zeros(5, 5);
            for i in 0..5 {
                for j in 0..5 {
                    cost[(i, j)] = next();
                }
            }
            let (_, total) = hungarian_min(&cost).unwrap();
            let mut best = f64::INFINITY;
            let mut perm = [0usize, 1, 2, 3, 4];
            permute(&mut perm, 0, &mut |p| {
                let s: f64 = (0..5).map(|i| cost[(i, p[i])]).sum();
                if s < best {
                    best = s;
                }
            });
            assert!(
                (total - best).abs() < 1e-10,
                "hungarian {total} vs brute {best}"
            );
        }
    }

    fn permute(arr: &mut [usize; 5], k: usize, f: &mut impl FnMut(&[usize; 5])) {
        if k == 5 {
            f(arr);
            return;
        }
        for i in k..5 {
            arr.swap(k, i);
            permute(arr, k + 1, f);
            arr.swap(k, i);
        }
    }
}

//! Exact t-SNE (van der Maaten & Hinton) for embedding visualization.
//!
//! Used to regenerate the paper's Fig. 12: 2-D maps of the node
//! embeddings, colored by ground-truth class. Exact `O(n²)` pairwise
//! computation — the figure's datasets (RM: 91 nodes, Yelp: 2,614) are
//! comfortably within range; no Barnes–Hut tree is needed.

use crate::{EvalError, Result};
use mvag_sparse::parallel::par_map;
use mvag_sparse::{vecops, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`tsne`].
#[derive(Debug, Clone)]
pub struct TsneParams {
    /// Target perplexity (default 30; clamped to `(n − 1) / 3`).
    pub perplexity: f64,
    /// Gradient-descent iterations (default 400).
    pub iters: usize,
    /// Learning rate (default 100.0).
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the
    /// iterations (default 12).
    pub early_exaggeration: f64,
    /// Output dimensionality (2 for figures).
    pub out_dim: usize,
    /// RNG seed for the initial layout.
    pub seed: u64,
    /// Worker threads for the pairwise kernels.
    pub threads: usize,
}

impl Default for TsneParams {
    fn default() -> Self {
        TsneParams {
            perplexity: 30.0,
            iters: 400,
            learning_rate: 100.0,
            early_exaggeration: 12.0,
            out_dim: 2,
            seed: 47,
            threads: mvag_sparse::parallel::default_threads(),
        }
    }
}

/// Embeds the rows of `x` into `out_dim` dimensions with exact t-SNE.
///
/// # Errors
/// [`EvalError::InvalidArgument`] for fewer than 4 rows or invalid
/// parameters.
pub fn tsne(x: &DenseMatrix, params: &TsneParams) -> Result<DenseMatrix> {
    let n = x.nrows();
    if n < 4 {
        return Err(EvalError::InvalidArgument(format!(
            "t-SNE needs at least 4 points, got {n}"
        )));
    }
    if params.out_dim == 0 || params.iters == 0 || params.perplexity <= 1.0 {
        return Err(EvalError::InvalidArgument(
            "t-SNE parameters out of range".into(),
        ));
    }
    let perplexity = params.perplexity.min((n as f64 - 1.0) / 3.0).max(2.0);

    // Pairwise squared distances in the input space (parallel rows).
    let d2: Vec<Vec<f64>> = par_map(n, params.threads, |i| {
        let mut row = vec![0.0f64; n];
        for (j, slot) in row.iter_mut().enumerate() {
            if j != i {
                *slot = vecops::dist2(x.row(i), x.row(j));
            }
        }
        row
    });

    // Conditional distributions p_{j|i} via per-row bandwidth search.
    let target_entropy = perplexity.ln();
    let p_cond: Vec<Vec<f64>> = par_map(n, params.threads, |i| {
        row_affinities(&d2[i], i, target_entropy)
    });

    // Symmetrize: p_ij = (p_{j|i} + p_{i|j}) / 2n.
    let mut p = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                p[i * n + j] = (p_cond[i][j] + p_cond[j][i]) / (2.0 * n as f64);
            }
        }
    }
    let psum: f64 = p.iter().sum();
    if psum > 0.0 {
        for v in p.iter_mut() {
            *v = (*v / psum).max(1e-12);
        }
    }

    // Initial layout: small Gaussian noise.
    let mut rng = StdRng::seed_from_u64(params.seed);
    let dim = params.out_dim;
    let mut y: Vec<f64> = (0..n * dim)
        .map(|_| (rng.gen::<f64>() - 0.5) * 1e-2)
        .collect();
    let mut y_inc = vec![0.0f64; n * dim];
    let mut gains = vec![1.0f64; n * dim];

    let exag_iters = params.iters / 4;
    for iter in 0..params.iters {
        let exag = if iter < exag_iters {
            params.early_exaggeration
        } else {
            1.0
        };
        // Student-t kernel numerators and normalizer.
        let num: Vec<Vec<f64>> = par_map(n, params.threads, |i| {
            let yi = &y[i * dim..(i + 1) * dim];
            let mut row = vec![0.0f64; n];
            for (j, slot) in row.iter_mut().enumerate() {
                if j != i {
                    let yj = &y[j * dim..(j + 1) * dim];
                    *slot = 1.0 / (1.0 + vecops::dist2(yi, yj));
                }
            }
            row
        });
        let z: f64 = num.iter().map(|r| r.iter().sum::<f64>()).sum();
        let z = z.max(1e-12);
        // Gradient: 4 Σ_j (exag·p_ij − q_ij) num_ij (y_i − y_j).
        let grad: Vec<Vec<f64>> = par_map(n, params.threads, |i| {
            let yi = &y[i * dim..(i + 1) * dim];
            let mut g = vec![0.0f64; dim];
            for j in 0..n {
                if j == i {
                    continue;
                }
                let q = num[i][j] / z;
                let coeff = 4.0 * (exag * p[i * n + j] - q) * num[i][j];
                let yj = &y[j * dim..(j + 1) * dim];
                for d in 0..dim {
                    g[d] += coeff * (yi[d] - yj[d]);
                }
            }
            g
        });
        // Momentum + adaptive gains update.
        let momentum = if iter < exag_iters { 0.5 } else { 0.8 };
        for i in 0..n {
            for d in 0..dim {
                let idx = i * dim + d;
                let g = grad[i][d];
                gains[idx] = if (g > 0.0) == (y_inc[idx] > 0.0) {
                    (gains[idx] * 0.8).max(0.01)
                } else {
                    gains[idx] + 0.2
                };
                y_inc[idx] = momentum * y_inc[idx] - params.learning_rate * gains[idx] * g;
                y[idx] += y_inc[idx];
            }
        }
        // Re-center.
        for d in 0..dim {
            let mean: f64 = (0..n).map(|i| y[i * dim + d]).sum::<f64>() / n as f64;
            for i in 0..n {
                y[i * dim + d] -= mean;
            }
        }
    }
    DenseMatrix::from_vec(n, dim, y).map_err(EvalError::from)
}

/// Binary-search the Gaussian bandwidth for row `i` so the conditional
/// distribution's entropy matches `target_entropy`; returns `p_{j|i}`.
fn row_affinities(d2_row: &[f64], i: usize, target_entropy: f64) -> Vec<f64> {
    let n = d2_row.len();
    let mut beta = 1.0f64; // 1 / (2σ²)
    let mut beta_min = f64::NEG_INFINITY;
    let mut beta_max = f64::INFINITY;
    let mut p = vec![0.0f64; n];
    for _ in 0..60 {
        let mut sum = 0.0;
        for (j, &dist) in d2_row.iter().enumerate() {
            p[j] = if j == i { 0.0 } else { (-beta * dist).exp() };
            sum += p[j];
        }
        if sum <= 0.0 {
            // All mass collapsed; lower beta.
            beta_max = beta;
            beta = if beta_min.is_finite() {
                (beta + beta_min) / 2.0
            } else {
                beta / 2.0
            };
            continue;
        }
        // Entropy H = ln(sum) + beta * <d²>.
        let mut weighted = 0.0;
        for (j, &dist) in d2_row.iter().enumerate() {
            weighted += p[j] * dist;
        }
        let entropy = sum.ln() + beta * weighted / sum;
        let diff = entropy - target_entropy;
        if diff.abs() < 1e-5 {
            break;
        }
        if diff > 0.0 {
            beta_min = beta;
            beta = if beta_max.is_finite() {
                (beta + beta_max) / 2.0
            } else {
                beta * 2.0
            };
        } else {
            beta_max = beta;
            beta = if beta_min.is_finite() {
                (beta + beta_min) / 2.0
            } else {
                beta / 2.0
            };
        }
    }
    let sum: f64 = p.iter().sum();
    if sum > 0.0 {
        for v in p.iter_mut() {
            *v /= sum;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, sep: f64, seed: u64) -> (DenseMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            let cx = if c == 0 { -sep } else { sep };
            for _ in 0..n_per {
                rows.push(vec![
                    cx + rng.gen::<f64>() - 0.5,
                    rng.gen::<f64>() - 0.5,
                    rng.gen::<f64>() - 0.5,
                ]);
                labels.push(c);
            }
        }
        (DenseMatrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn separates_blobs_in_2d() {
        let (x, labels) = blobs(40, 5.0, 3);
        let params = TsneParams {
            iters: 250,
            perplexity: 15.0,
            ..Default::default()
        };
        let y = tsne(&x, &params).unwrap();
        assert_eq!(y.nrows(), 80);
        assert_eq!(y.ncols(), 2);
        // Cluster separation in the output: mean within-class distance
        // well below between-class distance.
        let mut within = 0.0;
        let mut across = 0.0;
        let (mut cw, mut ca) = (0, 0);
        for i in 0..80 {
            for j in (i + 1)..80 {
                let d = vecops::dist2(y.row(i), y.row(j)).sqrt();
                if labels[i] == labels[j] {
                    within += d;
                    cw += 1;
                } else {
                    across += d;
                    ca += 1;
                }
            }
        }
        within /= cw as f64;
        across /= ca as f64;
        assert!(across > 1.5 * within, "within {within} vs across {across}");
    }

    #[test]
    fn output_is_finite_and_centered() {
        let (x, _) = blobs(20, 2.0, 7);
        let y = tsne(
            &x,
            &TsneParams {
                iters: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(y.data().iter().all(|v| v.is_finite()));
        for d in 0..2 {
            let mean: f64 = y.col(d).iter().sum::<f64>() / y.nrows() as f64;
            assert!(mean.abs() < 1e-8);
        }
    }

    #[test]
    fn validates_input() {
        let x = DenseMatrix::zeros(3, 2);
        assert!(tsne(&x, &TsneParams::default()).is_err());
        let ok = DenseMatrix::zeros(10, 2);
        let bad = TsneParams {
            perplexity: 0.5,
            ..Default::default()
        };
        assert!(tsne(&ok, &bad).is_err());
        let bad2 = TsneParams {
            iters: 0,
            ..Default::default()
        };
        assert!(tsne(&ok, &bad2).is_err());
    }

    #[test]
    fn deterministic() {
        let (x, _) = blobs(15, 3.0, 9);
        let p = TsneParams {
            iters: 60,
            ..Default::default()
        };
        let a = tsne(&x, &p).unwrap();
        let b = tsne(&x, &p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn affinity_rows_are_distributions() {
        let (x, _) = blobs(10, 2.0, 1);
        let n = x.nrows();
        for i in 0..n {
            let d2: Vec<f64> = (0..n).map(|j| vecops::dist2(x.row(i), x.row(j))).collect();
            let p = row_affinities(&d2, i, 5.0f64.ln());
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert_eq!(p[i], 0.0);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }
}

//! Evaluation substrate for the SGLA reproduction.
//!
//! Implements every measurement the paper's Section VI reports:
//!
//! * [`hungarian`] — Kuhn–Munkres optimal assignment (O(k³)), used to map
//!   predicted clusters to ground-truth classes;
//! * [`cluster_metrics`] — Accuracy, average per-class macro-F1, NMI,
//!   adjusted Rand index, and Purity (Table III's five columns);
//! * [`classify`] — multinomial logistic regression trained on a
//!   stratified label split, with Micro-/Macro-F1 (Table IV's protocol:
//!   20% training labels, 1% for the MAG-scale datasets);
//! * [`tsne`] — exact O(n²) t-SNE for the embedding visualizations of
//!   Fig. 12.

#![forbid(unsafe_code)]
// Indexed loops over matched row/column structures are the clearest idiom
// for the numerical kernels in this crate: the index relationships *are*
// the algorithm. The iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::field_reassign_with_default)]
#![warn(missing_docs)]

pub mod classify;
pub mod cluster_metrics;
pub mod error;
pub mod hungarian;
pub mod tsne;

pub use cluster_metrics::ClusterMetrics;
pub use error::EvalError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EvalError>;

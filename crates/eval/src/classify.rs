//! Node-classification evaluation of embeddings (Table IV protocol).
//!
//! "A logistic regression classifier is trained on 20% of the ground truth
//! class labels (1% for MAG-eng and MAG-phy), with the remaining labels
//! used for testing", scored by Micro-F1 and Macro-F1.
//!
//! The classifier is multinomial logistic regression (softmax +
//! cross-entropy + L2) trained by full-batch Adam on standardized
//! features.

use crate::{EvalError, Result};
use mvag_sparse::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters for [`train_logistic`].
#[derive(Debug, Clone)]
pub struct LogisticParams {
    /// L2 regularization strength (default `1e-4`).
    pub l2: f64,
    /// Full-batch Adam epochs (default 300).
    pub epochs: usize,
    /// Adam learning rate (default 0.1).
    pub lr: f64,
    /// RNG seed for initialization.
    pub seed: u64,
}

impl Default for LogisticParams {
    fn default() -> Self {
        LogisticParams {
            l2: 1e-4,
            epochs: 300,
            lr: 0.1,
            seed: 37,
        }
    }
}

/// A trained multinomial logistic regression model.
#[derive(Debug, Clone)]
pub struct Logistic {
    /// Weights, `k × (d + 1)` with the bias in the last column.
    weights: DenseMatrix,
    /// Feature means for standardization.
    mean: Vec<f64>,
    /// Feature inverse standard deviations.
    inv_std: Vec<f64>,
    k: usize,
}

impl Logistic {
    /// Predicts class labels for the rows of `x`.
    pub fn predict(&self, x: &DenseMatrix) -> Vec<usize> {
        let n = x.nrows();
        let d = self.mean.len();
        debug_assert_eq!(x.ncols(), d);
        let mut out = Vec::with_capacity(n);
        let mut z = vec![0.0f64; d];
        for i in 0..n {
            for (j, zj) in z.iter_mut().enumerate() {
                *zj = (x[(i, j)] - self.mean[j]) * self.inv_std[j];
            }
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for c in 0..self.k {
                let wrow = self.weights.row(c);
                let mut s = wrow[d]; // bias
                for (j, &zj) in z.iter().enumerate() {
                    s += wrow[j] * zj;
                }
                if s > best_score {
                    best_score = s;
                    best = c;
                }
            }
            out.push(best);
        }
        out
    }
}

/// Trains multinomial logistic regression on `(x[idx], y[idx])` for the
/// given training indices.
///
/// # Errors
/// [`EvalError::InvalidArgument`] on shape problems or empty training set.
pub fn train_logistic(
    x: &DenseMatrix,
    y: &[usize],
    k: usize,
    train_idx: &[usize],
    params: &LogisticParams,
) -> Result<Logistic> {
    let d = x.ncols();
    if x.nrows() != y.len() {
        return Err(EvalError::InvalidArgument(format!(
            "{} rows vs {} labels",
            x.nrows(),
            y.len()
        )));
    }
    if train_idx.is_empty() {
        return Err(EvalError::InvalidArgument("empty training set".into()));
    }
    if k < 2 {
        return Err(EvalError::InvalidArgument(format!(
            "need k >= 2 classes, got {k}"
        )));
    }
    for &i in train_idx {
        if i >= x.nrows() {
            return Err(EvalError::InvalidArgument(format!(
                "training index {i} out of range"
            )));
        }
        if y[i] >= k {
            return Err(EvalError::InvalidArgument(format!(
                "label {} >= k = {k}",
                y[i]
            )));
        }
    }
    // Standardization statistics from the training split only.
    let m = train_idx.len();
    let mut mean = vec![0.0f64; d];
    for &i in train_idx {
        for (j, mj) in mean.iter_mut().enumerate() {
            *mj += x[(i, j)];
        }
    }
    for mj in mean.iter_mut() {
        *mj /= m as f64;
    }
    let mut var = vec![0.0f64; d];
    for &i in train_idx {
        for (j, vj) in var.iter_mut().enumerate() {
            let delta = x[(i, j)] - mean[j];
            *vj += delta * delta;
        }
    }
    let inv_std: Vec<f64> = var
        .iter()
        .map(|&v| {
            let s = (v / m as f64).sqrt();
            if s > 1e-12 {
                1.0 / s
            } else {
                0.0
            }
        })
        .collect();
    // Standardized training matrix with bias column.
    let mut xt = DenseMatrix::zeros(m, d + 1);
    for (row, &i) in train_idx.iter().enumerate() {
        for j in 0..d {
            xt[(row, j)] = (x[(i, j)] - mean[j]) * inv_std[j];
        }
        xt[(row, d)] = 1.0;
    }
    let labels: Vec<usize> = train_idx.iter().map(|&i| y[i]).collect();

    // Adam on the softmax cross-entropy.
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut w = DenseMatrix::zeros(k, d + 1);
    for v in w.data_mut() {
        *v = (rng.gen::<f64>() - 0.5) * 0.01;
    }
    let mut mom = DenseMatrix::zeros(k, d + 1);
    let mut vel = DenseMatrix::zeros(k, d + 1);
    let (beta1, beta2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
    let mut probs = vec![0.0f64; k];
    for epoch in 1..=params.epochs {
        let mut grad = DenseMatrix::zeros(k, d + 1);
        for row in 0..m {
            let xrow = xt.row(row);
            // Softmax with max-shift.
            let mut maxv = f64::NEG_INFINITY;
            for c in 0..k {
                let s = mvag_sparse::vecops::dot(w.row(c), xrow);
                probs[c] = s;
                maxv = maxv.max(s);
            }
            let mut z = 0.0;
            for p in probs.iter_mut() {
                *p = (*p - maxv).exp();
                z += *p;
            }
            for (c, p) in probs.iter().enumerate() {
                let err = p / z - if c == labels[row] { 1.0 } else { 0.0 };
                if err != 0.0 {
                    let grow = grad.row_mut(c);
                    for (g, &xv) in grow.iter_mut().zip(xrow) {
                        *g += err * xv;
                    }
                }
            }
        }
        let scale = 1.0 / m as f64;
        let bc1 = 1.0 - beta1.powi(epoch as i32);
        let bc2 = 1.0 - beta2.powi(epoch as i32);
        for c in 0..k {
            for j in 0..=d {
                let mut g = grad[(c, j)] * scale;
                if j < d {
                    g += params.l2 * w[(c, j)];
                }
                mom[(c, j)] = beta1 * mom[(c, j)] + (1.0 - beta1) * g;
                vel[(c, j)] = beta2 * vel[(c, j)] + (1.0 - beta2) * g * g;
                let mhat = mom[(c, j)] / bc1;
                let vhat = vel[(c, j)] / bc2;
                w[(c, j)] -= params.lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }
    Ok(Logistic {
        weights: w,
        mean,
        inv_std,
        k,
    })
}

/// Stratified train/test split: `train_frac` of each class (at least one
/// node per class) goes to training.
///
/// # Errors
/// [`EvalError::InvalidArgument`] for empty labels or a fraction outside
/// `(0, 1)`.
pub fn stratified_split(
    labels: &[usize],
    train_frac: f64,
    seed: u64,
) -> Result<(Vec<usize>, Vec<usize>)> {
    if labels.is_empty() {
        return Err(EvalError::InvalidArgument("empty labels".into()));
    }
    if !(0.0..1.0).contains(&train_frac) || train_frac == 0.0 {
        return Err(EvalError::InvalidArgument(format!(
            "train fraction {train_frac} outside (0, 1)"
        )));
    }
    let k = labels.iter().copied().max().expect("non-empty") + 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for members in by_class.iter_mut() {
        // Fisher–Yates shuffle.
        for i in (1..members.len()).rev() {
            let j = rng.gen_range(0..=i);
            members.swap(i, j);
        }
        let take = ((members.len() as f64 * train_frac).round() as usize)
            .clamp(1.min(members.len()), members.len().saturating_sub(1).max(1));
        train.extend_from_slice(&members[..take.min(members.len())]);
        test.extend_from_slice(&members[take.min(members.len())..]);
    }
    if test.is_empty() {
        return Err(EvalError::InvalidArgument(
            "split left no test samples".into(),
        ));
    }
    Ok((train, test))
}

/// Micro-averaged F1 (equals accuracy for single-label classification).
pub fn micro_f1(pred: &[usize], truth: &[usize]) -> f64 {
    debug_assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let correct = pred.iter().zip(truth).filter(|(a, b)| a == b).count();
    correct as f64 / pred.len() as f64
}

/// Macro-averaged F1 over the classes present in `truth`.
pub fn macro_f1(pred: &[usize], truth: &[usize]) -> f64 {
    let k = truth
        .iter()
        .chain(pred.iter())
        .copied()
        .max()
        .map_or(0, |m| m + 1);
    crate::cluster_metrics::macro_f1_score(pred, truth, k)
}

/// End-to-end Table IV protocol: stratified split, train logistic
/// regression, report `(macro_f1, micro_f1)` on the held-out labels.
///
/// # Errors
/// Propagates split and training failures.
pub fn evaluate_embedding(
    embedding: &DenseMatrix,
    labels: &[usize],
    train_frac: f64,
    seed: u64,
) -> Result<(f64, f64)> {
    if embedding.nrows() != labels.len() {
        return Err(EvalError::InvalidArgument(format!(
            "{} embedding rows vs {} labels",
            embedding.nrows(),
            labels.len()
        )));
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let (train, test) = stratified_split(labels, train_frac, seed)?;
    let model = train_logistic(
        embedding,
        labels,
        k,
        &train,
        &LogisticParams {
            seed,
            ..Default::default()
        },
    )?;
    // Predict only the test rows.
    let mut test_x = DenseMatrix::zeros(test.len(), embedding.ncols());
    let mut test_y = Vec::with_capacity(test.len());
    for (row, &i) in test.iter().enumerate() {
        test_x.row_mut(row).copy_from_slice(embedding.row(i));
        test_y.push(labels[i]);
    }
    let pred = model.predict(&test_x);
    Ok((macro_f1(&pred, &test_y), micro_f1(&pred, &test_y)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable 2-class blobs.
    fn blobs(n_per: usize, seed: u64) -> (DenseMatrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            let cx = if c == 0 { -2.0 } else { 2.0 };
            for _ in 0..n_per {
                rows.push(vec![cx + rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5]);
                labels.push(c);
            }
        }
        (DenseMatrix::from_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn separable_problem_high_accuracy() {
        let (x, y) = blobs(60, 3);
        let (maf1, mif1) = evaluate_embedding(&x, &y, 0.2, 7).unwrap();
        assert!(maf1 > 0.95, "macro f1 = {maf1}");
        assert!(mif1 > 0.95, "micro f1 = {mif1}");
    }

    #[test]
    fn three_class_problem() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let centers = [(-3.0, 0.0), (3.0, 0.0), (0.0, 3.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..50 {
                rows.push(vec![
                    cx + rng.gen::<f64>() - 0.5,
                    cy + rng.gen::<f64>() - 0.5,
                ]);
                labels.push(c);
            }
        }
        let x = DenseMatrix::from_rows(&rows).unwrap();
        let (maf1, mif1) = evaluate_embedding(&x, &labels, 0.2, 11).unwrap();
        assert!(maf1 > 0.9, "macro f1 = {maf1}");
        assert!(mif1 > 0.9);
    }

    #[test]
    fn stratified_split_properties() {
        let labels: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let (train, test) = stratified_split(&labels, 0.2, 9).unwrap();
        assert_eq!(train.len() + test.len(), 100);
        // Each class gets ~20% in training.
        for c in 0..4 {
            let tr = train.iter().filter(|&&i| labels[i] == c).count();
            assert_eq!(tr, 5, "class {c} got {tr} training samples");
        }
        // No overlap.
        let mut seen = [false; 100];
        for &i in train.iter().chain(&test) {
            assert!(!seen[i], "index {i} duplicated");
            seen[i] = true;
        }
    }

    #[test]
    fn split_validation() {
        assert!(stratified_split(&[], 0.2, 0).is_err());
        assert!(stratified_split(&[0, 1], 0.0, 0).is_err());
        assert!(stratified_split(&[0, 1], 1.0, 0).is_err());
    }

    #[test]
    fn micro_macro_f1_basics() {
        let truth = [0, 0, 1, 1];
        let pred = [0, 0, 1, 1];
        assert_eq!(micro_f1(&pred, &truth), 1.0);
        assert_eq!(macro_f1(&pred, &truth), 1.0);
        let pred2 = [0, 0, 0, 0];
        assert_eq!(micro_f1(&pred2, &truth), 0.5);
        // Class 0: tp=2 fp=2 fn=0 → F1 = 2/3; class 1: 0 → macro 1/3.
        assert!((macro_f1(&pred2, &truth) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn training_validation() {
        let (x, y) = blobs(10, 1);
        assert!(train_logistic(&x, &y, 2, &[], &LogisticParams::default()).is_err());
        assert!(train_logistic(&x, &y, 1, &[0, 1], &LogisticParams::default()).is_err());
        assert!(train_logistic(&x, &y[..5], 2, &[0], &LogisticParams::default()).is_err());
        assert!(train_logistic(&x, &y, 2, &[999], &LogisticParams::default()).is_err());
    }

    #[test]
    fn deterministic() {
        let (x, y) = blobs(30, 13);
        let a = evaluate_embedding(&x, &y, 0.3, 21).unwrap();
        let b = evaluate_embedding(&x, &y, 0.3, 21).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn constant_feature_handled() {
        // One feature has zero variance: inv_std = 0 must not produce NaN.
        let x = DenseMatrix::from_rows(&[
            vec![1.0, -2.0],
            vec![1.0, -1.9],
            vec![1.0, 2.0],
            vec![1.0, 2.1],
            vec![1.0, -2.05],
            vec![1.0, 2.05],
        ])
        .unwrap();
        let y = vec![0, 0, 1, 1, 0, 1];
        let model = train_logistic(&x, &y, 2, &[0, 1, 2, 3], &LogisticParams::default()).unwrap();
        let pred = model.predict(&x);
        assert_eq!(pred[4], 0);
        assert_eq!(pred[5], 1);
    }
}

//! Clustering quality metrics — the five columns of the paper's Table III.
//!
//! * **Acc** — accuracy under the optimal (Hungarian) mapping of predicted
//!   clusters to ground-truth classes;
//! * **F1** — average per-class macro-F1 under the same mapping;
//! * **NMI** — normalized mutual information (arithmetic-mean
//!   normalization, the scikit-learn default used by the baseline suites);
//! * **ARI** — adjusted Rand index (range `[-0.5, 1]`);
//! * **Purity** — mean over clusters of the majority-class fraction.

use crate::hungarian::hungarian_max;
use crate::{EvalError, Result};
use mvag_sparse::DenseMatrix;

/// The five clustering metrics of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterMetrics {
    /// Accuracy after optimal cluster-to-class mapping.
    pub acc: f64,
    /// Macro-averaged per-class F1 after the same mapping.
    pub f1: f64,
    /// Normalized mutual information.
    pub nmi: f64,
    /// Adjusted Rand index.
    pub ari: f64,
    /// Purity.
    pub purity: f64,
}

impl ClusterMetrics {
    /// Computes all five metrics for predicted clusters vs ground truth.
    ///
    /// # Errors
    /// [`EvalError::InvalidArgument`] on empty or mismatched inputs.
    pub fn compute(pred: &[usize], truth: &[usize]) -> Result<Self> {
        if pred.is_empty() || pred.len() != truth.len() {
            return Err(EvalError::InvalidArgument(format!(
                "prediction length {} vs truth length {}",
                pred.len(),
                truth.len()
            )));
        }
        let n = pred.len();
        let kp = pred.iter().copied().max().expect("non-empty") + 1;
        let kt = truth.iter().copied().max().expect("non-empty") + 1;
        let k = kp.max(kt);
        // Confusion counts: rows = predicted clusters, cols = classes.
        let mut counts = DenseMatrix::zeros(k, k);
        for (&p, &t) in pred.iter().zip(truth) {
            counts[(p, t)] += 1.0;
        }
        // Optimal mapping for Acc/F1.
        let (assignment, matched) = hungarian_max(&counts)?;
        let acc = matched / n as f64;
        // Mapped predictions → per-class F1.
        let mapped: Vec<usize> = pred.iter().map(|&p| assignment[p]).collect();
        let f1 = macro_f1_score(&mapped, truth, k);
        Ok(ClusterMetrics {
            acc,
            f1,
            nmi: nmi(pred, truth, kp, kt),
            ari: ari(pred, truth, kp, kt),
            purity: purity(pred, truth, kp, kt),
        })
    }
}

/// Macro-F1 over the classes present in `truth` (predicted labels must
/// already live in the class space).
pub fn macro_f1_score(pred: &[usize], truth: &[usize], k: usize) -> f64 {
    let n = pred.len();
    let mut tp = vec![0.0f64; k];
    let mut fp = vec![0.0f64; k];
    let mut fno = vec![0.0f64; k];
    for i in 0..n {
        if pred[i] == truth[i] {
            tp[truth[i]] += 1.0;
        } else {
            fp[pred[i]] += 1.0;
            fno[truth[i]] += 1.0;
        }
    }
    // Average over classes that appear in the ground truth.
    let mut present = vec![false; k];
    for &t in truth {
        present[t] = true;
    }
    let mut sum = 0.0;
    let mut cnt = 0usize;
    for c in 0..k {
        if !present[c] {
            continue;
        }
        cnt += 1;
        let denom = 2.0 * tp[c] + fp[c] + fno[c];
        if denom > 0.0 {
            sum += 2.0 * tp[c] / denom;
        }
    }
    if cnt == 0 {
        0.0
    } else {
        sum / cnt as f64
    }
}

fn contingency(
    pred: &[usize],
    truth: &[usize],
    kp: usize,
    kt: usize,
) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
    let mut table = vec![vec![0.0f64; kt]; kp];
    for (&p, &t) in pred.iter().zip(truth) {
        table[p][t] += 1.0;
    }
    let rows: Vec<f64> = table.iter().map(|r| r.iter().sum()).collect();
    let mut cols = vec![0.0f64; kt];
    for r in &table {
        for (j, v) in r.iter().enumerate() {
            cols[j] += v;
        }
    }
    (table, rows, cols)
}

/// Normalized mutual information with arithmetic-mean normalization.
pub fn nmi(pred: &[usize], truth: &[usize], kp: usize, kt: usize) -> f64 {
    let n = pred.len() as f64;
    let (table, rows, cols) = contingency(pred, truth, kp, kt);
    let mut mi = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &nij) in row.iter().enumerate() {
            if nij > 0.0 {
                mi += (nij / n) * ((nij * n) / (rows[i] * cols[j])).ln();
            }
        }
    }
    let h = |marg: &[f64]| -> f64 {
        marg.iter()
            .filter(|&&m| m > 0.0)
            .map(|&m| -(m / n) * (m / n).ln())
            .sum()
    };
    let denom = 0.5 * (h(&rows) + h(&cols));
    if denom <= 0.0 {
        // Both partitions trivial (single cluster): identical ⇒ 1 by
        // convention when MI is also 0 and the partitions match.
        if kp == 1 && kt == 1 {
            1.0
        } else {
            0.0
        }
    } else {
        (mi / denom).clamp(0.0, 1.0)
    }
}

/// Adjusted Rand index.
pub fn ari(pred: &[usize], truth: &[usize], kp: usize, kt: usize) -> f64 {
    let n = pred.len() as f64;
    let (table, rows, cols) = contingency(pred, truth, kp, kt);
    let comb2 = |x: f64| x * (x - 1.0) / 2.0;
    let sum_ij: f64 = table.iter().flat_map(|r| r.iter()).map(|&v| comb2(v)).sum();
    let sum_i: f64 = rows.iter().map(|&v| comb2(v)).sum();
    let sum_j: f64 = cols.iter().map(|&v| comb2(v)).sum();
    let total = comb2(n);
    if total == 0.0 {
        return 0.0;
    }
    let expected = sum_i * sum_j / total;
    let max_index = 0.5 * (sum_i + sum_j);
    let denom = max_index - expected;
    if denom.abs() < 1e-12 {
        // Degenerate (e.g. both partitions trivial): perfect agreement ⇒ 1.
        if sum_ij == max_index {
            1.0
        } else {
            0.0
        }
    } else {
        (sum_ij - expected) / denom
    }
}

/// Purity: each predicted cluster votes for its majority class.
pub fn purity(pred: &[usize], truth: &[usize], kp: usize, kt: usize) -> f64 {
    let n = pred.len() as f64;
    let (table, _, _) = contingency(pred, truth, kp, kt);
    let correct: f64 = table
        .iter()
        .map(|r| r.iter().copied().fold(0.0f64, f64::max))
        .sum();
    correct / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_up_to_permutation() {
        let truth = [0, 0, 1, 1, 2, 2];
        let pred = [2, 2, 0, 0, 1, 1]; // permuted labels
        let m = ClusterMetrics::compute(&pred, &truth).unwrap();
        assert!((m.acc - 1.0).abs() < 1e-12);
        assert!((m.f1 - 1.0).abs() < 1e-12);
        assert!((m.nmi - 1.0).abs() < 1e-9);
        assert!((m.ari - 1.0).abs() < 1e-12);
        assert!((m.purity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_error() {
        let truth = [0, 0, 0, 1, 1, 1];
        let pred = [0, 0, 0, 1, 1, 0];
        let m = ClusterMetrics::compute(&pred, &truth).unwrap();
        assert!((m.acc - 5.0 / 6.0).abs() < 1e-12);
        assert!(m.nmi > 0.0 && m.nmi < 1.0);
        assert!(m.ari > 0.0 && m.ari < 1.0);
        assert!((m.purity - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn random_labels_near_zero_ari() {
        // Deterministic pseudo-random labels: ARI near 0, NMI small.
        let n = 3000;
        let truth: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let mut state = 99u64;
        let pred: Vec<usize> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) % 3) as usize
            })
            .collect();
        let m = ClusterMetrics::compute(&pred, &truth).unwrap();
        assert!(m.ari.abs() < 0.05, "ari = {}", m.ari);
        assert!(m.nmi < 0.05, "nmi = {}", m.nmi);
        assert!(m.acc < 0.45, "acc = {}", m.acc);
    }

    #[test]
    fn all_in_one_cluster() {
        let truth = [0, 0, 1, 1];
        let pred = [0, 0, 0, 0];
        let m = ClusterMetrics::compute(&pred, &truth).unwrap();
        assert!((m.acc - 0.5).abs() < 1e-12);
        assert_eq!(m.nmi, 0.0);
        assert!((m.purity - 0.5).abs() < 1e-12);
        assert!(m.ari <= 0.0 + 1e-12);
    }

    #[test]
    fn more_clusters_than_classes() {
        let truth = [0, 0, 0, 0, 1, 1, 1, 1];
        let pred = [0, 0, 1, 1, 2, 2, 3, 3]; // over-segmented
        let m = ClusterMetrics::compute(&pred, &truth).unwrap();
        // Purity is perfect (each cluster pure), accuracy is not.
        assert!((m.purity - 1.0).abs() < 1e-12);
        assert!(m.acc <= 0.5 + 1e-12);
        assert!(m.nmi > 0.0 && m.nmi < 1.0);
    }

    #[test]
    fn input_validation() {
        assert!(ClusterMetrics::compute(&[], &[]).is_err());
        assert!(ClusterMetrics::compute(&[0, 1], &[0]).is_err());
    }

    #[test]
    fn ari_known_value() {
        // Example verifiable by hand / sklearn: truth [0,0,1,1], pred
        // [0,0,1,2] → sklearn gives ARI = 0.5714285714...
        let truth = [0, 0, 1, 1];
        let pred = [0, 0, 1, 2];
        let v = ari(&pred, &truth, 3, 2);
        assert!((v - 0.5714285714285714).abs() < 1e-9, "ari = {v}");
    }

    #[test]
    fn nmi_symmetry() {
        let a = [0, 0, 1, 1, 2, 2, 0, 1];
        let b = [1, 1, 0, 0, 2, 2, 1, 2];
        let ab = nmi(&a, &b, 3, 3);
        let ba = nmi(&b, &a, 3, 3);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn macro_f1_known_value() {
        // Class 0: tp=2, fp=1, fn=0 → F1 = 4/5. Class 1: tp=1, fp=0, fn=1
        // → F1 = 2/3.
        let truth = [0, 0, 1, 1];
        let pred = [0, 0, 1, 0];
        let f1 = macro_f1_score(&pred, &truth, 2);
        assert!((f1 - (0.8 + 2.0 / 3.0) / 2.0).abs() < 1e-12, "f1 = {f1}");
    }
}

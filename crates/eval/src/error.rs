//! Error type for the evaluation substrate.

use mvag_sparse::SparseError;
use std::fmt;

/// Errors raised by metric computation and classifiers.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A linear-algebra kernel failed.
    Sparse(SparseError),
    /// Structurally invalid input (length mismatches, empty label sets,
    /// out-of-range fractions, ...).
    InvalidArgument(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Sparse(e) => write!(f, "linear algebra error: {e}"),
            EvalError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Sparse(e) => Some(e),
            EvalError::InvalidArgument(_) => None,
        }
    }
}

impl From<SparseError> for EvalError {
    fn from(e: SparseError) -> Self {
        EvalError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EvalError::InvalidArgument("x".into())
            .to_string()
            .contains("invalid"));
        assert!(EvalError::from(SparseError::NumericalBreakdown("c"))
            .to_string()
            .contains("linear algebra"));
    }
}

//! Property-based tests for the evaluation substrate.

use mvag_eval::classify::{micro_f1, stratified_split};
use mvag_eval::cluster_metrics::{ari, nmi, purity, ClusterMetrics};
use mvag_eval::hungarian::{hungarian_max, hungarian_min};
use mvag_sparse::DenseMatrix;
use proptest::prelude::*;

fn labels_strategy(max_n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..k, 4..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn metrics_perfect_on_identical_labels(truth in labels_strategy(60, 4)) {
        let m = ClusterMetrics::compute(&truth, &truth).unwrap();
        prop_assert!((m.acc - 1.0).abs() < 1e-12);
        prop_assert!((m.purity - 1.0).abs() < 1e-12);
        prop_assert!((m.f1 - 1.0).abs() < 1e-12);
        prop_assert!(m.ari > 1.0 - 1e-9);
    }

    #[test]
    fn metrics_invariant_to_label_permutation(truth in labels_strategy(60, 3), shift in 1usize..3) {
        // Cyclically permute predicted label ids: all metrics unchanged.
        let pred: Vec<usize> = truth.iter().map(|&l| (l + shift) % 3).collect();
        let m = ClusterMetrics::compute(&pred, &truth).unwrap();
        prop_assert!((m.acc - 1.0).abs() < 1e-12, "acc = {}", m.acc);
        prop_assert!((m.nmi - 1.0).abs() < 1e-9 || truth.iter().all(|&t| t == truth[0]));
    }

    #[test]
    fn metric_ranges(pred in labels_strategy(50, 4), seed in 0u64..100) {
        // Random truth of same length.
        let mut state = seed.wrapping_add(1);
        let truth: Vec<usize> = pred.iter().map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 4) as usize
        }).collect();
        let m = ClusterMetrics::compute(&pred, &truth).unwrap();
        prop_assert!((0.0..=1.0).contains(&m.acc));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert!((0.0..=1.0).contains(&m.nmi));
        prop_assert!((-0.5 - 1e-9..=1.0 + 1e-9).contains(&m.ari));
        prop_assert!((0.0..=1.0).contains(&m.purity));
        // Purity dominates accuracy.
        prop_assert!(m.purity >= m.acc - 1e-12);
    }

    #[test]
    fn nmi_ari_symmetric(a in labels_strategy(40, 3), seed in 0u64..50) {
        let mut state = seed.wrapping_add(7);
        let b: Vec<usize> = a.iter().map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 3) as usize
        }).collect();
        let ka = a.iter().max().unwrap() + 1;
        let kb = b.iter().max().unwrap() + 1;
        prop_assert!((nmi(&a, &b, ka, kb) - nmi(&b, &a, kb, ka)).abs() < 1e-10);
        prop_assert!((ari(&a, &b, ka, kb) - ari(&b, &a, kb, ka)).abs() < 1e-10);
    }

    #[test]
    fn purity_one_iff_pure_clusters(truth in labels_strategy(40, 3)) {
        // Refining the truth (splitting each class by parity of index)
        // keeps purity at 1.
        let pred: Vec<usize> = truth.iter().enumerate()
            .map(|(i, &t)| t * 2 + (i % 2))
            .collect();
        let kp = pred.iter().max().unwrap() + 1;
        let kt = truth.iter().max().unwrap() + 1;
        prop_assert!((purity(&pred, &truth, kp, kt) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hungarian_min_leq_any_permutation(vals in proptest::collection::vec(0.0f64..10.0, 16)) {
        let cost = DenseMatrix::from_vec(4, 4, vals).unwrap();
        let (_, best) = hungarian_min(&cost).unwrap();
        // Check against a handful of fixed permutations.
        for p in [[0usize, 1, 2, 3], [3, 2, 1, 0], [1, 0, 3, 2], [2, 3, 0, 1]] {
            let s: f64 = (0..4).map(|i| cost[(i, p[i])]).sum();
            prop_assert!(best <= s + 1e-9);
        }
    }

    #[test]
    fn hungarian_max_min_duality(vals in proptest::collection::vec(0.0f64..10.0, 9)) {
        let m = DenseMatrix::from_vec(3, 3, vals).unwrap();
        let (_, maxv) = hungarian_max(&m).unwrap();
        let mut neg = m.clone();
        neg.map_inplace(|v| -v);
        let (_, minv) = hungarian_min(&neg).unwrap();
        prop_assert!((maxv + minv).abs() < 1e-10);
    }

    #[test]
    fn stratified_split_partitions(frac in 0.1f64..0.9, seed in 0u64..100) {
        let labels: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let (train, test) = stratified_split(&labels, frac, seed).unwrap();
        let mut seen = [false; 60];
        for &i in train.iter().chain(&test) {
            prop_assert!(!seen[i]);
            seen[i] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Every class appears in training.
        for c in 0..3 {
            prop_assert!(train.iter().any(|&i| labels[i] == c));
        }
    }

    #[test]
    fn micro_f1_is_accuracy(a in labels_strategy(30, 3)) {
        let b: Vec<usize> = a.iter().map(|&x| (x + 1) % 3).collect();
        prop_assert_eq!(micro_f1(&a, &a), 1.0);
        prop_assert_eq!(micro_f1(&b, &a), 0.0);
    }
}

//! Property-based tests for the optimization substrate.

use mvag_optim::cobyla::{cobyla, CobylaParams, Constraint};
use mvag_optim::simplex::{
    expand_weights, is_on_simplex, project_simplex, reduced_simplex_constraints,
};
use mvag_optim::QuadraticSurrogate;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn projection_lands_on_simplex(v in proptest::collection::vec(-5.0f64..5.0, 1..8)) {
        let mut x = v.clone();
        project_simplex(&mut x);
        prop_assert!(is_on_simplex(&x, 1e-9), "projected {:?} -> {:?}", v, x);
    }

    #[test]
    fn projection_is_nonexpansive(
        a in proptest::collection::vec(-3.0f64..3.0, 4),
        b in proptest::collection::vec(-3.0f64..3.0, 4),
    ) {
        let mut pa = a.clone();
        let mut pb = b.clone();
        project_simplex(&mut pa);
        project_simplex(&mut pb);
        let d_orig: f64 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        let d_proj: f64 = pa.iter().zip(&pb).map(|(x, y)| (x - y) * (x - y)).sum();
        prop_assert!(d_proj <= d_orig + 1e-9);
    }

    #[test]
    fn expand_weights_always_on_simplex_when_reduced_feasible(
        mut v in proptest::collection::vec(0.0f64..1.0, 1..6)
    ) {
        // Scale down so Σv ≤ 1.
        let s: f64 = v.iter().sum();
        if s > 1.0 {
            for x in v.iter_mut() { *x /= s * 1.001; }
        }
        let w = expand_weights(&v);
        prop_assert!(is_on_simplex(&w, 1e-9));
    }

    #[test]
    fn cobyla_finds_separable_quadratic_minimum(
        cx in 0.05f64..0.45,
        cy in 0.05f64..0.45,
    ) {
        // Interior optimum: cx + cy < 1 guaranteed by ranges.
        let cons: Vec<Constraint> = reduced_simplex_constraints(2);
        let res = cobyla(
            |v| (v[0] - cx).powi(2) + (v[1] - cy).powi(2),
            &cons,
            &[0.4, 0.3],
            &CobylaParams::default(),
        ).unwrap();
        prop_assert!((res.x[0] - cx).abs() < 5e-3, "x = {:?} target ({cx}, {cy})", res.x);
        prop_assert!((res.x[1] - cy).abs() < 5e-3, "x = {:?} target ({cx}, {cy})", res.x);
    }

    #[test]
    fn cobyla_result_is_feasible(
        gx in -2.0f64..2.0,
        gy in -2.0f64..2.0,
    ) {
        // Arbitrary linear objective over the simplex: optimum at a vertex,
        // result must stay feasible.
        let cons: Vec<Constraint> = reduced_simplex_constraints(2);
        let res = cobyla(
            |v| gx * v[0] + gy * v[1],
            &cons,
            &[0.33, 0.33],
            &CobylaParams::default(),
        ).unwrap();
        prop_assert!(res.x[0] >= -1e-6 && res.x[1] >= -1e-6);
        prop_assert!(res.x[0] + res.x[1] <= 1.0 + 1e-6);
    }

    #[test]
    fn surrogate_exact_on_linear_functions(
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        c in -2.0f64..2.0,
    ) {
        // A linear function is inside the quadratic model class; with many
        // samples and tiny ridge the fit must reproduce it.
        let f = |v: &[f64]| a * v[0] + b * v[1] + c;
        let mut samples = Vec::new();
        let mut values = Vec::new();
        for i in 0..5 {
            for j in 0..(5 - i) {
                let v = [i as f64 * 0.2, j as f64 * 0.2];
                samples.push(vec![v[0], v[1], 1.0 - v[0] - v[1]]);
                values.push(f(&v));
            }
        }
        let s = QuadraticSurrogate::fit(&samples, &values, 1e-10).unwrap();
        let test = [0.13, 0.24];
        let w = vec![test[0], test[1], 1.0 - test[0] - test[1]];
        prop_assert!((s.eval(&w) - f(&test)).abs() < 1e-5);
    }

    #[test]
    fn surrogate_permutation_of_sample_order_is_irrelevant(seed in 0u64..50) {
        let samples = vec![
            vec![1.0/3.0, 1.0/3.0, 1.0/3.0],
            vec![2.0/3.0, 1.0/6.0, 1.0/6.0],
            vec![1.0/6.0, 2.0/3.0, 1.0/6.0],
            vec![1.0/6.0, 1.0/6.0, 2.0/3.0],
        ];
        let values = vec![0.5, 0.8, 0.3, 0.9];
        let s1 = QuadraticSurrogate::fit(&samples, &values, 0.05).unwrap();
        // Rotate sample order by seed.
        let rot = (seed % 4) as usize;
        let mut samples2 = samples.clone();
        let mut values2 = values.clone();
        samples2.rotate_left(rot);
        values2.rotate_left(rot);
        let s2 = QuadraticSurrogate::fit(&samples2, &values2, 0.05).unwrap();
        let w = [0.25, 0.35, 0.40];
        // Exact-arithmetic invariance; numerically the dual Cholesky solve
        // rounds differently under row permutation.
        let (a, b) = (s1.eval(&w), s2.eval(&w));
        prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()), "{a} vs {b}");
    }
}

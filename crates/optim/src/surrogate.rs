//! The quadratic interpolation surrogate of SGLA+ (Eqs. 7–9).
//!
//! SGLA+ replaces the expensive objective `h(w)` with a quadratic
//! `h_Θ(w) = Σ_{i≤j<r} θᵢⱼ wᵢwⱼ + Σ_{i<r} θᵢᵣ wᵢ + θᵣᵣ`
//! in the *reduced* weights (the last weight is eliminated through the
//! simplex equality). With only `r + 1` samples the coefficient system is
//! underdetermined; following Eq. (9) we solve the ridge-regularized
//! least-squares problem
//! `min_Θ Σ_ℓ (h(w_ℓ) − h_Θ(w_ℓ))² + α_r ‖Θ‖_F²`
//! — a least-Frobenius-norm quadratic model in the spirit of \[42\] —
//! via Cholesky on the normal equations.

use crate::{OptimError, Result};
use mvag_sparse::chol::ridge_solve_weighted;
use mvag_sparse::DenseMatrix;

/// A fitted quadratic surrogate over full weight vectors of length `r`.
#[derive(Debug, Clone)]
pub struct QuadraticSurrogate {
    /// Number of views `r` (full weight-vector length).
    r: usize,
    /// Flat coefficient vector: quadratic terms (i ≤ j < r−1 ... packed),
    /// then linear terms, then the constant.
    theta: Vec<f64>,
}

impl QuadraticSurrogate {
    /// Number of free coefficients for `r` views: `(r−1)r/2` quadratic +
    /// `(r−1)` linear + 1 constant (matching Eq. 7's index ranges).
    pub fn num_coeffs(r: usize) -> usize {
        let p = r - 1;
        p * (p + 1) / 2 + p + 1
    }

    /// Fits the surrogate to observations `(samples[ℓ], values[ℓ])` where
    /// each sample is a *full* weight vector of length `r`, using ridge
    /// parameter `alpha` (the paper's `α_r`, default 0.05).
    ///
    /// # Errors
    /// * [`OptimError::InvalidArgument`] for inconsistent input, fewer than
    ///   2 samples, `r < 2`, or non-finite values.
    /// * Propagates factorization failures (cannot occur for `alpha > 0`).
    pub fn fit(samples: &[Vec<f64>], values: &[f64], alpha: f64) -> Result<Self> {
        if samples.len() != values.len() {
            return Err(OptimError::InvalidArgument(format!(
                "{} samples vs {} values",
                samples.len(),
                values.len()
            )));
        }
        if samples.len() < 2 {
            return Err(OptimError::InvalidArgument(
                "surrogate needs at least 2 samples".into(),
            ));
        }
        let r = samples[0].len();
        if r < 2 {
            return Err(OptimError::InvalidArgument(format!(
                "surrogate needs r >= 2 views, got {r}"
            )));
        }
        if alpha <= 0.0 {
            return Err(OptimError::InvalidArgument(format!(
                "ridge parameter must be positive, got {alpha}"
            )));
        }
        for (l, s) in samples.iter().enumerate() {
            if s.len() != r {
                return Err(OptimError::InvalidArgument(format!(
                    "sample {l} has length {}, expected {r}",
                    s.len()
                )));
            }
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::InvalidArgument(
                "non-finite objective value among samples".into(),
            ));
        }
        let ncoef = Self::num_coeffs(r);
        let mut design = DenseMatrix::zeros(samples.len(), ncoef);
        for (l, s) in samples.iter().enumerate() {
            let feats = features(&s[..r - 1]);
            design.row_mut(l).copy_from_slice(&feats);
        }
        let p = r - 1;
        let nquad = p * (p + 1) / 2;
        let theta = if samples.len() <= ncoef {
            // Underdetermined / exactly determined: the least-Frobenius-
            // norm interpolant of [42] — interpolate the samples exactly
            // while minimizing the (weighted) norm of Θ, dominated by the
            // Hessian block. Solved in dual form:
            //   θ = W⁻¹Φᵀ μ,  (Φ W⁻¹ Φᵀ + δI) μ = y,
            // where W puts weight 1 on quadratic coefficients and a tiny
            // weight on linear/constant ones (they interpolate freely),
            // and δ = α_r·1e-6 keeps the dual system SPD when samples
            // nearly coincide.
            let m = samples.len();
            let inv_w: Vec<f64> = (0..ncoef)
                .map(|j| if j < nquad { 1.0 } else { 1e6 })
                .collect();
            // K = Φ W⁻¹ Φᵀ (m × m).
            let mut kmat = DenseMatrix::zeros(m, m);
            for a in 0..m {
                for b in a..m {
                    let mut acc = 0.0;
                    for j in 0..ncoef {
                        acc += design[(a, j)] * inv_w[j] * design[(b, j)];
                    }
                    kmat[(a, b)] = acc;
                    kmat[(b, a)] = acc;
                }
            }
            let delta = alpha * 1e-6;
            for i in 0..m {
                kmat[(i, i)] += delta;
            }
            let mu = mvag_sparse::chol::Cholesky::factor(&kmat)?.solve(values)?;
            let mut theta = vec![0.0; ncoef];
            for (j, t) in theta.iter_mut().enumerate() {
                let mut acc = 0.0;
                for a in 0..m {
                    acc += design[(a, j)] * mu[a];
                }
                *t = inv_w[j] * acc;
            }
            theta
        } else {
            // Overdetermined (extra samples, Fig. 10's +Δs): weighted
            // ridge regression, α_r on the Hessian block, vanishing
            // stabilizer on linear/constant terms.
            let mut alphas = vec![alpha; ncoef];
            for a in alphas.iter_mut().skip(nquad) {
                *a = alpha * 1e-6;
            }
            ridge_solve_weighted(&design, values, &alphas)?
        };
        Ok(QuadraticSurrogate { r, theta })
    }

    /// Evaluates `h_Θ` at a full weight vector of length `r` (only the
    /// first `r − 1` entries matter, per Eq. 7).
    ///
    /// # Panics
    /// Debug-asserts the length; release builds read the first `r − 1`
    /// coordinates.
    pub fn eval(&self, w: &[f64]) -> f64 {
        debug_assert!(w.len() >= self.r - 1);
        let feats = features(&w[..self.r - 1]);
        feats.iter().zip(&self.theta).map(|(f, t)| f * t).sum()
    }

    /// Evaluates on reduced coordinates `v ∈ R^{r−1}` directly.
    pub fn eval_reduced(&self, v: &[f64]) -> f64 {
        debug_assert_eq!(v.len(), self.r - 1);
        let feats = features(v);
        feats.iter().zip(&self.theta).map(|(f, t)| f * t).sum()
    }

    /// Number of views `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// The flat coefficient vector (quadratic, linear, constant blocks).
    pub fn coefficients(&self) -> &[f64] {
        &self.theta
    }
}

/// Feature map of Eq. (7) on reduced coordinates: all `vᵢvⱼ` (i ≤ j),
/// then all `vᵢ`, then 1.
fn features(v: &[f64]) -> Vec<f64> {
    let p = v.len();
    let mut out = Vec::with_capacity(p * (p + 1) / 2 + p + 1);
    for i in 0..p {
        for j in i..p {
            out.push(v[i] * v[j]);
        }
    }
    out.extend_from_slice(v);
    out.push(1.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference quadratic in reduced coordinates.
    fn truth(v: &[f64]) -> f64 {
        2.0 * v[0] * v[0] + 1.0 * v[0] * v[1] - 0.5 * v[1] * v[1] + 3.0 * v[0] - 1.0 * v[1] + 0.7
    }

    fn simplex_samples_r3() -> Vec<Vec<f64>> {
        // The paper's sampling scheme for r = 3 (Example 4).
        vec![
            vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
            vec![2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0],
            vec![1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0],
            vec![1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0],
        ]
    }

    #[test]
    fn num_coeffs_formula() {
        assert_eq!(QuadraticSurrogate::num_coeffs(2), 1 + 1 + 1);
        assert_eq!(QuadraticSurrogate::num_coeffs(3), 3 + 2 + 1);
        assert_eq!(QuadraticSurrogate::num_coeffs(4), 6 + 3 + 1);
        assert_eq!(QuadraticSurrogate::num_coeffs(11), 55 + 10 + 1);
    }

    #[test]
    fn interpolates_true_quadratic_with_enough_samples() {
        // With ≥ ncoef well-spread samples and tiny ridge, the fit must
        // recover the quadratic almost exactly.
        let mut samples = Vec::new();
        let mut values = Vec::new();
        for i in 0..5 {
            for j in 0..(5 - i) {
                let v = [i as f64 * 0.2, j as f64 * 0.2];
                let w = vec![v[0], v[1], 1.0 - v[0] - v[1]];
                values.push(truth(&v));
                samples.push(w);
            }
        }
        let s = QuadraticSurrogate::fit(&samples, &values, 1e-10).unwrap();
        for (w, val) in samples.iter().zip(&values) {
            assert!(
                (s.eval(w) - val).abs() < 1e-6,
                "at {w:?}: {} vs {val}",
                s.eval(w)
            );
        }
        // Off-sample point.
        let v = [0.17, 0.21];
        let w = vec![v[0], v[1], 1.0 - v[0] - v[1]];
        assert!((s.eval(&w) - truth(&v)).abs() < 1e-5);
    }

    #[test]
    fn paper_sampling_gives_reasonable_approximation() {
        // r + 1 = 4 samples for a 6-coefficient model: underdetermined, the
        // ridge picks the minimum-norm interpolant; it should still track a
        // gentle quadratic on the simplex.
        let samples = simplex_samples_r3();
        let values: Vec<f64> = samples.iter().map(|w| truth(&w[..2])).collect();
        let s = QuadraticSurrogate::fit(&samples, &values, 0.05).unwrap();
        // At the samples themselves, error should be small (ridge trades a
        // little bias for stability).
        for (w, val) in samples.iter().zip(&values) {
            assert!(
                (s.eval(w) - val).abs() < 0.35 * (1.0 + val.abs()),
                "at {w:?}: {} vs {val}",
                s.eval(w)
            );
        }
    }

    #[test]
    fn eval_reduced_matches_eval() {
        let samples = simplex_samples_r3();
        let values: Vec<f64> = samples.iter().map(|w| truth(&w[..2])).collect();
        let s = QuadraticSurrogate::fit(&samples, &values, 0.05).unwrap();
        let w = [0.3, 0.5, 0.2];
        assert!((s.eval(&w) - s.eval_reduced(&w[..2])).abs() < 1e-14);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let samples = simplex_samples_r3();
        let values: Vec<f64> = samples.iter().map(|w| truth(&w[..2])).collect();
        let s_small = QuadraticSurrogate::fit(&samples, &values, 1e-6).unwrap();
        let s_big = QuadraticSurrogate::fit(&samples, &values, 100.0).unwrap();
        // The Hessian (quadratic block) is what the Frobenius penalty
        // shrinks; linear/constant terms stay near-interpolating.
        let quad_norm = |s: &QuadraticSurrogate| {
            s.coefficients()[..3]
                .iter()
                .map(|c| c * c)
                .sum::<f64>()
                .sqrt()
        };
        assert!(quad_norm(&s_big) < quad_norm(&s_small));
    }

    #[test]
    fn rejects_bad_input() {
        let good = simplex_samples_r3();
        let vals = vec![1.0; 4];
        assert!(QuadraticSurrogate::fit(&good, &vals[..3], 0.05).is_err());
        assert!(QuadraticSurrogate::fit(&good[..1], &vals[..1], 0.05).is_err());
        assert!(QuadraticSurrogate::fit(&good, &vals, 0.0).is_err());
        assert!(QuadraticSurrogate::fit(&good, &[1.0, f64::NAN, 1.0, 1.0], 0.05).is_err());
        let ragged = vec![vec![0.5, 0.5], vec![0.3, 0.3, 0.4]];
        assert!(QuadraticSurrogate::fit(&ragged, &[1.0, 2.0], 0.05).is_err());
        let r1 = vec![vec![1.0], vec![1.0]];
        assert!(QuadraticSurrogate::fit(&r1, &[1.0, 2.0], 0.05).is_err());
    }

    #[test]
    fn two_view_surrogate() {
        // r = 2: a univariate quadratic in w₁.
        let samples = vec![
            vec![0.5, 0.5],
            vec![0.75, 0.25],
            vec![0.25, 0.75],
            vec![0.1, 0.9],
        ];
        let f = |w1: f64| (w1 - 0.6) * (w1 - 0.6) + 1.0;
        let values: Vec<f64> = samples.iter().map(|w| f(w[0])).collect();
        let s = QuadraticSurrogate::fit(&samples, &values, 1e-8).unwrap();
        // Minimum of the surrogate should be near 0.6.
        let mut best_w1 = 0.0;
        let mut best_v = f64::INFINITY;
        for i in 0..=100 {
            let w1 = i as f64 / 100.0;
            let v = s.eval(&[w1, 1.0 - w1]);
            if v < best_v {
                best_v = v;
                best_w1 = w1;
            }
        }
        assert!((best_w1 - 0.6).abs() < 0.02, "argmin = {best_w1}");
    }
}

//! Probability-simplex utilities.
//!
//! SGLA's feasible set (Eq. 6) is the probability simplex
//! `Δ_r = {w : wᵢ ≥ 0, Σ wᵢ = 1}`. The optimizers work in the *reduced*
//! coordinates `v = (w₁, …, w_{r−1})` — the paper's Algorithms 1–2 update
//! only the first `r − 1` weights and recover `w_r = 1 − Σ vᵢ` (lines 8–9
//! and 13–14 respectively).

/// Projects `v` onto the canonical probability simplex
/// `{x : xᵢ ≥ 0, Σ xᵢ = 1}` in `O(d log d)` (sort-based algorithm of
/// Duchi et al.).
pub fn project_simplex(v: &mut [f64]) {
    let d = v.len();
    if d == 0 {
        return;
    }
    let mut u: Vec<f64> = v.to_vec();
    u.sort_by(|a, b| b.partial_cmp(a).expect("finite coordinates"));
    let mut css = 0.0;
    let mut rho = 0usize;
    let mut theta = 0.0;
    for (i, &ui) in u.iter().enumerate() {
        css += ui;
        let t = (css - 1.0) / (i as f64 + 1.0);
        if ui - t > 0.0 {
            rho = i + 1;
            theta = t;
        }
    }
    let _ = rho;
    for x in v.iter_mut() {
        *x = (*x - theta).max(0.0);
    }
}

/// Projects reduced coordinates `v ∈ R^{r−1}` onto the *reduced simplex*
/// `{v : vᵢ ≥ 0, Σ vᵢ ≤ 1}` by lifting to the full simplex, projecting,
/// and dropping the slack coordinate.
pub fn project_reduced_simplex(v: &mut [f64]) {
    let mut full = Vec::with_capacity(v.len() + 1);
    full.extend_from_slice(v);
    full.push(1.0 - v.iter().sum::<f64>());
    project_simplex(&mut full);
    v.copy_from_slice(&full[..v.len()]);
}

/// Expands reduced coordinates to the full weight vector
/// `w = (v₁, …, v_{r−1}, 1 − Σ vᵢ)`.
pub fn expand_weights(v: &[f64]) -> Vec<f64> {
    let mut w = Vec::with_capacity(v.len() + 1);
    w.extend_from_slice(v);
    w.push((1.0 - v.iter().sum::<f64>()).max(0.0));
    w
}

/// Reduces a full weight vector to its first `r − 1` coordinates.
pub fn reduce_weights(w: &[f64]) -> Vec<f64> {
    debug_assert!(!w.is_empty());
    w[..w.len() - 1].to_vec()
}

/// Whether `w` lies on the probability simplex within tolerance.
pub fn is_on_simplex(w: &[f64], tol: f64) -> bool {
    !w.is_empty()
        && w.iter().all(|&x| x >= -tol)
        && (w.iter().sum::<f64>() - 1.0).abs() <= tol * w.len() as f64
}

/// A boxed inequality constraint `g(v) ≥ 0` (shared with the optimizers).
pub type BoxedConstraint = Box<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// The reduced-coordinate inequality constraints of Eq. (6), as functions
/// `g(v) ≥ 0`: each `vᵢ ≥ 0` plus the slack `1 − Σ vᵢ ≥ 0`.
pub fn reduced_simplex_constraints(dim: usize) -> Vec<BoxedConstraint> {
    let mut cons: Vec<BoxedConstraint> = Vec::with_capacity(dim + 1);
    for i in 0..dim {
        cons.push(Box::new(move |v: &[f64]| v[i]));
    }
    cons.push(Box::new(|v: &[f64]| 1.0 - v.iter().sum::<f64>()));
    cons
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_already_feasible_is_identity() {
        let mut v = vec![0.2, 0.3, 0.5];
        project_simplex(&mut v);
        assert!((v[0] - 0.2).abs() < 1e-12);
        assert!((v[1] - 0.3).abs() < 1e-12);
        assert!((v[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn project_clamps_negative() {
        let mut v = vec![1.5, -0.5];
        project_simplex(&mut v);
        assert!(is_on_simplex(&v, 1e-12));
        assert_eq!(v[1], 0.0);
        assert!((v[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_is_idempotent_and_feasible() {
        let mut v = vec![3.0, -2.0, 0.5, 0.1];
        project_simplex(&mut v);
        assert!(is_on_simplex(&v, 1e-12));
        let before = v.clone();
        project_simplex(&mut v);
        for (a, b) in v.iter().zip(&before) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_minimizes_distance_vs_candidates() {
        // The projection of [0.6, 0.6] onto Δ₂ is [0.5, 0.5].
        let mut v = vec![0.6, 0.6];
        project_simplex(&mut v);
        assert!((v[0] - 0.5).abs() < 1e-12);
        assert!((v[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reduced_projection() {
        let mut v = vec![0.8, 0.8]; // sum 1.6 > 1
        project_reduced_simplex(&mut v);
        assert!(v.iter().all(|&x| x >= 0.0));
        assert!(v.iter().sum::<f64>() <= 1.0 + 1e-12);
        // Symmetric input stays symmetric.
        assert!((v[0] - v[1]).abs() < 1e-12);
    }

    #[test]
    fn expand_reduce_roundtrip() {
        let w = vec![0.2, 0.3, 0.5];
        let v = reduce_weights(&w);
        assert_eq!(v, vec![0.2, 0.3]);
        let w2 = expand_weights(&v);
        for (a, b) in w.iter().zip(&w2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn constraints_detect_feasibility() {
        let cons = reduced_simplex_constraints(2);
        let feasible = [0.3, 0.3];
        assert!(cons.iter().all(|c| c(&feasible) >= 0.0));
        let infeasible = [0.8, 0.4]; // sum > 1
        assert!(cons.iter().any(|c| c(&infeasible) < 0.0));
        let negative = [-0.1, 0.5];
        assert!(cons.iter().any(|c| c(&negative) < 0.0));
    }

    #[test]
    fn is_on_simplex_checks() {
        assert!(is_on_simplex(&[1.0], 1e-12));
        assert!(is_on_simplex(&[0.5, 0.5], 1e-12));
        assert!(!is_on_simplex(&[0.5, 0.6], 1e-9));
        assert!(!is_on_simplex(&[-0.1, 1.1], 1e-9));
        assert!(!is_on_simplex(&[], 1e-9));
    }
}

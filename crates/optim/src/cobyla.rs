//! A COBYLA-style derivative-free trust-region optimizer.
//!
//! From-scratch implementation of the scheme behind Powell's COBYLA \[40\]
//! ("Constrained Optimization BY Linear Approximations"), the optimizer the
//! paper invokes at Algorithm 1 line 6 and Algorithm 2 line 11:
//!
//! 1. keep a simplex of `p + 1` interpolation points;
//! 2. fit *linear* models of the objective and every constraint through
//!    the simplex (one LU solve each);
//! 3. minimize the model objective inside a trust region of radius `ρ`,
//!    subject to the linearized constraints (a small convex piecewise-
//!    linear subproblem, solved by projected subgradient — exact enough at
//!    the `p ≤ 10` dimensionalities SGLA produces);
//! 4. move the simplex / shrink `ρ` based on a merit function combining
//!    objective and constraint violation, with geometry repair when the
//!    interpolation system degenerates.
//!
//! Constraints follow the COBYLA convention: `g(x) ≥ 0` is feasible.

use crate::{OptimError, Result};
use mvag_sparse::lu::Lu;
use mvag_sparse::{vecops, DenseMatrix};

/// Tuning parameters for [`cobyla`].
#[derive(Debug, Clone)]
pub struct CobylaParams {
    /// Initial trust-region radius (default `0.15`; the SGLA weight vector
    /// lives on a unit simplex, so this is a sizeable first step).
    pub rho_start: f64,
    /// Final trust-region radius; convergence is declared when `ρ` falls
    /// below it (default `1e-6`).
    pub rho_end: f64,
    /// Hard budget on objective evaluations (default 500).
    pub max_evals: usize,
}

impl Default for CobylaParams {
    fn default() -> Self {
        CobylaParams {
            rho_start: 0.15,
            rho_end: 1e-6,
            max_evals: 500,
        }
    }
}

/// Outcome of a [`cobyla`] run.
#[derive(Debug, Clone)]
pub struct CobylaResult {
    /// Best point found (feasible within `1e-8` unless the feasible set is
    /// empty, in which case least-violating).
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Objective evaluations consumed.
    pub evals: usize,
    /// `true` if the trust region shrank below `rho_end` (normal
    /// convergence), `false` if the evaluation budget stopped the run.
    pub converged: bool,
}

/// A boxed inequality constraint `g(x) ≥ 0`.
pub type Constraint = Box<dyn Fn(&[f64]) -> f64 + Send + Sync>;

struct Point {
    x: Vec<f64>,
    f: f64,
    cons: Vec<f64>,
}

impl Point {
    fn violation(&self) -> f64 {
        self.cons.iter().map(|&c| (-c).max(0.0)).sum()
    }
    fn merit(&self, mu: f64) -> f64 {
        self.f + mu * self.violation()
    }
}

/// Minimizes `f` subject to `constraints[i](x) ≥ 0`, starting from `x0`.
///
/// # Errors
/// * [`OptimError::InvalidArgument`] for an empty/non-finite start point.
/// * [`OptimError::NonFiniteObjective`] if `f` returns NaN/∞ at the start.
pub fn cobyla<F>(
    mut f: F,
    constraints: &[Constraint],
    x0: &[f64],
    params: &CobylaParams,
) -> Result<CobylaResult>
where
    F: FnMut(&[f64]) -> f64,
{
    let p = x0.len();
    if p == 0 {
        return Err(OptimError::InvalidArgument(
            "cobyla needs at least one variable".into(),
        ));
    }
    if x0.iter().any(|v| !v.is_finite()) {
        return Err(OptimError::InvalidArgument(
            "cobyla start point has non-finite coordinates".into(),
        ));
    }
    if params.rho_start <= params.rho_end || params.rho_end <= 0.0 {
        return Err(OptimError::InvalidArgument(format!(
            "invalid trust region radii: start {} end {}",
            params.rho_start, params.rho_end
        )));
    }

    let mut evals = 0usize;
    let mut eval_point = |x: &[f64], f: &mut F, evals: &mut usize| -> Point {
        *evals += 1;
        let fx = f(x);
        let cons: Vec<f64> = constraints.iter().map(|c| c(x)).collect();
        Point {
            x: x.to_vec(),
            f: if fx.is_finite() { fx } else { f64::INFINITY },
            cons,
        }
    };

    let mut rho = params.rho_start;
    let mut mu = 1.0f64;
    let first = eval_point(x0, &mut f, &mut evals);
    if !first.f.is_finite() {
        return Err(OptimError::NonFiniteObjective { at: x0.to_vec() });
    }
    let mut simplex: Vec<Point> = Vec::with_capacity(p + 1);
    simplex.push(first);
    for i in 0..p {
        let mut x = x0.to_vec();
        x[i] += rho;
        simplex.push(eval_point(&x, &mut f, &mut evals));
    }

    let mut converged = false;
    while evals < params.max_evals {
        if rho < params.rho_end {
            converged = true;
            break;
        }
        // Index of the best vertex by merit.
        let best = argmin_merit(&simplex, mu);
        // Linear models around the best vertex.
        let models = match fit_models(&simplex, best, constraints.len()) {
            Some(m) => m,
            None => {
                // Degenerate geometry: rebuild the simplex around the best.
                rebuild(&mut simplex, best, rho, &mut f, &mut eval_point, &mut evals);
                continue;
            }
        };
        // Keep the penalty dominant over the objective gradient so that
        // merit never rewards leaving the feasible region (Powell's σ
        // update, simplified).
        if !constraints.is_empty() {
            mu = mu.max(10.0 * vecops::norm2(&models.g)).min(1e9);
        }
        // Trust-region step on the models.
        let d = solve_subproblem(&models, &simplex[best], rho, mu);
        let dn = vecops::norm2(&d);
        if dn < 0.05 * rho {
            // Model sees no useful step at this resolution.
            rho *= 0.5;
            rebuild(&mut simplex, best, rho, &mut f, &mut eval_point, &mut evals);
            continue;
        }
        let mut x_new = simplex[best].x.clone();
        vecops::axpy(1.0, &d, &mut x_new);
        let cand = eval_point(&x_new, &mut f, &mut evals);
        // Raise the penalty if the candidate trades feasibility for
        // objective (standard COBYLA penalty update).
        let viol = cand.violation();
        if viol > 1e-10 && cand.f < simplex[best].f {
            mu = (mu * 2.0).min(1e9);
        }
        let best_merit = simplex[best].merit(mu);
        if cand.merit(mu) < best_merit - 1e-14 * best_merit.abs().max(1.0) {
            // Progress: replace the worst vertex; grow the trust region
            // when the model predicted well and the step hit the boundary.
            let predicted = -vecops::dot(&models.g, &d);
            let actual = simplex[best].f - cand.f;
            if dn > 0.85 * rho && predicted > 0.0 && actual > 0.6 * predicted {
                rho = (rho * 2.0).min(params.rho_start);
            }
            let worst = argmax_merit(&simplex, mu);
            simplex[worst] = cand;
        } else {
            // No progress over the best vertex: shrink and recentre.
            let worst = argmax_merit(&simplex, mu);
            if cand.merit(mu) < simplex[worst].merit(mu) {
                simplex[worst] = cand;
            }
            rho *= 0.5;
            let best_now = argmin_merit(&simplex, mu);
            rebuild(
                &mut simplex,
                best_now,
                rho,
                &mut f,
                &mut eval_point,
                &mut evals,
            );
        }
    }

    // Prefer the feasible vertex with the smallest objective; fall back to
    // smallest merit.
    let feas_tol = 1e-8;
    let winner = simplex
        .iter()
        .filter(|pt| pt.violation() <= feas_tol)
        .min_by(|a, b| a.f.partial_cmp(&b.f).expect("finite"))
        .unwrap_or_else(|| {
            // No feasible vertex: return the least-violating one so the
            // caller at least gets a near-feasible point.
            simplex
                .iter()
                .min_by(|a, b| {
                    a.violation()
                        .partial_cmp(&b.violation())
                        .expect("finite violation")
                })
                .expect("simplex non-empty")
        });
    Ok(CobylaResult {
        x: winner.x.clone(),
        fx: winner.f,
        evals,
        converged,
    })
}

struct Models {
    /// Objective gradient.
    g: Vec<f64>,
    /// Constraint gradients, one row per constraint.
    a: Vec<Vec<f64>>,
}

fn fit_models(simplex: &[Point], base: usize, ncons: usize) -> Option<Models> {
    let p = simplex[base].x.len();
    // Build the difference matrix M (p × p): rows are (x_i − x_base) over
    // the other vertices.
    let others: Vec<usize> = (0..simplex.len()).filter(|&i| i != base).collect();
    debug_assert_eq!(others.len(), p);
    let mut m = DenseMatrix::zeros(p, p);
    for (row, &i) in others.iter().enumerate() {
        for c in 0..p {
            m[(row, c)] = simplex[i].x[c] - simplex[base].x[c];
        }
    }
    let lu = Lu::factor(&m).ok()?;
    let rhs_f: Vec<f64> = others
        .iter()
        .map(|&i| simplex[i].f - simplex[base].f)
        .collect();
    if rhs_f.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let g = lu.solve(&rhs_f).ok()?;
    let mut a = Vec::with_capacity(ncons);
    for j in 0..ncons {
        let rhs: Vec<f64> = others
            .iter()
            .map(|&i| simplex[i].cons[j] - simplex[base].cons[j])
            .collect();
        a.push(lu.solve(&rhs).ok()?);
    }
    Some(Models { g, a })
}

/// Minimizes `g·d + μ Σ max(0, −(c₀ⱼ + aⱼ·d))` over `‖d‖ ≤ ρ` by projected
/// subgradient descent from `d = 0`.
fn solve_subproblem(models: &Models, base: &Point, rho: f64, mu: f64) -> Vec<f64> {
    let p = models.g.len();
    let mut d = vec![0.0f64; p];
    let mut best_d = d.clone();
    let gscale = vecops::norm2(&models.g).max(1e-12);
    let pen = mu.max(10.0 * gscale);
    let psi = |d: &[f64]| -> f64 {
        let mut v = vecops::dot(&models.g, d);
        for (c0, a) in base.cons.iter().zip(&models.a) {
            v += pen * (-(c0 + vecops::dot(a, d))).max(0.0);
        }
        v
    };
    let mut best_val = psi(&d);
    let iters = 80;
    for it in 1..=iters {
        // Subgradient of ψ at d.
        let mut sub = models.g.clone();
        for (c0, a) in base.cons.iter().zip(&models.a) {
            if c0 + vecops::dot(a, &d) < 0.0 {
                vecops::axpy(-pen, a, &mut sub);
            }
        }
        let sn = vecops::norm2(&sub);
        if sn < 1e-14 {
            break;
        }
        let step = rho / (sn * (it as f64).sqrt());
        vecops::axpy(-step, &sub, &mut d);
        // Project onto the trust-region ball.
        let dn = vecops::norm2(&d);
        if dn > rho {
            vecops::scale(rho / dn, &mut d);
        }
        let v = psi(&d);
        if v < best_val {
            best_val = v;
            best_d.copy_from_slice(&d);
        }
    }
    best_d
}

fn rebuild<F, E>(
    simplex: &mut Vec<Point>,
    best: usize,
    rho: f64,
    f: &mut F,
    eval_point: &mut E,
    evals: &mut usize,
) where
    F: FnMut(&[f64]) -> f64,
    E: FnMut(&[f64], &mut F, &mut usize) -> Point,
{
    let base = simplex[best].x.clone();
    let p = base.len();
    let keep = simplex.swap_remove(best);
    simplex.clear();
    simplex.push(keep);
    for i in 0..p {
        let mut x = base.clone();
        x[i] += rho;
        simplex.push(eval_point(&x, f, evals));
    }
}

fn argmin_merit(simplex: &[Point], mu: f64) -> usize {
    simplex
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.merit(mu).partial_cmp(&b.merit(mu)).expect("finite merit"))
        .expect("non-empty simplex")
        .0
}

fn argmax_merit(simplex: &[Point], mu: f64) -> usize {
    simplex
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.merit(mu).partial_cmp(&b.merit(mu)).expect("finite merit"))
        .expect("non-empty simplex")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::reduced_simplex_constraints;

    #[allow(clippy::type_complexity)]
    fn boxed(cons: Vec<Box<dyn Fn(&[f64]) -> f64 + Send + Sync>>) -> Vec<Constraint> {
        cons
    }

    #[test]
    fn interior_quadratic_optimum() {
        // min (x−0.3)² + (y−0.4)² on the reduced simplex: optimum interior.
        let cons = boxed(reduced_simplex_constraints(2));
        let res = cobyla(
            |v| (v[0] - 0.3).powi(2) + (v[1] - 0.4).powi(2),
            &cons,
            &[0.5, 0.25],
            &CobylaParams::default(),
        )
        .unwrap();
        assert!(res.converged);
        assert!((res.x[0] - 0.3).abs() < 1e-3, "x = {:?}", res.x);
        assert!((res.x[1] - 0.4).abs() < 1e-3, "x = {:?}", res.x);
    }

    #[test]
    fn boundary_optimum_at_vertex() {
        // min −x − 2y over the simplex: optimum at (0, 1).
        let cons = boxed(reduced_simplex_constraints(2));
        let res = cobyla(
            |v| -v[0] - 2.0 * v[1],
            &cons,
            &[0.33, 0.33],
            &CobylaParams::default(),
        )
        .unwrap();
        assert!(res.x[0].abs() < 1e-3, "x = {:?}", res.x);
        assert!((res.x[1] - 1.0).abs() < 1e-3, "x = {:?}", res.x);
        assert!((res.fx + 2.0).abs() < 1e-3);
    }

    #[test]
    fn clamps_to_nonnegativity_corner() {
        // min (x+1)² + (y+1)²: unconstrained optimum at (−1, −1), feasible
        // optimum at (0, 0).
        let cons = boxed(reduced_simplex_constraints(2));
        let res = cobyla(
            |v| (v[0] + 1.0).powi(2) + (v[1] + 1.0).powi(2),
            &cons,
            &[0.4, 0.4],
            &CobylaParams::default(),
        )
        .unwrap();
        assert!(res.x[0].abs() < 2e-3, "x = {:?}", res.x);
        assert!(res.x[1].abs() < 2e-3, "x = {:?}", res.x);
    }

    #[test]
    fn one_dimensional_problem() {
        let cons = boxed(reduced_simplex_constraints(1));
        let res = cobyla(
            |v| (v[0] - 0.7).powi(2),
            &cons,
            &[0.1],
            &CobylaParams::default(),
        )
        .unwrap();
        assert!((res.x[0] - 0.7).abs() < 1e-3);
    }

    #[test]
    fn respects_eval_budget() {
        let cons = boxed(reduced_simplex_constraints(3));
        let params = CobylaParams {
            max_evals: 25,
            ..Default::default()
        };
        let res = cobyla(
            |v| v.iter().map(|x| x * x).sum::<f64>(),
            &cons,
            &[0.2, 0.2, 0.2],
            &params,
        )
        .unwrap();
        assert!(res.evals <= 25 + 4, "evals = {}", res.evals);
    }

    #[test]
    fn unconstrained_rosenbrock_valley() {
        // No constraints: plain derivative-free minimization still works.
        let cons: Vec<Constraint> = Vec::new();
        let res = cobyla(
            |v| (1.0 - v[0]).powi(2) + 100.0 * (v[1] - v[0] * v[0]).powi(2),
            &cons,
            &[-0.5, 0.5],
            &CobylaParams {
                max_evals: 4000,
                rho_start: 0.5,
                rho_end: 1e-8,
            },
        )
        .unwrap();
        assert!(
            (res.x[0] - 1.0).abs() < 0.05 && (res.x[1] - 1.0).abs() < 0.1,
            "x = {:?} f = {}",
            res.x,
            res.fx
        );
    }

    #[test]
    fn infeasible_start_recovers() {
        let cons = boxed(reduced_simplex_constraints(2));
        let res = cobyla(
            |v| (v[0] - 0.2).powi(2) + (v[1] - 0.2).powi(2),
            &cons,
            &[2.0, 2.0], // far outside the simplex
            &CobylaParams::default(),
        )
        .unwrap();
        assert!(res.x[0] >= -1e-6 && res.x[1] >= -1e-6);
        assert!(res.x[0] + res.x[1] <= 1.0 + 1e-6);
        assert!((res.x[0] - 0.2).abs() < 0.05, "x = {:?}", res.x);
    }

    #[test]
    fn rejects_invalid_input() {
        let cons: Vec<Constraint> = Vec::new();
        assert!(cobyla(|_| 0.0, &cons, &[], &CobylaParams::default()).is_err());
        assert!(cobyla(|_| 0.0, &cons, &[f64::NAN], &CobylaParams::default()).is_err());
        let bad = CobylaParams {
            rho_start: 1e-8,
            rho_end: 1e-6,
            max_evals: 10,
        };
        assert!(cobyla(|_| 0.0, &cons, &[0.5], &bad).is_err());
    }

    #[test]
    fn non_finite_objective_at_start_errors() {
        let cons: Vec<Constraint> = Vec::new();
        assert!(matches!(
            cobyla(|_| f64::NAN, &cons, &[0.5], &CobylaParams::default()),
            Err(OptimError::NonFiniteObjective { .. })
        ));
    }

    #[test]
    fn deterministic() {
        let cons = boxed(reduced_simplex_constraints(2));
        let run = || {
            cobyla(
                |v| (v[0] - 0.6).powi(2) + 0.5 * (v[1] - 0.1).powi(2) + v[0] * v[1],
                &cons,
                &[0.3, 0.3],
                &CobylaParams::default(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.x, b.x);
        assert_eq!(a.evals, b.evals);
    }
}

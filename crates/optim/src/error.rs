//! Error types for the optimization substrate.

use mvag_sparse::SparseError;
use std::fmt;

/// Errors raised by the optimizers and surrogate fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimError {
    /// A linear-algebra kernel failed (singular interpolation system,
    /// non-SPD normal equations, ...).
    Sparse(SparseError),
    /// Structurally invalid input (empty dimension, inconsistent sample
    /// lengths, non-finite starting point, ...).
    InvalidArgument(String),
    /// The objective returned a non-finite value at a feasible point.
    NonFiniteObjective {
        /// The point at which the objective failed.
        at: Vec<f64>,
    },
}

impl fmt::Display for OptimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimError::Sparse(e) => write!(f, "linear algebra error: {e}"),
            OptimError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            OptimError::NonFiniteObjective { at } => {
                write!(f, "objective returned a non-finite value at {at:?}")
            }
        }
    }
}

impl std::error::Error for OptimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptimError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for OptimError {
    fn from(e: SparseError) -> Self {
        OptimError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(OptimError::InvalidArgument("x".into())
            .to_string()
            .contains("invalid"));
        assert!(OptimError::NonFiniteObjective { at: vec![0.5] }
            .to_string()
            .contains("non-finite"));
        assert!(OptimError::from(SparseError::NumericalBreakdown("chol"))
            .to_string()
            .contains("linear algebra"));
    }
}

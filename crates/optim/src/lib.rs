//! Derivative-free constrained optimization substrate for SGLA.
//!
//! The paper optimizes its spectrum-guided objective with two tools, both
//! implemented here from scratch:
//!
//! * [`mod@cobyla`] — a linear-approximation trust-region method in the style
//!   of Powell's COBYLA \[40\]: linear interpolation models of the objective
//!   and constraints over a simplex of points, a trust-region step on the
//!   models, and geometry repair. Used by Algorithm 1 (line 6) and
//!   Algorithm 2 (line 11).
//! * [`surrogate`] — the least-Frobenius-norm quadratic interpolation
//!   `h_Θ` of Eqs. (7)–(9): ridge-regularized regression of a quadratic in
//!   the reduced weights, solved via Cholesky. Used by SGLA+.
//!
//! Plus supporting pieces: projection onto the probability simplex
//! ([`simplex`]) and a penalty-based Nelder–Mead ([`neldermead`]) as an
//! ablation baseline for the optimizer choice.

#![forbid(unsafe_code)]
// Indexed loops over matched row/column structures are the clearest idiom
// for the numerical kernels in this crate: the index relationships *are*
// the algorithm. The iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::field_reassign_with_default)]
#![warn(missing_docs)]

pub mod cobyla;
pub mod error;
pub mod neldermead;
pub mod simplex;
pub mod surrogate;

pub use cobyla::{cobyla, CobylaParams, CobylaResult};
pub use error::OptimError;
pub use surrogate::QuadraticSurrogate;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OptimError>;

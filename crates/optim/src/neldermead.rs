//! Penalty-based Nelder–Mead: ablation baseline for the optimizer choice.
//!
//! The paper motivates Cobyla by the cost of objective evaluations; this
//! simplex-reflection method is the obvious derivative-free alternative and
//! is benchmarked against [`cobyla`](mod@crate::cobyla) in the optimizer
//! ablation (it typically needs noticeably more evaluations to reach the
//! same objective value on the SGLA surface).

use crate::cobyla::Constraint;
use crate::{OptimError, Result};

/// Tuning parameters for [`nelder_mead`].
#[derive(Debug, Clone)]
pub struct NelderMeadParams {
    /// Initial simplex edge length (default 0.15).
    pub step: f64,
    /// Convergence tolerance on the simplex's objective spread
    /// (default 1e-8).
    pub tol: f64,
    /// Hard budget on objective evaluations (default 500).
    pub max_evals: usize,
    /// Quadratic penalty weight for constraint violation (default 1e4).
    pub penalty: f64,
}

impl Default for NelderMeadParams {
    fn default() -> Self {
        NelderMeadParams {
            step: 0.15,
            tol: 1e-8,
            max_evals: 500,
            penalty: 1e4,
        }
    }
}

/// Result of a [`nelder_mead`] run.
#[derive(Debug, Clone)]
pub struct NelderMeadResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Penalized objective at `x`.
    pub fx: f64,
    /// Objective evaluations consumed.
    pub evals: usize,
    /// Whether the simplex collapsed below tolerance.
    pub converged: bool,
}

/// Minimizes `f + penalty · Σ max(0, −gᵢ)²` with the Nelder–Mead simplex
/// method.
///
/// # Errors
/// [`OptimError::InvalidArgument`] for an empty or non-finite start point.
pub fn nelder_mead<F>(
    mut f: F,
    constraints: &[Constraint],
    x0: &[f64],
    params: &NelderMeadParams,
) -> Result<NelderMeadResult>
where
    F: FnMut(&[f64]) -> f64,
{
    let p = x0.len();
    if p == 0 {
        return Err(OptimError::InvalidArgument(
            "nelder_mead needs at least one variable".into(),
        ));
    }
    if x0.iter().any(|v| !v.is_finite()) {
        return Err(OptimError::InvalidArgument(
            "nelder_mead start point has non-finite coordinates".into(),
        ));
    }
    let mut evals = 0usize;
    let pf = |x: &[f64], f: &mut F, evals: &mut usize| -> f64 {
        *evals += 1;
        let base = f(x);
        let pen: f64 = constraints
            .iter()
            .map(|c| {
                let v = c(x);
                if v < 0.0 {
                    v * v
                } else {
                    0.0
                }
            })
            .sum();
        let total = base + params.penalty * pen;
        if total.is_finite() {
            total
        } else {
            f64::INFINITY
        }
    };

    // Initial simplex.
    let mut pts: Vec<(Vec<f64>, f64)> = Vec::with_capacity(p + 1);
    let f0 = pf(x0, &mut f, &mut evals);
    pts.push((x0.to_vec(), f0));
    for i in 0..p {
        let mut x = x0.to_vec();
        x[i] += params.step;
        let v = pf(&x, &mut f, &mut evals);
        pts.push((x, v));
    }

    let (alpha, gamma, rho_c, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut converged = false;
    while evals < params.max_evals {
        pts.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite penalized values"));
        let spread = pts[p].1 - pts[0].1;
        if spread.abs() < params.tol * (1.0 + pts[0].1.abs()) {
            converged = true;
            break;
        }
        // Centroid of all but the worst.
        let mut centroid = vec![0.0; p];
        for (x, _) in pts.iter().take(p) {
            for (c, xi) in centroid.iter_mut().zip(x) {
                *c += xi / p as f64;
            }
        }
        let worst = pts[p].clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = pf(&reflect, &mut f, &mut evals);
        if fr < pts[0].1 {
            // Try expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + gamma * (c - w))
                .collect();
            let fe = pf(&expand, &mut f, &mut evals);
            pts[p] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < pts[p - 1].1 {
            pts[p] = (reflect, fr);
        } else {
            // Contraction.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + rho_c * (w - c))
                .collect();
            let fc = pf(&contract, &mut f, &mut evals);
            if fc < worst.1 {
                pts[p] = (contract, fc);
            } else {
                // Shrink towards the best.
                let best = pts[0].0.clone();
                for item in pts.iter_mut().skip(1) {
                    let shrunk: Vec<f64> = best
                        .iter()
                        .zip(&item.0)
                        .map(|(b, x)| b + sigma * (x - b))
                        .collect();
                    let fv = pf(&shrunk, &mut f, &mut evals);
                    *item = (shrunk, fv);
                }
            }
        }
    }
    pts.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite penalized values"));
    Ok(NelderMeadResult {
        x: pts[0].0.clone(),
        fx: pts[0].1,
        evals,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::reduced_simplex_constraints;

    #[test]
    fn unconstrained_quadratic() {
        let cons: Vec<Constraint> = Vec::new();
        let res = nelder_mead(
            |v| (v[0] - 1.0).powi(2) + (v[1] + 2.0).powi(2),
            &cons,
            &[0.0, 0.0],
            &NelderMeadParams {
                max_evals: 2000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(res.converged);
        assert!((res.x[0] - 1.0).abs() < 1e-3);
        assert!((res.x[1] + 2.0).abs() < 1e-3);
    }

    #[test]
    fn penalized_simplex_constraint() {
        let cons = reduced_simplex_constraints(2);
        let res = nelder_mead(
            |v| -v[0] - 2.0 * v[1],
            &cons,
            &[0.3, 0.3],
            &NelderMeadParams {
                max_evals: 3000,
                penalty: 1e6,
                ..Default::default()
            },
        )
        .unwrap();
        // Near (0, 1) up to penalty softening.
        assert!(res.x[1] > 0.95, "x = {:?}", res.x);
        assert!(res.x[0] < 0.05, "x = {:?}", res.x);
        assert!(res.x[0] + res.x[1] <= 1.01);
    }

    #[test]
    fn rejects_bad_start() {
        let cons: Vec<Constraint> = Vec::new();
        assert!(nelder_mead(|_| 0.0, &cons, &[], &NelderMeadParams::default()).is_err());
        assert!(nelder_mead(
            |_| 0.0,
            &cons,
            &[f64::INFINITY],
            &NelderMeadParams::default()
        )
        .is_err());
    }

    #[test]
    fn budget_respected() {
        let cons: Vec<Constraint> = Vec::new();
        let params = NelderMeadParams {
            max_evals: 30,
            ..Default::default()
        };
        let res = nelder_mead(
            |v| v.iter().map(|x| x * x).sum::<f64>(),
            &cons,
            &[1.0, 1.0, 1.0],
            &params,
        )
        .unwrap();
        assert!(res.evals <= 30 + 4);
    }
}

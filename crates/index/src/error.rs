//! Error type for the index subsystem.

use std::fmt;

/// Errors raised by index construction, search, and persistence.
#[derive(Debug)]
pub enum IndexError {
    /// Filesystem I/O failed.
    Io(std::io::Error),
    /// An index file failed structural validation while decoding: bad
    /// magic, unsupported version, truncation, or checksum mismatch.
    Corrupt(String),
    /// Structurally invalid input (shapes, parameters).
    InvalidArgument(String),
    /// Training the coarse quantizer failed.
    Train(sgla_core::SglaError),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Io(e) => write!(f, "io error: {e}"),
            IndexError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
            IndexError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            IndexError::Train(e) => write!(f, "quantizer training failed: {e}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Io(e) => Some(e),
            IndexError::Train(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IndexError {
    fn from(e: std::io::Error) -> Self {
        IndexError::Io(e)
    }
}

impl From<sgla_core::SglaError> for IndexError {
    fn from(e: sgla_core::SglaError) -> Self {
        IndexError::Train(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(IndexError::Corrupt("x".into())
            .to_string()
            .contains("corrupt"));
        assert!(IndexError::InvalidArgument("x".into())
            .to_string()
            .contains("argument"));
        let io: IndexError = std::io::Error::new(std::io::ErrorKind::NotFound, "n").into();
        assert!(io.to_string().contains("io error"));
    }
}

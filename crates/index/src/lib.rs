//! # mvag-index — IVF approximate top-k over embedding rows
//!
//! Serving exact top-k is `O(n · dim)` per query: every embedding row
//! is scored against the query. This crate makes top-k *sublinear* for
//! large artifacts with a classic inverted-file (IVF) index:
//!
//! 1. **Train** a coarse quantizer — `nlist` centroids over the
//!    (unit-normalized) embedding rows, via the workspace's own
//!    `sgla_core::kmeans` — or reuse externally supplied centroids
//!    (e.g. the cluster centroids an SGLA artifact already carries).
//! 2. **Assign** every row to the centroid with the highest cosine
//!    similarity, forming `nlist` inverted lists.
//! 3. **Search** by scoring the query against the centroids, scanning
//!    only the rows of the `nprobe` best lists, and keeping the top
//!    `k` — the exact cosine arithmetic of the full scan, applied to a
//!    fraction of the rows.
//!
//! Two properties the serving layer builds on:
//!
//! * **Exact-scan parity at `nprobe = nlist`.** Probing every list
//!   visits every row exactly once; the per-row score uses the same
//!   `dot(q, row) / (‖q‖ · ‖row‖)` arithmetic (identical `vecops`
//!   calls) and the same total candidate order (score descending, id
//!   ascending) as the exact engine, so the answer is **bit-identical**
//!   to a full scan — the degradation knob goes all the way to "off".
//! * **Row-range sharding.** An index covers the same
//!   `[row_start, row_end)` global row range as a v2 artifact shard and
//!   reports global ids, so a shard router can fan one query out across
//!   per-shard indexes and merge, exactly as it does for exact scans.
//!
//! The on-disk format follows the workspace codec conventions
//! (`mvag_data::codec`): magic, format version, body length, CRC-32,
//! then a bounds-checked body — hostile or truncated input yields a
//! typed [`IndexError::Corrupt`], never a panic. See
//! `docs/ARCHITECTURE.md` for the byte-level specification.
//!
//! ```
//! use mvag_index::{IvfConfig, IvfIndex};
//! use mvag_sparse::{vecops, DenseMatrix};
//!
//! // 40 rows of a 4-dim "embedding".
//! let emb = DenseMatrix::from_vec(
//!     40,
//!     4,
//!     (0..160).map(|i| ((i * 37 % 11) as f64) - 5.0).collect(),
//! )
//! .unwrap();
//! let norms: Vec<f64> = (0..40).map(|i| vecops::norm2(emb.row(i))).collect();
//!
//! let index = IvfIndex::train(&emb, 0, 40, &IvfConfig::default()).unwrap();
//! let (hits, stats) =
//!     index.search(&emb, &norms, emb.row(3), norms[3], 5, index.nlist(), Some(3), 1);
//! assert_eq!(hits.len(), 5);
//! assert_eq!(stats.rows_scanned, 39); // full probe = full scan minus the query row
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ivf;

pub use error::IndexError;
pub use ivf::{ranks_before, IvfConfig, IvfIndex, IvfSearchStats, Scored};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, IndexError>;

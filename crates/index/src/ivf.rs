//! The IVF (inverted-file) index: coarse quantizer + inverted lists +
//! probe-limited search, with exact-scan parity at full probe width.

use crate::{IndexError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mvag_data::codec::{crc32, get_f64s, get_u32s, get_u64s};
use mvag_sparse::{parallel, vecops, DenseMatrix, RowMatrix};
use sgla_core::kmeans::{kmeans, KMeansParams};
use std::path::Path;

/// `"SGIX"` in ASCII (SGla IndeX).
const MAGIC: u32 = 0x5347_4958;
/// Current index file format version.
pub const INDEX_FORMAT_VERSION: u16 = 1;

/// Configuration for [`IvfIndex::train`].
#[derive(Debug, Clone)]
pub struct IvfConfig {
    /// Number of inverted lists (coarse centroids). `0` picks
    /// `⌈√rows⌉` — the classic IVF balance point where probing one
    /// list costs about as much as scoring all centroids.
    pub nlist: usize,
    /// Seed for the k-means quantizer training.
    pub seed: u64,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig { nlist: 0, seed: 23 }
    }
}

/// One scored candidate: a *global* node id and its cosine score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// Global node id (`row_start + local row`).
    pub id: usize,
    /// Cosine similarity to the query (identical arithmetic to the
    /// exact scan).
    pub score: f64,
}

/// Work accounting of one search, for observability and the
/// sublinearity checks in `serve_bench`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IvfSearchStats {
    /// Inverted lists visited (`min(nprobe, nlist)`).
    pub lists_scanned: usize,
    /// Candidate rows scored (the query row itself is excluded).
    pub rows_scanned: usize,
}

/// An inverted-file index over the embedding rows of one artifact (a
/// full artifact or a `[row_start, row_end)` shard).
///
/// The index stores only *structure* — centroids and the list
/// membership of each local row. The embedding rows themselves stay
/// with their owner (the serving engine), which passes them into
/// [`IvfIndex::search`]; nothing is duplicated and the scored bytes
/// are exactly the bytes the exact scan reads.
#[derive(Debug, Clone, PartialEq)]
pub struct IvfIndex {
    /// Node count `n` of the whole graph.
    n: usize,
    /// Embedding dimension.
    dim: usize,
    /// First global row covered, inclusive.
    row_start: usize,
    /// One past the last global row covered.
    row_end: usize,
    /// Seed the quantizer was trained with (provenance; 0 for
    /// externally supplied centroids).
    seed: u64,
    /// Coarse centroids, `nlist × dim`.
    centroids: DenseMatrix,
    /// Euclidean norms of the centroids (recomputed on decode).
    centroid_norms: Vec<f64>,
    /// List boundaries into `ids`, `nlist + 1` entries.
    offsets: Vec<usize>,
    /// Local row ids grouped by list, ascending within each list;
    /// every local row appears exactly once.
    ids: Vec<u32>,
}

impl IvfIndex {
    /// Trains an index over `emb` (the rows of one artifact covering
    /// global rows `[row_start, row_start + emb.nrows())` of a graph
    /// with `n` nodes): k-means over the unit-normalized rows via
    /// `sgla_core::kmeans`, then cosine assignment to the learned
    /// centroids.
    ///
    /// # Errors
    /// [`IndexError::InvalidArgument`] for empty/ill-shaped input,
    /// [`IndexError::Train`] if k-means fails.
    pub fn train(
        emb: &DenseMatrix,
        row_start: usize,
        n: usize,
        config: &IvfConfig,
    ) -> Result<IvfIndex> {
        let rows = emb.nrows();
        check_shape(emb, row_start, n)?;
        let nlist = if config.nlist == 0 {
            (rows as f64).sqrt().ceil() as usize
        } else {
            config.nlist
        }
        .clamp(1, rows);
        // Spherical flavor: cluster directions, not magnitudes — top-k
        // similarity is cosine, so the quantizer must partition by
        // angle. Zero rows stay zero and land wherever ties land.
        let mut unit = emb.clone();
        for r in 0..rows {
            vecops::normalize(unit.row_mut(r));
        }
        let params = KMeansParams {
            // A coarse quantizer needs rough Voronoi cells, not a
            // converged clustering; recall comes from nprobe.
            max_iters: 50,
            restarts: 4,
            seed: config.seed,
            ..KMeansParams::new(nlist)
        };
        let result = kmeans(&unit, &params)?;
        Self::assemble(result.centroids, emb, row_start, n, config.seed)
    }

    /// Builds an index around externally supplied `centroids` (e.g.
    /// the per-cluster centroids a trained SGLA artifact already
    /// stores — the paper's own clustering output doubling as the
    /// coarse quantizer). Rows are assigned by cosine similarity.
    ///
    /// # Errors
    /// [`IndexError::InvalidArgument`] on shape mismatches.
    pub fn from_centroids(
        centroids: &DenseMatrix,
        emb: &DenseMatrix,
        row_start: usize,
        n: usize,
    ) -> Result<IvfIndex> {
        check_shape(emb, row_start, n)?;
        if centroids.ncols() != emb.ncols() || centroids.nrows() == 0 {
            return Err(IndexError::InvalidArgument(format!(
                "centroids are {}x{}, embedding dim is {}",
                centroids.nrows(),
                centroids.ncols(),
                emb.ncols()
            )));
        }
        Self::assemble(centroids.clone(), emb, row_start, n, 0)
    }

    /// Assigns every row to its best centroid and freezes the lists.
    fn assemble(
        centroids: DenseMatrix,
        emb: &DenseMatrix,
        row_start: usize,
        n: usize,
        seed: u64,
    ) -> Result<IvfIndex> {
        let rows = emb.nrows();
        let nlist = centroids.nrows();
        let centroid_norms: Vec<f64> = (0..nlist)
            .map(|c| vecops::norm2(centroids.row(c)))
            .collect();
        // Cosine assignment; ties break toward the smaller centroid id
        // so assignment is deterministic and order-independent.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for r in 0..rows {
            let row = emb.row(r);
            let rnorm = vecops::norm2(row);
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (c, &cnorm) in centroid_norms.iter().enumerate() {
                let denom = rnorm * cnorm;
                let score = if denom > 1e-300 {
                    vecops::dot(row, centroids.row(c)) / denom
                } else {
                    0.0
                };
                if score > best_score {
                    best_score = score;
                    best = c;
                }
            }
            lists[best].push(r as u32);
        }
        let mut offsets = Vec::with_capacity(nlist + 1);
        let mut ids = Vec::with_capacity(rows);
        offsets.push(0usize);
        for list in &lists {
            ids.extend_from_slice(list); // ascending by construction
            offsets.push(ids.len());
        }
        Ok(IvfIndex {
            n,
            dim: emb.ncols(),
            row_start,
            row_end: row_start + rows,
            seed,
            centroids,
            centroid_norms,
            offsets,
            ids,
        })
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Local rows covered by the index.
    pub fn rows(&self) -> usize {
        self.ids.len()
    }

    /// The `[row_start, row_end)` global row range this index covers.
    pub fn row_range(&self) -> (usize, usize) {
        (self.row_start, self.row_end)
    }

    /// Embedding dimension the index was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Seed the quantizer was trained with (0 for externally supplied
    /// centroids).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The training configuration that reproduces this index's shape:
    /// same list count, same quantizer seed. This is what the
    /// incremental-update pipeline uses to *retrain* a sidecar index
    /// after its artifact's rows changed — a stale index must never be
    /// served (its lists would not cover the appended rows; engines
    /// reject the mismatch at load via
    /// [`IvfIndex::check_compatible`]), so invalidation means
    /// rebuilding with the original parameters over the new rows.
    pub fn config(&self) -> IvfConfig {
        IvfConfig {
            nlist: self.nlist(),
            seed: self.seed,
        }
    }

    /// The probe width used when a caller passes `nprobe = 0`:
    /// `⌈√nlist⌉` — sublinear in the list count while still covering a
    /// meaningful neighborhood of the query's cell.
    pub fn default_nprobe(&self) -> usize {
        (self.nlist() as f64).sqrt().ceil() as usize
    }

    /// Checks that this index matches the artifact it is about to
    /// serve (same graph size, dimension, and global row range).
    ///
    /// # Errors
    /// [`IndexError::InvalidArgument`] describing the first mismatch.
    pub fn check_compatible(
        &self,
        n: usize,
        dim: usize,
        row_start: usize,
        row_end: usize,
    ) -> Result<()> {
        if self.n != n || self.dim != dim || self.row_start != row_start || self.row_end != row_end
        {
            return Err(IndexError::InvalidArgument(format!(
                "index covers rows {}..{} of n = {} (dim {}), artifact has rows {row_start}..{row_end} of n = {n} (dim {dim})",
                self.row_start, self.row_end, self.n, self.dim
            )));
        }
        Ok(())
    }

    /// The `min(nprobe, nlist)` lists whose centroids score best
    /// against the query (cosine; ties toward the smaller list id).
    fn probe_lists(&self, qrow: &[f64], qnorm: f64, nprobe: usize) -> Vec<usize> {
        let nlist = self.nlist();
        let nprobe = nprobe.clamp(1, nlist);
        let mut top = TopK::new(nprobe);
        for c in 0..nlist {
            let denom = qnorm * self.centroid_norms[c];
            let score = if denom > 1e-300 {
                vecops::dot(qrow, self.centroids.row(c)) / denom
            } else {
                0.0
            };
            top.push(Scored { id: c, score });
        }
        top.into_sorted().into_iter().map(|s| s.id).collect()
    }

    /// Scores the query against the rows of the `nprobe` best lists
    /// and returns the top `k` (global ids, best first — score
    /// descending, id ascending; same total order as the exact scan).
    ///
    /// `emb`/`norms` are the owning artifact's local embedding rows and
    /// their precomputed Euclidean norms; `exclude` skips one global id
    /// (the query node itself, when known). `nprobe = 0` uses
    /// [`IvfIndex::default_nprobe`]; `nprobe >= nlist` scans every row
    /// and is bit-identical to the exact engine. With `threads > 1`
    /// large probes score their lists in parallel on the persistent
    /// `mvag_sparse` worker pool (per-list partial top-k's merge under
    /// the total order, so parallelism cannot change the answer).
    ///
    /// # Panics
    /// Debug-asserts that `emb`/`norms` match the indexed rows.
    // Every argument is load-bearing (row source, query, knobs); a
    // params struct would just rename the call sites' noise.
    #[allow(clippy::too_many_arguments)]
    pub fn search(
        &self,
        emb: &dyn RowMatrix,
        norms: &[f64],
        qrow: &[f64],
        qnorm: f64,
        k: usize,
        nprobe: usize,
        exclude: Option<usize>,
        threads: usize,
    ) -> (Vec<Scored>, IvfSearchStats) {
        debug_assert_eq!(emb.nrows(), self.rows(), "search: embedding rows");
        debug_assert_eq!(norms.len(), self.rows(), "search: norm count");
        debug_assert_eq!(emb.ncols(), self.dim, "search: embedding dim");
        let nprobe = if nprobe == 0 {
            self.default_nprobe()
        } else {
            nprobe
        };
        let probed = self.probe_lists(qrow, qnorm, nprobe);
        let candidates: usize = probed
            .iter()
            .map(|&c| self.offsets[c + 1] - self.offsets[c])
            .sum();
        let scan_list = |c: usize, top: &mut TopK| -> usize {
            let mut scanned = 0usize;
            for &local in &self.ids[self.offsets[c]..self.offsets[c + 1]] {
                let local = local as usize;
                let global = self.row_start + local;
                if Some(global) == exclude {
                    continue;
                }
                // Identical arithmetic to the exact engine's blocked
                // scan: same dot kernel, same norm product, same
                // near-zero guard — scores are bit-equal per row.
                let denom = qnorm * norms[local];
                let score = if denom > 1e-300 {
                    vecops::dot(qrow, emb.row(local)) / denom
                } else {
                    0.0
                };
                top.push(Scored { id: global, score });
                scanned += 1;
            }
            scanned
        };
        // Parallelize across probed lists only when the scan is large
        // enough to amortize a pool dispatch; the merge is
        // order-independent (total order on distinct ids).
        let parallel_worthwhile = threads > 1 && probed.len() > 1 && candidates >= 1 << 12;
        let (top, rows_scanned) = if parallel_worthwhile {
            let partials = parallel::par_map(probed.len(), threads, |i| {
                let mut top = TopK::new(k);
                let scanned = scan_list(probed[i], &mut top);
                (top.into_sorted(), scanned)
            });
            let mut top = TopK::new(k);
            let mut scanned = 0usize;
            for (partial, s) in partials {
                scanned += s;
                for cand in partial {
                    top.push(cand);
                }
            }
            (top, scanned)
        } else {
            let mut top = TopK::new(k);
            let mut scanned = 0usize;
            for &c in &probed {
                scanned += scan_list(c, &mut top);
            }
            (top, scanned)
        };
        (
            top.into_sorted(),
            IvfSearchStats {
                lists_scanned: probed.len(),
                rows_scanned,
            },
        )
    }

    // -----------------------------------------------------------------
    // Codec (workspace conventions: magic + version + length + CRC-32,
    // bounds-checked body reads).

    /// Encodes the index into the versioned, checksummed binary format.
    pub fn encode(&self) -> Bytes {
        let mut body = BytesMut::with_capacity(1 << 12);
        body.put_u64(self.n as u64);
        body.put_u64(self.dim as u64);
        body.put_u64(self.row_start as u64);
        body.put_u64(self.row_end as u64);
        body.put_u64(self.seed);
        body.put_u64(self.nlist() as u64);
        for &v in self.centroids.data() {
            body.put_f64(v);
        }
        for &o in &self.offsets {
            body.put_u64(o as u64);
        }
        for &id in &self.ids {
            body.put_u32(id);
        }
        let body = body.freeze();
        let mut out = BytesMut::with_capacity(body.len() + 18);
        out.put_u32(MAGIC);
        out.put_u16(INDEX_FORMAT_VERSION);
        out.put_u64(body.len() as u64);
        out.put_u32(crc32(body.as_ref()));
        out.put_slice(body.as_ref());
        out.freeze()
    }

    /// Decodes and structurally validates an index: magic, version,
    /// length, checksum, then shape checks and a full
    /// coverage/ordering check of the inverted lists (every local row
    /// in exactly one list, ascending within each list).
    ///
    /// # Errors
    /// [`IndexError::Corrupt`] on any structural problem.
    pub fn decode(mut bytes: Bytes) -> Result<IvfIndex> {
        let fail = |msg: &str| IndexError::Corrupt(msg.to_string());
        if bytes.remaining() < 18 {
            return Err(fail("shorter than the fixed header"));
        }
        if bytes.get_u32() != MAGIC {
            return Err(fail("bad magic (not an SGLA IVF index)"));
        }
        let version = bytes.get_u16();
        if version != INDEX_FORMAT_VERSION {
            return Err(fail(&format!(
                "unsupported index format version {version} (expected {INDEX_FORMAT_VERSION})"
            )));
        }
        let body_len = bytes.get_u64();
        let expect_crc = bytes.get_u32();
        if bytes.remaining() as u64 != body_len {
            return Err(fail(&format!(
                "body length mismatch: header says {body_len}, got {}",
                bytes.remaining()
            )));
        }
        if crc32(bytes.as_ref()) != expect_crc {
            return Err(fail("checksum mismatch (index bytes were altered)"));
        }
        if bytes.remaining() < 48 {
            return Err(fail("truncated meta"));
        }
        let n = bytes.get_u64() as usize;
        let dim = bytes.get_u64() as usize;
        let row_start = bytes.get_u64() as usize;
        let row_end = bytes.get_u64() as usize;
        let seed = bytes.get_u64();
        let nlist = bytes.get_u64() as usize;
        if row_start > row_end || row_end > n {
            return Err(fail("row range outside 0..n"));
        }
        let rows = row_end - row_start;
        // nlist may exceed rows (external centroids over a small
        // shard leave some lists empty); a hostile huge nlist fails
        // the bounds-checked centroid read below, never allocates.
        if nlist == 0 {
            return Err(fail("zero list count"));
        }
        if rows > u32::MAX as usize {
            return Err(fail("row count exceeds u32 id space"));
        }
        let centroid_count = nlist
            .checked_mul(dim)
            .ok_or_else(|| fail("centroid shape overflow"))?;
        let centroid_data =
            get_f64s(&mut bytes, centroid_count).ok_or_else(|| fail("truncated centroids"))?;
        let centroids = DenseMatrix::from_vec(nlist, dim, centroid_data)
            .map_err(|e| fail(&format!("bad centroid shape: {e}")))?;
        let offsets = get_u64s(&mut bytes, nlist + 1).ok_or_else(|| fail("truncated offsets"))?;
        if offsets[0] != 0 || *offsets.last().expect("nlist + 1 entries") != rows {
            return Err(fail("offsets do not span the rows"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(fail("offsets must be non-decreasing"));
        }
        let raw_ids = get_u32s(&mut bytes, rows).ok_or_else(|| fail("truncated list ids"))?;
        if bytes.remaining() != 0 {
            return Err(fail("trailing bytes after payload"));
        }
        // Coverage + ordering: ids form a permutation of 0..rows and
        // are strictly increasing inside each list.
        let mut seen = vec![false; rows];
        for list in 0..nlist {
            let span = &raw_ids[offsets[list]..offsets[list + 1]];
            for w in span.windows(2) {
                if w[0] >= w[1] {
                    return Err(fail("list ids not strictly increasing"));
                }
            }
            for &id in span {
                if id >= rows {
                    return Err(fail("list id out of range"));
                }
                if seen[id] {
                    return Err(fail("row assigned to more than one list"));
                }
                seen[id] = true;
            }
        }
        // seen is all-true here: rows entries, each flipped once.
        let centroid_norms = (0..nlist)
            .map(|c| vecops::norm2(centroids.row(c)))
            .collect();
        Ok(IvfIndex {
            n,
            dim,
            row_start,
            row_end,
            seed,
            centroids,
            centroid_norms,
            offsets,
            ids: raw_ids.into_iter().map(|id| id as u32).collect(),
        })
    }

    /// Saves the index to `path`.
    ///
    /// # Errors
    /// I/O failures.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Loads and verifies an index from `path`.
    ///
    /// # Errors
    /// I/O failures and [`IndexError::Corrupt`].
    pub fn load(path: &Path) -> Result<IvfIndex> {
        let data = std::fs::read(path)?;
        IvfIndex::decode(Bytes::from(data))
    }
}

fn check_shape(emb: &DenseMatrix, row_start: usize, n: usize) -> Result<()> {
    if emb.nrows() == 0 || emb.ncols() == 0 {
        return Err(IndexError::InvalidArgument(format!(
            "cannot index an empty embedding ({}x{})",
            emb.nrows(),
            emb.ncols()
        )));
    }
    if row_start.checked_add(emb.nrows()).is_none_or(|end| end > n) {
        return Err(IndexError::InvalidArgument(format!(
            "rows {row_start}..{} outside 0..{n}",
            row_start.saturating_add(emb.nrows())
        )));
    }
    Ok(())
}

/// The serving total order on scored candidates: does `(score_a,
/// id_a)` rank strictly before `(score_b, id_b)`? Higher score wins;
/// equal scores prefer the smaller id. The order is total on distinct
/// ids, so the top-k of a union equals the merged top-k of any
/// partition — the property list-parallel search, cross-shard
/// merging, and the approx/exact bit-identity guarantee all rely on.
/// This is the **single definition** of that order: the serving
/// engine's exact-scan heap delegates here too.
#[inline]
pub fn ranks_before(score_a: f64, id_a: usize, score_b: f64, id_b: usize) -> bool {
    score_a > score_b || (score_a == score_b && id_a < id_b)
}

/// Bounded best-`k` collection under [`ranks_before`].
#[derive(Debug)]
struct TopK {
    k: usize,
    /// Worst-first sorted vec; `k` is request-sized, so O(k) insertion
    /// beats heap constant factors.
    items: Vec<Scored>,
}

impl TopK {
    fn new(k: usize) -> Self {
        TopK {
            k,
            items: Vec::with_capacity(k.min(1024) + 1),
        }
    }

    fn better(a: &Scored, b: &Scored) -> bool {
        ranks_before(a.score, a.id, b.score, b.id)
    }

    fn push(&mut self, cand: Scored) {
        if self.k == 0 {
            return;
        }
        if self.items.len() == self.k {
            if !Self::better(&cand, &self.items[0]) {
                return;
            }
            self.items.remove(0);
        }
        let pos = self
            .items
            .iter()
            .position(|existing| Self::better(existing, &cand))
            .unwrap_or(self.items.len());
        self.items.insert(pos, cand);
    }

    fn into_sorted(self) -> Vec<Scored> {
        let mut v = self.items;
        v.reverse();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic clustered vectors: `blobs` directions, points
    /// scattered around each.
    fn blob_matrix(n: usize, dim: usize, blobs: usize, seed: u64) -> DenseMatrix {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        // Blob centers.
        let centers: Vec<Vec<f64>> = (0..blobs)
            .map(|_| (0..dim).map(|_| next() * 10.0).collect())
            .collect();
        let mut data = Vec::with_capacity(n * dim);
        for i in 0..n {
            let c = &centers[i % blobs];
            for &cd in c.iter() {
                data.push(cd + next());
            }
        }
        DenseMatrix::from_vec(n, dim, data).unwrap()
    }

    fn norms_of(emb: &DenseMatrix) -> Vec<f64> {
        (0..emb.nrows())
            .map(|r| vecops::norm2(emb.row(r)))
            .collect()
    }

    /// Reference exact top-k under the serving total order.
    fn brute_force(
        emb: &DenseMatrix,
        norms: &[f64],
        qrow: &[f64],
        qnorm: f64,
        k: usize,
        exclude: Option<usize>,
        row_start: usize,
    ) -> Vec<Scored> {
        let mut all: Vec<Scored> = (0..emb.nrows())
            .filter(|&r| Some(row_start + r) != exclude)
            .map(|r| {
                let denom = qnorm * norms[r];
                let score = if denom > 1e-300 {
                    vecops::dot(qrow, emb.row(r)) / denom
                } else {
                    0.0
                };
                Scored {
                    id: row_start + r,
                    score,
                }
            })
            .collect();
        all.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap().then(a.id.cmp(&b.id)));
        all.truncate(k);
        all
    }

    #[test]
    fn full_probe_matches_brute_force_bit_exactly() {
        let emb = blob_matrix(120, 6, 4, 7);
        let norms = norms_of(&emb);
        let index = IvfIndex::train(&emb, 0, 120, &IvfConfig::default()).unwrap();
        for q in [0usize, 13, 77, 119] {
            let (got, stats) = index.search(
                &emb,
                &norms,
                emb.row(q),
                norms[q],
                9,
                index.nlist(),
                Some(q),
                1,
            );
            let want = brute_force(&emb, &norms, emb.row(q), norms[q], 9, Some(q), 0);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.id, w.id, "query {q}");
                assert_eq!(g.score.to_bits(), w.score.to_bits(), "query {q}");
            }
            assert_eq!(stats.rows_scanned, 119);
            assert_eq!(stats.lists_scanned, index.nlist());
        }
    }

    #[test]
    fn sharded_rows_report_global_ids() {
        let emb = blob_matrix(80, 5, 3, 11);
        let shard = DenseMatrix::from_vec(30, 5, emb.data()[20 * 5..50 * 5].to_vec()).unwrap();
        let norms = norms_of(&shard);
        let index = IvfIndex::train(&shard, 20, 80, &IvfConfig::default()).unwrap();
        assert_eq!(index.row_range(), (20, 50));
        let (hits, _) = index.search(
            &shard,
            &norms,
            shard.row(0),
            norms[0],
            5,
            index.nlist(),
            Some(20),
            1,
        );
        assert!(hits.iter().all(|s| (20..50).contains(&s.id)));
        assert!(hits.iter().all(|s| s.id != 20), "exclude respected");
    }

    #[test]
    fn partial_probe_is_sublinear_and_subset_correct() {
        let emb = blob_matrix(300, 8, 6, 5);
        let norms = norms_of(&emb);
        let index = IvfIndex::train(&emb, 0, 300, &IvfConfig { nlist: 16, seed: 3 }).unwrap();
        let (hits, stats) = index.search(&emb, &norms, emb.row(7), norms[7], 10, 4, Some(7), 1);
        assert_eq!(stats.lists_scanned, 4);
        assert!(
            stats.rows_scanned < 299,
            "partial probe must scan fewer rows"
        );
        // Every reported score must equal the exact score of that row.
        let exact = brute_force(&emb, &norms, emb.row(7), norms[7], 299, Some(7), 0);
        for h in &hits {
            let reference = exact.iter().find(|e| e.id == h.id).unwrap();
            assert_eq!(h.score.to_bits(), reference.score.to_bits());
        }
    }

    #[test]
    fn recall_is_high_on_clustered_data() {
        let emb = blob_matrix(600, 10, 8, 13);
        let norms = norms_of(&emb);
        let index = IvfIndex::train(&emb, 0, 600, &IvfConfig { nlist: 24, seed: 9 }).unwrap();
        let nprobe = 6;
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in (0..600).step_by(17) {
            let (approx, _) =
                index.search(&emb, &norms, emb.row(q), norms[q], 10, nprobe, Some(q), 1);
            let exact = brute_force(&emb, &norms, emb.row(q), norms[q], 10, Some(q), 0);
            total += exact.len();
            hit += exact
                .iter()
                .filter(|e| approx.iter().any(|a| a.id == e.id))
                .count();
        }
        let recall = hit as f64 / total as f64;
        assert!(
            recall >= 0.9,
            "recall@10 = {recall:.3} with nprobe {nprobe}"
        );
    }

    #[test]
    fn parallel_and_sequential_search_agree() {
        let emb = blob_matrix(400, 6, 5, 21);
        let norms = norms_of(&emb);
        let index = IvfIndex::train(&emb, 0, 400, &IvfConfig { nlist: 20, seed: 1 }).unwrap();
        for &nprobe in &[3usize, 20] {
            let (seq, seq_stats) =
                index.search(&emb, &norms, emb.row(42), norms[42], 7, nprobe, Some(42), 1);
            let (par, par_stats) =
                index.search(&emb, &norms, emb.row(42), norms[42], 7, nprobe, Some(42), 4);
            assert_eq!(seq.len(), par.len());
            for (s, p) in seq.iter().zip(&par) {
                assert_eq!(s.id, p.id);
                assert_eq!(s.score.to_bits(), p.score.to_bits());
            }
            assert_eq!(seq_stats, par_stats);
        }
    }

    #[test]
    fn reused_centroids_build_valid_lists() {
        let emb = blob_matrix(90, 4, 3, 17);
        let centroids = DenseMatrix::from_vec(3, 4, emb.data()[0..12].to_vec()).unwrap();
        let index = IvfIndex::from_centroids(&centroids, &emb, 0, 90).unwrap();
        assert_eq!(index.nlist(), 3);
        assert_eq!(index.rows(), 90);
        // Round-trips like any trained index.
        let back = IvfIndex::decode(index.encode()).unwrap();
        assert_eq!(index, back);
    }

    #[test]
    fn more_centroids_than_rows_round_trips() {
        // External centroids (e.g. an artifact's k clusters) can
        // outnumber a tiny shard's rows; the empty lists must survive
        // the codec.
        let emb = blob_matrix(3, 4, 2, 19);
        let centroids = blob_matrix(5, 4, 5, 7);
        let index = IvfIndex::from_centroids(&centroids, &emb, 10, 20).unwrap();
        assert_eq!(index.nlist(), 5);
        assert_eq!(index.rows(), 3);
        let back = IvfIndex::decode(index.encode()).unwrap();
        assert_eq!(index, back);
        let norms = norms_of(&emb);
        let (hits, stats) = index.search(
            &emb,
            &norms,
            emb.row(1),
            norms[1],
            2,
            index.nlist(),
            Some(11),
            1,
        );
        assert_eq!(hits.len(), 2);
        assert_eq!(stats.rows_scanned, 2);
    }

    #[test]
    fn codec_roundtrip_bit_exact() {
        let emb = blob_matrix(64, 5, 4, 3);
        let index = IvfIndex::train(&emb, 0, 64, &IvfConfig { nlist: 7, seed: 5 }).unwrap();
        let back = IvfIndex::decode(index.encode()).unwrap();
        assert_eq!(index, back);
    }

    #[test]
    fn file_roundtrip() {
        let emb = blob_matrix(40, 4, 2, 29);
        let index = IvfIndex::train(&emb, 0, 40, &IvfConfig::default()).unwrap();
        let path = std::env::temp_dir().join(format!("sgla-ivf-test-{}.ivf", std::process::id()));
        index.save(&path).unwrap();
        let back = IvfIndex::load(&path).unwrap();
        assert_eq!(index, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_builds_rejected() {
        let empty = DenseMatrix::zeros(0, 4);
        assert!(IvfIndex::train(&empty, 0, 0, &IvfConfig::default()).is_err());
        let emb = blob_matrix(10, 3, 2, 1);
        assert!(
            IvfIndex::train(&emb, 5, 10, &IvfConfig::default()).is_err(),
            "rows past n must be rejected"
        );
        let bad_centroids = DenseMatrix::zeros(2, 7);
        assert!(IvfIndex::from_centroids(&bad_centroids, &emb, 0, 10).is_err());
    }

    #[test]
    fn nlist_clamps_and_default_nprobe() {
        let emb = blob_matrix(9, 3, 2, 1);
        let index = IvfIndex::train(
            &emb,
            0,
            9,
            &IvfConfig {
                nlist: 100,
                seed: 1,
            },
        )
        .unwrap();
        assert_eq!(index.nlist(), 9, "nlist clamps to rows");
        let auto = IvfIndex::train(&emb, 0, 9, &IvfConfig::default()).unwrap();
        assert_eq!(auto.nlist(), 3, "auto nlist is ceil(sqrt(rows))");
        assert_eq!(auto.default_nprobe(), 2);
    }

    #[test]
    fn topk_orders_and_bounds() {
        let mut h = TopK::new(3);
        for (id, score) in [(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.9), (4, -0.2)] {
            h.push(Scored { id, score });
        }
        let out = h.into_sorted();
        let ids: Vec<usize> = out.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 3, 2], "0.9 tie prefers smaller id");
    }
}

//! Property-based tests for the graph substrate.

use mvag_graph::generators::{balanced_labels, sbm, SbmConfig};
use mvag_graph::knn::{knn_graph, KnnConfig};
use mvag_graph::metrics::{
    connected_components, cut, normalized_cut, num_components, set_conductance, sweep_cut, volume,
};
use mvag_graph::Graph;
use mvag_sparse::eigen::{smallest_eigenvalues, EigOptions};
use mvag_sparse::DenseMatrix;
use proptest::prelude::*;

fn edges_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (3usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..4 * n).prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn laplacian_spectrum_in_0_2((n, edges) in edges_strategy(30)) {
        let g = Graph::from_unweighted_edges(n, &edges).unwrap();
        let l = g.normalized_laplacian();
        let eig = mvag_sparse::eigen::jacobi_eig(&l.to_dense()).unwrap();
        prop_assert!(eig.values[0] > -1e-9, "λmin = {}", eig.values[0]);
        prop_assert!(eig.values[n - 1] < 2.0 + 1e-9, "λmax = {}", eig.values[n - 1]);
    }

    #[test]
    fn zero_eigenvalue_multiplicity_equals_nontrivial_components((n, edges) in edges_strategy(24)) {
        // For each connected component with at least one edge, the
        // normalized Laplacian contributes one ~0 eigenvalue; isolated
        // nodes contribute eigenvalue exactly 1 under our convention.
        let g = Graph::from_unweighted_edges(n, &edges).unwrap();
        let comp = connected_components(&g);
        let ncomp = num_components(&g);
        let isolated = g.isolated_nodes().len();
        let nontrivial = ncomp - isolated;
        let l = g.normalized_laplacian();
        let eig = mvag_sparse::eigen::jacobi_eig(&l.to_dense()).unwrap();
        let zeros = eig.values.iter().filter(|v| v.abs() < 1e-8).count();
        prop_assert_eq!(zeros, nontrivial, "components {:?}", comp);
    }

    #[test]
    fn cut_symmetric_between_set_and_complement((n, edges) in edges_strategy(20), mask_seed in 0u64..1000) {
        let g = Graph::from_unweighted_edges(n, &edges).unwrap();
        let members: Vec<bool> = (0..n).map(|i| (i as u64).wrapping_mul(mask_seed + 1).is_multiple_of(3)).collect();
        let complement: Vec<bool> = members.iter().map(|&b| !b).collect();
        prop_assert!((cut(&g, &members) - cut(&g, &complement)).abs() < 1e-10);
    }

    #[test]
    fn volumes_partition_total((n, edges) in edges_strategy(20)) {
        let g = Graph::from_unweighted_edges(n, &edges).unwrap();
        let members: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let complement: Vec<bool> = members.iter().map(|&b| !b).collect();
        let total = volume(&g, &members) + volume(&g, &complement);
        prop_assert!((total - g.total_volume()).abs() < 1e-10);
    }

    #[test]
    fn ncut_at_most_one((n, edges) in edges_strategy(20)) {
        let g = Graph::from_unweighted_edges(n, &edges).unwrap();
        let members: Vec<bool> = (0..n).map(|i| i < n / 2).collect();
        if let Ok(phi) = normalized_cut(&g, &members) {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&phi), "ϕ = {phi}");
        }
    }

    #[test]
    fn cheeger_inequality_on_connected_graphs(seed in 0u64..200) {
        // Random connected-ish SBM; skip disconnected draws.
        let labels = balanced_labels(40, 2).unwrap();
        let g = sbm(
            &labels,
            &SbmConfig { p_in: 0.4, p_out: 0.08, ..Default::default() },
            seed,
        ).unwrap();
        prop_assume!(num_components(&g) == 1);
        let l = g.normalized_laplacian();
        let vals = smallest_eigenvalues(&l, 2, &EigOptions::default()).unwrap();
        let lambda2 = vals[1];
        // Sweep over the Fiedler vector gives a certificate Φ ≤ √(2λ₂);
        // and Φ ≥ λ₂/2 for the true conductance, which the sweep bounds
        // from above.
        let pairs = mvag_sparse::eigen::smallest_eigenpairs(&l, 2, &EigOptions::default()).unwrap();
        let (phi_sweep, mask) = sweep_cut(&g, &pairs.vectors.col(1)).unwrap();
        prop_assert!(phi_sweep <= (2.0 * lambda2).sqrt() + 1e-9,
            "sweep ϕ = {} vs √(2λ₂) = {}", phi_sweep, (2.0 * lambda2).sqrt());
        // The set found is a valid bipartition with matching conductance.
        let direct = set_conductance(&g, &mask).unwrap();
        prop_assert!((direct - phi_sweep).abs() < 1e-9);
        prop_assert!(direct >= lambda2 / 2.0 - 1e-9);
    }

    #[test]
    fn knn_graph_node_degree_bounded(rows in proptest::collection::vec(
        proptest::collection::vec(-3.0f64..3.0, 4), 8..20), kk in 1usize..4) {
        let x = DenseMatrix::from_rows(&rows).unwrap();
        let n = x.nrows();
        prop_assume!(kk < n);
        let g = knn_graph(&x, &KnnConfig { k: kk, threads: 1 }).unwrap();
        // Union symmetrization: each node has between 0 and n-1 neighbours,
        // and at least k if it had k positive similarities.
        for i in 0..n {
            prop_assert!(g.neighbors(i).0.len() < n);
        }
        prop_assert!(g.adjacency().is_symmetric(1e-12));
        prop_assert!(g.adjacency().values().iter().all(|&w| (0.0..=1.0 + 1e-12).contains(&w)));
    }
}

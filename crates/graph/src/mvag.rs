//! The multi-view attributed graph container.
//!
//! `G = {V, E₁, …, E_p, X_{p+1}, …, X_{p+q}}` — `p` graph views over a
//! shared node set plus `q` attribute views (Section III-A of the paper).

use crate::{Graph, GraphError, Result};
use mvag_sparse::DenseMatrix;

/// One view of an MVAG: either a graph over the shared node set or an
/// attribute matrix with one row per node.
#[derive(Debug, Clone, PartialEq)]
pub enum View {
    /// A graph view `Gᵢ = {V, Eᵢ}`.
    Graph(Graph),
    /// An attribute view `Xⱼ ∈ R^{n × dⱼ}`.
    Attributes(DenseMatrix),
}

impl View {
    /// Number of nodes this view covers.
    pub fn n(&self) -> usize {
        match self {
            View::Graph(g) => g.n(),
            View::Attributes(x) => x.nrows(),
        }
    }

    /// Whether this is a graph view.
    pub fn is_graph(&self) -> bool {
        matches!(self, View::Graph(_))
    }
}

/// The per-view half of an [`MvagDelta`]: what one view gains in an
/// append.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewDelta {
    /// New undirected edges for a graph view. Endpoints may reference
    /// both existing and appended nodes; an empty list leaves the view
    /// untouched beyond isolated appended nodes.
    Edges(Vec<(usize, usize, f64)>),
    /// Attribute rows for the appended nodes (`added_nodes × dⱼ`).
    /// Required (with exactly `added_nodes` rows) whenever nodes are
    /// appended; a `0 × dⱼ` matrix otherwise.
    Rows(DenseMatrix),
}

/// One in-place edit of an existing node carried by an [`MvagDelta`].
///
/// Edits reference *pre-existing* nodes only (ids below the base
/// MVAG's `n`) — new nodes arrive fully specified through the append
/// half of the delta.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaEdit {
    /// Set the weight of the undirected edge `(u, v)` in graph view
    /// `view`: `0` removes the edge, a nonzero weight overwrites an
    /// existing edge or inserts a new one.
    EdgeWeight {
        /// Index of the graph view the edge lives in.
        view: usize,
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
        /// New weight (`0` deletes).
        w: f64,
    },
    /// Overwrite the attribute row of `node` in attribute view `view`.
    AttrRow {
        /// Index of the attribute view.
        view: usize,
        /// The node whose row is replaced.
        node: usize,
        /// The replacement row (must match the view's width).
        row: Vec<f64>,
    },
}

/// A change to an [`Mvag`]: `added_nodes` new nodes plus one
/// [`ViewDelta`] per view (same order as [`Mvag::views`]), in-place
/// [`DeltaEdit`]s of existing nodes, and tombstone removals.
///
/// Node ids are stable: a removal *detaches* the node (drops every
/// incident edge in every graph view) but does not shift ids — `n`
/// never shrinks until a compaction pass rewrites the artifact. The
/// attribute rows of removed nodes are left in place as dead rows;
/// the serving layer masks tombstoned nodes out of all query results.
/// Semantically a delta applies in three steps: append, then edit,
/// then detach — so removals always win over edits/appends touching
/// the same node (which are rejected as inconsistent).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MvagDelta {
    /// Number of appended nodes.
    pub added_nodes: usize,
    /// One entry per view, in view order.
    pub views: Vec<ViewDelta>,
    /// Ground-truth labels of the appended nodes; must be present iff
    /// the base MVAG carries labels.
    pub added_labels: Option<Vec<usize>>,
    /// Ids of existing nodes to tombstone, strictly increasing.
    pub removed_nodes: Vec<usize>,
    /// In-place edits of existing nodes.
    pub edits: Vec<DeltaEdit>,
}

impl MvagDelta {
    /// A pure append delta (no removals, no edits) — the shape every
    /// pre-v2 (`SGLD` v1) delta file decodes to.
    pub fn append(
        added_nodes: usize,
        views: Vec<ViewDelta>,
        added_labels: Option<Vec<usize>>,
    ) -> MvagDelta {
        MvagDelta {
            added_nodes,
            views,
            added_labels,
            removed_nodes: Vec::new(),
            edits: Vec::new(),
        }
    }

    /// Whether the delta changes nothing at all.
    pub fn is_noop(&self) -> bool {
        self.added_nodes == 0
            && self.removed_nodes.is_empty()
            && self.edits.is_empty()
            && self.views.iter().all(|v| match v {
                ViewDelta::Edges(e) => e.is_empty(),
                ViewDelta::Rows(x) => x.nrows() == 0,
            })
    }

    /// Whether the delta is append-only (no removals, no edits) — the
    /// regime where in-place sharded append applies.
    pub fn is_append_only(&self) -> bool {
        self.removed_nodes.is_empty() && self.edits.is_empty()
    }

    /// The edge edits targeting graph view `view`, in delta order.
    pub fn edge_edits_for(&self, view: usize) -> Vec<(usize, usize, f64)> {
        self.edits
            .iter()
            .filter_map(|e| match e {
                DeltaEdit::EdgeWeight { view: ev, u, v, w } if *ev == view => Some((*u, *v, *w)),
                _ => None,
            })
            .collect()
    }

    /// Per-view "content changed" flags against a base MVAG: a graph
    /// view changes when it gains edges, has edge edits, or any node
    /// is removed (its incident edges must be dropped); an attribute
    /// view changes whenever rows are appended or edited (its KNN
    /// graph must be rebuilt). Removals alone leave attribute views
    /// unchanged — the dead rows stay in place and delete-only deltas
    /// skip the KNN rebuilds.
    ///
    /// # Errors
    /// [`GraphError::InvalidArgument`] if the delta's view list does
    /// not line up with the base.
    pub fn changed_views(&self, base: &Mvag) -> Result<Vec<bool>> {
        if self.views.len() != base.r() {
            return Err(GraphError::InvalidArgument(format!(
                "delta has {} view entries for {} views",
                self.views.len(),
                base.r()
            )));
        }
        let removing = !self.removed_nodes.is_empty();
        self.views
            .iter()
            .zip(base.views())
            .enumerate()
            .map(|(i, (d, v))| match (d, v) {
                (ViewDelta::Edges(e), View::Graph(_)) => Ok(!e.is_empty()
                    || removing
                    || self
                        .edits
                        .iter()
                        .any(|ed| matches!(ed, DeltaEdit::EdgeWeight { view, .. } if *view == i))),
                (ViewDelta::Rows(x), View::Attributes(_)) => Ok(x.nrows() > 0
                    || self
                        .edits
                        .iter()
                        .any(|ed| matches!(ed, DeltaEdit::AttrRow { view, .. } if *view == i))),
                _ => Err(GraphError::InvalidArgument(format!(
                    "delta entry {i} does not match the kind of view {i}"
                ))),
            })
            .collect()
    }

    /// Validates the removal/edit half of the delta against a base
    /// with `n` nodes and `r` views of the given kinds (`true` =
    /// graph). Shared by [`Mvag::apply_delta`] and by consumers that
    /// must reject a malformed delta before touching any state.
    ///
    /// # Errors
    /// [`GraphError::InvalidArgument`] for unsorted/duplicate/out-of-
    /// range removals, edits referencing removed or out-of-range
    /// nodes, edits whose view index or kind does not line up, or
    /// appended edges touching removed nodes.
    pub fn validate_mutations(&self, n: usize, is_graph: &[bool]) -> Result<()> {
        for pair in self.removed_nodes.windows(2) {
            if pair[0] >= pair[1] {
                return Err(GraphError::InvalidArgument(format!(
                    "removed_nodes must be strictly increasing (saw {} then {})",
                    pair[0], pair[1]
                )));
            }
        }
        if let Some(&last) = self.removed_nodes.last() {
            if last >= n {
                return Err(GraphError::InvalidArgument(format!(
                    "removed node {last} out of range for n = {n}"
                )));
            }
        }
        let removed = |id: usize| self.removed_nodes.binary_search(&id).is_ok();
        for (i, e) in self.edits.iter().enumerate() {
            let (view, nodes) = match e {
                DeltaEdit::EdgeWeight { view, u, v, .. } => (*view, vec![*u, *v]),
                DeltaEdit::AttrRow { view, node, .. } => (*view, vec![*node]),
            };
            if view >= is_graph.len() {
                return Err(GraphError::InvalidArgument(format!(
                    "edit {i} targets view {view}, but there are {} views",
                    is_graph.len()
                )));
            }
            let wants_graph = matches!(e, DeltaEdit::EdgeWeight { .. });
            if is_graph[view] != wants_graph {
                return Err(GraphError::InvalidArgument(format!(
                    "edit {i} kind does not match the kind of view {view}"
                )));
            }
            for node in nodes {
                if node >= n {
                    return Err(GraphError::InvalidArgument(format!(
                        "edit {i} references node {node}, out of range for existing n = {n}"
                    )));
                }
                if removed(node) {
                    return Err(GraphError::InvalidArgument(format!(
                        "edit {i} references node {node}, which this delta removes"
                    )));
                }
            }
        }
        if !self.removed_nodes.is_empty() {
            for (vi, vd) in self.views.iter().enumerate() {
                if let ViewDelta::Edges(edges) = vd {
                    for &(u, v, _) in edges {
                        if removed(u) || removed(v) {
                            return Err(GraphError::InvalidArgument(format!(
                                "view {vi}: appended edge ({u}, {v}) touches a node this \
                                 delta removes"
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// A multi-view attributed graph with optional ground-truth labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Mvag {
    /// Human-readable dataset name (used by the experiment harness).
    pub name: String,
    views: Vec<View>,
    labels: Option<Vec<usize>>,
    k: usize,
}

impl Mvag {
    /// Creates an MVAG, validating view-count and node-count consistency.
    ///
    /// The paper targets MVAGs with `r = p + q > 2` views, but `r ≥ 2` is
    /// accepted (weighting two views is already meaningful); `r < 2` is
    /// rejected because aggregation degenerates to a single view.
    ///
    /// # Errors
    /// [`GraphError::InvalidArgument`] on inconsistent node counts,
    /// `r < 2`, `k < 2`, or label problems.
    pub fn new(
        name: impl Into<String>,
        views: Vec<View>,
        labels: Option<Vec<usize>>,
        k: usize,
    ) -> Result<Self> {
        if views.len() < 2 {
            return Err(GraphError::InvalidArgument(format!(
                "an MVAG needs r >= 2 views, got {}",
                views.len()
            )));
        }
        let n = views[0].n();
        if n == 0 {
            return Err(GraphError::InvalidArgument("MVAG with 0 nodes".into()));
        }
        for (i, v) in views.iter().enumerate() {
            if v.n() != n {
                return Err(GraphError::InvalidArgument(format!(
                    "view {i} covers {} nodes, expected {n}",
                    v.n()
                )));
            }
        }
        if k < 2 {
            return Err(GraphError::InvalidArgument(format!(
                "MVAG needs k >= 2 clusters, got {k}"
            )));
        }
        if let Some(ref l) = labels {
            if l.len() != n {
                return Err(GraphError::InvalidArgument(format!(
                    "labels length {} != n = {n}",
                    l.len()
                )));
            }
            if let Some(&max) = l.iter().max() {
                if max >= k {
                    return Err(GraphError::InvalidArgument(format!(
                        "label {max} >= k = {k}"
                    )));
                }
            }
        }
        Ok(Mvag {
            name: name.into(),
            views,
            labels,
            k,
        })
    }

    /// Number of nodes `n`.
    pub fn n(&self) -> usize {
        self.views[0].n()
    }

    /// Number of views `r = p + q`.
    pub fn r(&self) -> usize {
        self.views.len()
    }

    /// Number of ground-truth clusters/classes `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// All views in order (graph views conventionally first, but any order
    /// is supported).
    pub fn views(&self) -> &[View] {
        &self.views
    }

    /// Ground-truth labels if available.
    pub fn labels(&self) -> Option<&[usize]> {
        self.labels.as_deref()
    }

    /// Number of graph views `p`.
    pub fn num_graph_views(&self) -> usize {
        self.views.iter().filter(|v| v.is_graph()).count()
    }

    /// Number of attribute views `q`.
    pub fn num_attr_views(&self) -> usize {
        self.r() - self.num_graph_views()
    }

    /// Total number of edges `m` across all graph views.
    pub fn total_edges(&self) -> usize {
        self.views
            .iter()
            .map(|v| match v {
                View::Graph(g) => g.num_edges(),
                View::Attributes(_) => 0,
            })
            .sum()
    }

    /// Applies an [`MvagDelta`], producing the updated MVAG: every
    /// graph view gains the delta's edges (appended nodes without
    /// edges stay isolated), every attribute view gains the delta's
    /// rows, labels are extended; then in-place edits are applied
    /// (edge-weight sets, attribute-row overwrites) and finally
    /// removed nodes are detached from every graph view. Removed
    /// nodes keep their id and their (now dead) attribute rows — `n`
    /// never shrinks here; compaction is a separate, artifact-level
    /// pass.
    ///
    /// # Errors
    /// [`GraphError::InvalidArgument`] when the delta does not line up
    /// with this MVAG: wrong view count or kinds, attribute row
    /// count/width mismatches, out-of-range edge endpoints, label
    /// problems, or invalid removals/edits (see
    /// [`MvagDelta::validate_mutations`]).
    pub fn apply_delta(&self, delta: &MvagDelta) -> Result<Mvag> {
        // Kind/lineup validation up front (also used by callers to
        // plan incremental Laplacian refreshes).
        delta.changed_views(self)?;
        let is_graph: Vec<bool> = self.views.iter().map(View::is_graph).collect();
        delta.validate_mutations(self.n(), &is_graph)?;
        let n_new = self.n() + delta.added_nodes;
        let mut views = Vec::with_capacity(self.r());
        for (i, (view, vd)) in self.views.iter().zip(&delta.views).enumerate() {
            match (view, vd) {
                (View::Graph(g), ViewDelta::Edges(edges)) => {
                    let mut g = g.append_nodes(delta.added_nodes, edges)?;
                    let edits = delta.edge_edits_for(i);
                    if !edits.is_empty() {
                        g = g.with_edge_weights(&edits)?;
                    }
                    if !delta.removed_nodes.is_empty() {
                        g = g.detach_nodes(&delta.removed_nodes)?;
                    }
                    views.push(View::Graph(g));
                }
                (View::Attributes(x), ViewDelta::Rows(rows)) => {
                    if rows.nrows() != delta.added_nodes {
                        return Err(GraphError::InvalidArgument(format!(
                            "view {i}: {} appended attribute rows for {} appended nodes",
                            rows.nrows(),
                            delta.added_nodes
                        )));
                    }
                    if delta.added_nodes > 0 && rows.ncols() != x.ncols() {
                        return Err(GraphError::InvalidArgument(format!(
                            "view {i}: appended rows have {} columns, view has {}",
                            rows.ncols(),
                            x.ncols()
                        )));
                    }
                    let mut data = Vec::with_capacity((x.nrows() + rows.nrows()) * x.ncols());
                    data.extend_from_slice(x.data());
                    data.extend_from_slice(rows.data());
                    let mut stacked = DenseMatrix::from_vec(n_new, x.ncols(), data)
                        .expect("row counts add up by construction");
                    for (ei, e) in delta.edits.iter().enumerate() {
                        if let DeltaEdit::AttrRow { view, node, row } = e {
                            if *view != i {
                                continue;
                            }
                            if row.len() != x.ncols() {
                                return Err(GraphError::InvalidArgument(format!(
                                    "edit {ei}: row has {} columns, view {i} has {}",
                                    row.len(),
                                    x.ncols()
                                )));
                            }
                            if row.iter().any(|v| !v.is_finite()) {
                                return Err(GraphError::InvalidArgument(format!(
                                    "edit {ei}: non-finite attribute value"
                                )));
                            }
                            stacked.row_mut(*node).copy_from_slice(row);
                        }
                    }
                    views.push(View::Attributes(stacked));
                }
                _ => unreachable!("kinds checked by changed_views"),
            }
        }
        let labels = match (&self.labels, &delta.added_labels) {
            (Some(old), Some(add)) => {
                if add.len() != delta.added_nodes {
                    return Err(GraphError::InvalidArgument(format!(
                        "{} appended labels for {} appended nodes",
                        add.len(),
                        delta.added_nodes
                    )));
                }
                let mut l = old.clone();
                l.extend_from_slice(add);
                Some(l)
            }
            (None, None) => None,
            (Some(_), None) => {
                return Err(GraphError::InvalidArgument(
                    "base MVAG has labels; the delta must supply added_labels".into(),
                ))
            }
            (None, Some(_)) => {
                return Err(GraphError::InvalidArgument(
                    "base MVAG has no labels; the delta must not supply added_labels".into(),
                ))
            }
        };
        Mvag::new(self.name.clone(), views, labels, self.k)
    }

    /// One-line statistics summary (mirrors the paper's Table II row).
    pub fn summary(&self) -> String {
        let edge_counts: Vec<String> = self
            .views
            .iter()
            .filter_map(|v| match v {
                View::Graph(g) => Some(g.num_edges().to_string()),
                View::Attributes(_) => None,
            })
            .collect();
        let dims: Vec<String> = self
            .views
            .iter()
            .filter_map(|v| match v {
                View::Attributes(x) => Some(x.ncols().to_string()),
                View::Graph(_) => None,
            })
            .collect();
        format!(
            "{}: n={} r={} m_i=[{}] d_j=[{}] k={}",
            self.name,
            self.n(),
            self.r(),
            edge_counts.join(";"),
            dims.join(";"),
            self.k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_view(n: usize) -> View {
        View::Graph(Graph::from_unweighted_edges(n, &[(0, 1)]).unwrap())
    }

    fn attr_view(n: usize, d: usize) -> View {
        View::Attributes(DenseMatrix::zeros(n, d))
    }

    #[test]
    fn valid_mvag() {
        let m = Mvag::new(
            "test",
            vec![graph_view(4), attr_view(4, 3)],
            Some(vec![0, 0, 1, 1]),
            2,
        )
        .unwrap();
        assert_eq!(m.n(), 4);
        assert_eq!(m.r(), 2);
        assert_eq!(m.num_graph_views(), 1);
        assert_eq!(m.num_attr_views(), 1);
        assert_eq!(m.total_edges(), 1);
        assert!(m.summary().contains("n=4"));
    }

    #[test]
    fn rejects_single_view() {
        assert!(Mvag::new("x", vec![graph_view(4)], None, 2).is_err());
    }

    #[test]
    fn rejects_inconsistent_n() {
        assert!(Mvag::new("x", vec![graph_view(4), attr_view(5, 2)], None, 2).is_err());
    }

    #[test]
    fn rejects_bad_labels() {
        assert!(
            Mvag::new(
                "x",
                vec![graph_view(4), attr_view(4, 2)],
                Some(vec![0, 1]),
                2
            )
            .is_err(),
            "short labels"
        );
        assert!(
            Mvag::new(
                "x",
                vec![graph_view(4), attr_view(4, 2)],
                Some(vec![0, 1, 2, 0]),
                2
            )
            .is_err(),
            "label >= k"
        );
    }

    #[test]
    fn rejects_small_k() {
        assert!(Mvag::new("x", vec![graph_view(4), attr_view(4, 2)], None, 1).is_err());
    }

    #[test]
    fn apply_delta_appends_nodes_edges_rows_labels() {
        let base = Mvag::new(
            "test",
            vec![graph_view(4), attr_view(4, 3)],
            Some(vec![0, 0, 1, 1]),
            2,
        )
        .unwrap();
        let delta = MvagDelta::append(
            2,
            vec![
                ViewDelta::Edges(vec![(4, 0, 1.0), (5, 2, 2.0), (4, 5, 1.0)]),
                ViewDelta::Rows(DenseMatrix::from_vec(2, 3, vec![1.0; 6]).unwrap()),
            ],
            Some(vec![0, 1]),
        );
        assert!(!delta.is_noop());
        assert_eq!(delta.changed_views(&base).unwrap(), vec![true, true]);
        let updated = base.apply_delta(&delta).unwrap();
        assert_eq!(updated.n(), 6);
        assert_eq!(updated.labels().unwrap(), &[0, 0, 1, 1, 0, 1]);
        assert_eq!(updated.total_edges(), 1 + 3);
        match &updated.views()[1] {
            View::Attributes(x) => {
                assert_eq!(x.nrows(), 6);
                assert_eq!(x.row(4), &[1.0, 1.0, 1.0]);
            }
            View::Graph(_) => panic!("view 1 should stay an attribute view"),
        }
        // Edge-only delta: attribute view untouched, graph view changed.
        let edges_only = MvagDelta::append(
            0,
            vec![
                ViewDelta::Edges(vec![(2, 3, 1.0)]),
                ViewDelta::Rows(DenseMatrix::zeros(0, 0)),
            ],
            Some(vec![]),
        );
        assert_eq!(edges_only.changed_views(&base).unwrap(), vec![true, false]);
        let patched = base.apply_delta(&edges_only).unwrap();
        assert_eq!(patched.n(), 4);
        assert_eq!(patched.total_edges(), 2);
    }

    #[test]
    fn apply_delta_rejects_malformed_deltas() {
        let base = Mvag::new(
            "test",
            vec![graph_view(4), attr_view(4, 3)],
            Some(vec![0, 0, 1, 1]),
            2,
        )
        .unwrap();
        let rows = |n: usize, d: usize| ViewDelta::Rows(DenseMatrix::zeros(n, d));
        // Wrong view count / kind order.
        let bad = MvagDelta::append(0, vec![ViewDelta::Edges(vec![])], Some(vec![]));
        assert!(base.apply_delta(&bad).is_err());
        let swapped =
            MvagDelta::append(0, vec![rows(0, 3), ViewDelta::Edges(vec![])], Some(vec![]));
        assert!(base.apply_delta(&swapped).is_err());
        // Row-count, width, label-count, label-range, missing-label errors.
        for (added, v1, labels) in [
            (2, rows(1, 3), Some(vec![0, 1])),
            (2, rows(2, 4), Some(vec![0, 1])),
            (2, rows(2, 3), Some(vec![0])),
            (2, rows(2, 3), Some(vec![0, 7])),
            (2, rows(2, 3), None),
        ] {
            let delta =
                MvagDelta::append(added, vec![ViewDelta::Edges(vec![]), v1.clone()], labels);
            assert!(base.apply_delta(&delta).is_err(), "{delta:?}");
        }
        // Out-of-range appended edge.
        let bad_edge = MvagDelta::append(
            1,
            vec![ViewDelta::Edges(vec![(0, 9, 1.0)]), rows(1, 3)],
            Some(vec![0]),
        );
        assert!(base.apply_delta(&bad_edge).is_err());
    }

    #[test]
    fn apply_delta_removes_and_edits() {
        let base = Mvag::new(
            "test",
            vec![
                View::Graph(Graph::from_unweighted_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()),
                attr_view(4, 3),
            ],
            Some(vec![0, 0, 1, 1]),
            2,
        )
        .unwrap();
        let delta = MvagDelta {
            added_nodes: 0,
            views: vec![
                ViewDelta::Edges(vec![]),
                ViewDelta::Rows(DenseMatrix::zeros(0, 0)),
            ],
            added_labels: Some(vec![]),
            removed_nodes: vec![1],
            edits: vec![
                DeltaEdit::EdgeWeight {
                    view: 0,
                    u: 2,
                    v: 3,
                    w: 5.0,
                },
                DeltaEdit::AttrRow {
                    view: 1,
                    node: 0,
                    row: vec![7.0, 8.0, 9.0],
                },
            ],
        };
        assert!(!delta.is_noop());
        assert!(!delta.is_append_only());
        // Removal marks the graph view changed; row edit marks the
        // attribute view changed.
        assert_eq!(delta.changed_views(&base).unwrap(), vec![true, true]);
        let updated = base.apply_delta(&delta).unwrap();
        assert_eq!(updated.n(), 4, "removal keeps ids stable");
        match &updated.views()[0] {
            View::Graph(g) => {
                assert_eq!(g.adjacency().get(0, 1), 0.0, "detached");
                assert_eq!(g.adjacency().get(1, 2), 0.0, "detached");
                assert_eq!(g.adjacency().get(2, 3), 5.0, "edited weight");
                assert_eq!(g.isolated_nodes(), vec![0, 1]);
            }
            View::Attributes(_) => panic!("view 0 should stay a graph view"),
        }
        match &updated.views()[1] {
            View::Attributes(x) => {
                assert_eq!(x.row(0), &[7.0, 8.0, 9.0]);
                assert_eq!(x.row(1), &[0.0, 0.0, 0.0], "dead row left in place");
            }
            View::Graph(_) => panic!("view 1 should stay an attribute view"),
        }
        // Delete-only delta: graph views changed, attribute views not.
        let delete_only = MvagDelta {
            removed_nodes: vec![2],
            views: vec![
                ViewDelta::Edges(vec![]),
                ViewDelta::Rows(DenseMatrix::zeros(0, 0)),
            ],
            added_labels: Some(vec![]),
            ..MvagDelta::default()
        };
        assert_eq!(delete_only.changed_views(&base).unwrap(), vec![true, false]);
    }

    #[test]
    fn apply_delta_rejects_bad_removals_and_edits() {
        let base = Mvag::new(
            "test",
            vec![
                View::Graph(Graph::from_unweighted_edges(4, &[(0, 1)]).unwrap()),
                attr_view(4, 3),
            ],
            None,
            2,
        )
        .unwrap();
        let shell = |removed: Vec<usize>, edits: Vec<DeltaEdit>| MvagDelta {
            added_nodes: 0,
            views: vec![
                ViewDelta::Edges(vec![]),
                ViewDelta::Rows(DenseMatrix::zeros(0, 0)),
            ],
            added_labels: None,
            removed_nodes: removed,
            edits,
        };
        // Unsorted, duplicate, out-of-range removals.
        assert!(base.apply_delta(&shell(vec![2, 1], vec![])).is_err());
        assert!(base.apply_delta(&shell(vec![1, 1], vec![])).is_err());
        assert!(base.apply_delta(&shell(vec![4], vec![])).is_err());
        // Edit on a removed node / out-of-range node / wrong view kind
        // / bad view index / wrong row width / non-finite row.
        let edge = |u: usize, v: usize| DeltaEdit::EdgeWeight {
            view: 0,
            u,
            v,
            w: 1.0,
        };
        assert!(base.apply_delta(&shell(vec![1], vec![edge(1, 2)])).is_err());
        assert!(base.apply_delta(&shell(vec![], vec![edge(0, 9)])).is_err());
        let wrong_kind = DeltaEdit::AttrRow {
            view: 0,
            node: 0,
            row: vec![1.0; 3],
        };
        assert!(base.apply_delta(&shell(vec![], vec![wrong_kind])).is_err());
        let bad_view = DeltaEdit::AttrRow {
            view: 5,
            node: 0,
            row: vec![1.0; 3],
        };
        assert!(base.apply_delta(&shell(vec![], vec![bad_view])).is_err());
        let bad_width = DeltaEdit::AttrRow {
            view: 1,
            node: 0,
            row: vec![1.0; 2],
        };
        assert!(base.apply_delta(&shell(vec![], vec![bad_width])).is_err());
        let non_finite = DeltaEdit::AttrRow {
            view: 1,
            node: 0,
            row: vec![f64::NAN, 0.0, 0.0],
        };
        assert!(base.apply_delta(&shell(vec![], vec![non_finite])).is_err());
        // Appended edge touching a removed node.
        let touch = MvagDelta {
            added_nodes: 1,
            views: vec![
                ViewDelta::Edges(vec![(4, 1, 1.0)]),
                ViewDelta::Rows(DenseMatrix::zeros(1, 3)),
            ],
            added_labels: None,
            removed_nodes: vec![1],
            edits: vec![],
        };
        assert!(base.apply_delta(&touch).is_err());
    }

    #[test]
    fn rejects_zero_nodes() {
        let g = View::Graph(Graph::from_unweighted_edges(0, &[]).unwrap());
        let a = View::Attributes(DenseMatrix::zeros(0, 2));
        assert!(Mvag::new("x", vec![g, a], None, 2).is_err());
    }
}

//! The multi-view attributed graph container.
//!
//! `G = {V, E₁, …, E_p, X_{p+1}, …, X_{p+q}}` — `p` graph views over a
//! shared node set plus `q` attribute views (Section III-A of the paper).

use crate::{Graph, GraphError, Result};
use mvag_sparse::DenseMatrix;

/// One view of an MVAG: either a graph over the shared node set or an
/// attribute matrix with one row per node.
#[derive(Debug, Clone, PartialEq)]
pub enum View {
    /// A graph view `Gᵢ = {V, Eᵢ}`.
    Graph(Graph),
    /// An attribute view `Xⱼ ∈ R^{n × dⱼ}`.
    Attributes(DenseMatrix),
}

impl View {
    /// Number of nodes this view covers.
    pub fn n(&self) -> usize {
        match self {
            View::Graph(g) => g.n(),
            View::Attributes(x) => x.nrows(),
        }
    }

    /// Whether this is a graph view.
    pub fn is_graph(&self) -> bool {
        matches!(self, View::Graph(_))
    }
}

/// A multi-view attributed graph with optional ground-truth labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Mvag {
    /// Human-readable dataset name (used by the experiment harness).
    pub name: String,
    views: Vec<View>,
    labels: Option<Vec<usize>>,
    k: usize,
}

impl Mvag {
    /// Creates an MVAG, validating view-count and node-count consistency.
    ///
    /// The paper targets MVAGs with `r = p + q > 2` views, but `r ≥ 2` is
    /// accepted (weighting two views is already meaningful); `r < 2` is
    /// rejected because aggregation degenerates to a single view.
    ///
    /// # Errors
    /// [`GraphError::InvalidArgument`] on inconsistent node counts,
    /// `r < 2`, `k < 2`, or label problems.
    pub fn new(
        name: impl Into<String>,
        views: Vec<View>,
        labels: Option<Vec<usize>>,
        k: usize,
    ) -> Result<Self> {
        if views.len() < 2 {
            return Err(GraphError::InvalidArgument(format!(
                "an MVAG needs r >= 2 views, got {}",
                views.len()
            )));
        }
        let n = views[0].n();
        if n == 0 {
            return Err(GraphError::InvalidArgument("MVAG with 0 nodes".into()));
        }
        for (i, v) in views.iter().enumerate() {
            if v.n() != n {
                return Err(GraphError::InvalidArgument(format!(
                    "view {i} covers {} nodes, expected {n}",
                    v.n()
                )));
            }
        }
        if k < 2 {
            return Err(GraphError::InvalidArgument(format!(
                "MVAG needs k >= 2 clusters, got {k}"
            )));
        }
        if let Some(ref l) = labels {
            if l.len() != n {
                return Err(GraphError::InvalidArgument(format!(
                    "labels length {} != n = {n}",
                    l.len()
                )));
            }
            if let Some(&max) = l.iter().max() {
                if max >= k {
                    return Err(GraphError::InvalidArgument(format!(
                        "label {max} >= k = {k}"
                    )));
                }
            }
        }
        Ok(Mvag {
            name: name.into(),
            views,
            labels,
            k,
        })
    }

    /// Number of nodes `n`.
    pub fn n(&self) -> usize {
        self.views[0].n()
    }

    /// Number of views `r = p + q`.
    pub fn r(&self) -> usize {
        self.views.len()
    }

    /// Number of ground-truth clusters/classes `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// All views in order (graph views conventionally first, but any order
    /// is supported).
    pub fn views(&self) -> &[View] {
        &self.views
    }

    /// Ground-truth labels if available.
    pub fn labels(&self) -> Option<&[usize]> {
        self.labels.as_deref()
    }

    /// Number of graph views `p`.
    pub fn num_graph_views(&self) -> usize {
        self.views.iter().filter(|v| v.is_graph()).count()
    }

    /// Number of attribute views `q`.
    pub fn num_attr_views(&self) -> usize {
        self.r() - self.num_graph_views()
    }

    /// Total number of edges `m` across all graph views.
    pub fn total_edges(&self) -> usize {
        self.views
            .iter()
            .map(|v| match v {
                View::Graph(g) => g.num_edges(),
                View::Attributes(_) => 0,
            })
            .sum()
    }

    /// One-line statistics summary (mirrors the paper's Table II row).
    pub fn summary(&self) -> String {
        let edge_counts: Vec<String> = self
            .views
            .iter()
            .filter_map(|v| match v {
                View::Graph(g) => Some(g.num_edges().to_string()),
                View::Attributes(_) => None,
            })
            .collect();
        let dims: Vec<String> = self
            .views
            .iter()
            .filter_map(|v| match v {
                View::Attributes(x) => Some(x.ncols().to_string()),
                View::Graph(_) => None,
            })
            .collect();
        format!(
            "{}: n={} r={} m_i=[{}] d_j=[{}] k={}",
            self.name,
            self.n(),
            self.r(),
            edge_counts.join(";"),
            dims.join(";"),
            self.k
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_view(n: usize) -> View {
        View::Graph(Graph::from_unweighted_edges(n, &[(0, 1)]).unwrap())
    }

    fn attr_view(n: usize, d: usize) -> View {
        View::Attributes(DenseMatrix::zeros(n, d))
    }

    #[test]
    fn valid_mvag() {
        let m = Mvag::new(
            "test",
            vec![graph_view(4), attr_view(4, 3)],
            Some(vec![0, 0, 1, 1]),
            2,
        )
        .unwrap();
        assert_eq!(m.n(), 4);
        assert_eq!(m.r(), 2);
        assert_eq!(m.num_graph_views(), 1);
        assert_eq!(m.num_attr_views(), 1);
        assert_eq!(m.total_edges(), 1);
        assert!(m.summary().contains("n=4"));
    }

    #[test]
    fn rejects_single_view() {
        assert!(Mvag::new("x", vec![graph_view(4)], None, 2).is_err());
    }

    #[test]
    fn rejects_inconsistent_n() {
        assert!(Mvag::new("x", vec![graph_view(4), attr_view(5, 2)], None, 2).is_err());
    }

    #[test]
    fn rejects_bad_labels() {
        assert!(
            Mvag::new(
                "x",
                vec![graph_view(4), attr_view(4, 2)],
                Some(vec![0, 1]),
                2
            )
            .is_err(),
            "short labels"
        );
        assert!(
            Mvag::new(
                "x",
                vec![graph_view(4), attr_view(4, 2)],
                Some(vec![0, 1, 2, 0]),
                2
            )
            .is_err(),
            "label >= k"
        );
    }

    #[test]
    fn rejects_small_k() {
        assert!(Mvag::new("x", vec![graph_view(4), attr_view(4, 2)], None, 1).is_err());
    }

    #[test]
    fn rejects_zero_nodes() {
        let g = View::Graph(Graph::from_unweighted_edges(0, &[]).unwrap());
        let a = View::Attributes(DenseMatrix::zeros(0, 2));
        assert!(Mvag::new("x", vec![g, a], None, 2).is_err());
    }
}

//! K-nearest-neighbour graph construction from attribute views.
//!
//! The paper (Section III-B) converts each attribute view `Xⱼ` into a KNN
//! graph `G_K(Xⱼ)`: every node connects to its `K` most cosine-similar
//! nodes, each edge weighted by the similarity. The result is symmetrized
//! by keeping an edge if *either* endpoint selected the other (union),
//! which is the prevalent convention (e.g. 2CMV \[26\]).
//!
//! Complexity is the exact brute-force `O(n² d / threads)`; the paper's
//! `qnK` terms count the *resulting* nonzeros, and the construction itself
//! is a one-time preprocessing cost reported as part of total runtime in
//! Figures 5–6 (as we do in the harness).

use crate::{Graph, GraphError, Result};
use mvag_sparse::parallel::par_map;
use mvag_sparse::{vecops, CooMatrix, DenseMatrix};

/// Parameters for KNN graph construction.
#[derive(Debug, Clone)]
pub struct KnnConfig {
    /// Number of neighbours per node (the paper uses K = 10 by default and
    /// larger values for attribute-rich datasets).
    pub k: usize,
    /// Worker threads (default: autodetect, ≤ 16).
    pub threads: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig {
            k: 10,
            threads: mvag_sparse::parallel::default_threads(),
        }
    }
}

/// Builds the similarity-weighted KNN graph of the rows of `x`.
///
/// Only strictly positive cosine similarities produce edges (a node with
/// no positively-similar peers can end up with fewer than `k` neighbours,
/// or isolated — downstream code must tolerate isolated nodes, and the
/// connectivity objective is what steers SGLA's weights away from such
/// views).
///
/// # Errors
/// [`GraphError::InvalidArgument`] if `k == 0` or `k >= n`.
pub fn knn_graph(x: &DenseMatrix, config: &KnnConfig) -> Result<Graph> {
    let n = x.nrows();
    if config.k == 0 {
        return Err(GraphError::InvalidArgument("knn k must be >= 1".into()));
    }
    if config.k >= n {
        return Err(GraphError::InvalidArgument(format!(
            "knn k = {} must be < n = {n}",
            config.k
        )));
    }
    // Pre-normalize rows so cosine reduces to a dot product.
    let mut normed = x.clone();
    let mut zero_rows = vec![false; n];
    for r in 0..n {
        let row = normed.row_mut(r);
        let nrm = vecops::norm2(row);
        if nrm > f64::MIN_POSITIVE {
            let inv = 1.0 / nrm;
            for v in row {
                *v *= inv;
            }
        } else {
            zero_rows[r] = true;
        }
    }

    // Per-row top-K selection, parallel over rows.
    let per_row: Vec<Vec<(usize, f64)>> = par_map(n, config.threads, |i| {
        if zero_rows[i] {
            return Vec::new();
        }
        let xi = normed.row(i);
        // Bounded min-heap via sorted insertion into a small vec: K is
        // small (10–500), and a linear insert beats a BinaryHeap at these
        // sizes because of cache behaviour.
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(config.k + 1);
        for j in 0..n {
            if j == i || zero_rows[j] {
                continue;
            }
            let sim = vecops::dot(xi, normed.row(j));
            if sim <= 0.0 {
                continue;
            }
            if best.len() < config.k {
                best.push((j, sim));
                if best.len() == config.k {
                    best.sort_unstable_by(|a, b| a.1.partial_cmp(&b.1).expect("finite similarity"));
                }
            } else if sim > best[0].1 {
                // Replace current minimum, restore order.
                best[0] = (j, sim);
                let mut idx = 0;
                while idx + 1 < best.len() && best[idx].1 > best[idx + 1].1 {
                    best.swap(idx, idx + 1);
                    idx += 1;
                }
            }
        }
        best
    });

    // Union-symmetrize: edge weight = max of the two directed similarities
    // (they are equal for cosine, so max == the similarity itself).
    let mut coo = CooMatrix::with_capacity(n, n, per_row.iter().map(Vec::len).sum::<usize>() * 2);
    let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    for (i, nbrs) in per_row.iter().enumerate() {
        for &(j, sim) in nbrs {
            let key = (i.min(j), i.max(j));
            if seen.insert(key) {
                coo.push_sym(key.0, key.1, sim.clamp(0.0, 1.0))
                    .map_err(GraphError::from)?;
            }
        }
    }
    Graph::from_adjacency(coo.to_csr())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated clusters in 2-D.
    fn two_blobs() -> DenseMatrix {
        let mut rows = Vec::new();
        for i in 0..6 {
            let t = i as f64 * 0.05;
            rows.push(vec![1.0 + t, 0.1 * t]); // blob A near +x axis
        }
        for i in 0..6 {
            let t = i as f64 * 0.05;
            rows.push(vec![-0.1 * t - 0.05, 1.0 + t]); // blob B near +y axis
        }
        DenseMatrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn knn_separates_blobs() {
        let x = two_blobs();
        let g = knn_graph(&x, &KnnConfig { k: 3, threads: 2 }).unwrap();
        // No edges across the two blobs: cross-cosine is ≈ 0 or negative.
        for i in 0..6 {
            let (cols, _) = g.neighbors(i);
            for &c in cols {
                assert!(c < 6, "node {i} connected across blobs to {c}");
            }
        }
        // All nodes in a blob have neighbours.
        for i in 0..12 {
            assert!(!g.neighbors(i).0.is_empty(), "node {i} isolated");
        }
    }

    #[test]
    fn edge_weights_are_cosine_similarities() {
        let x = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![0.0, 1.0]]).unwrap();
        let g = knn_graph(&x, &KnnConfig { k: 1, threads: 1 }).unwrap();
        let w = g.adjacency().get(0, 1);
        assert!((w - (0.5f64).sqrt()).abs() < 1e-12, "w = {w}");
    }

    #[test]
    fn invalid_k_rejected() {
        let x = DenseMatrix::zeros(4, 2);
        assert!(knn_graph(&x, &KnnConfig { k: 0, threads: 1 }).is_err());
        assert!(knn_graph(&x, &KnnConfig { k: 4, threads: 1 }).is_err());
    }

    #[test]
    fn zero_rows_become_isolated() {
        let x = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.9, 0.1],
            vec![0.0, 0.0], // zero attributes
            vec![0.8, 0.2],
        ])
        .unwrap();
        let g = knn_graph(&x, &KnnConfig { k: 2, threads: 1 }).unwrap();
        assert!(g.neighbors(2).0.is_empty());
    }

    #[test]
    fn symmetric_result() {
        let x = two_blobs();
        let g = knn_graph(&x, &KnnConfig { k: 2, threads: 2 }).unwrap();
        assert!(g.adjacency().is_symmetric(1e-12));
    }

    #[test]
    fn negative_similarity_excluded() {
        let x =
            DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![-1.0, 0.0], vec![0.9, 0.05]]).unwrap();
        let g = knn_graph(&x, &KnnConfig { k: 2, threads: 1 }).unwrap();
        assert_eq!(g.adjacency().get(0, 1), 0.0);
        assert!(g.adjacency().get(0, 2) > 0.0);
    }

    #[test]
    fn deterministic_and_thread_invariant() {
        let x = two_blobs();
        let g1 = knn_graph(&x, &KnnConfig { k: 3, threads: 1 }).unwrap();
        let g2 = knn_graph(&x, &KnnConfig { k: 3, threads: 4 }).unwrap();
        assert_eq!(g1, g2);
    }
}

//! Combinatorial graph quality measures.
//!
//! These are the quantities the SGLA objectives bound spectrally:
//! normalized cut `ϕ(C) = Cut(C) / Vol(C)` (Definition 1, bounded through
//! the eigengap via higher-order Cheeger), and conductance `Φ(G)`
//! (Eq. 3, bounded by `λ₂/2 ≤ Φ(G) ≤ √(2 λ₂)` — Eq. 4).

use crate::{Graph, GraphError, Result};

/// Volume `Vol(C) = Σ_{v ∈ C} δ(v)` of a node set given as a membership
/// mask.
pub fn volume(g: &Graph, members: &[bool]) -> f64 {
    debug_assert_eq!(members.len(), g.n());
    let deg = g.degrees();
    members
        .iter()
        .zip(&deg)
        .filter_map(|(&m, &d)| m.then_some(d))
        .sum()
}

/// Cut value `Cut(C) = Σ_{u ∈ C, v ∉ C} A[u, v]`.
pub fn cut(g: &Graph, members: &[bool]) -> f64 {
    debug_assert_eq!(members.len(), g.n());
    let mut total = 0.0;
    for u in 0..g.n() {
        if !members[u] {
            continue;
        }
        let (cols, vals) = g.neighbors(u);
        for (&v, &w) in cols.iter().zip(vals) {
            if !members[v] {
                total += w;
            }
        }
    }
    total
}

/// Normalized cut `ϕ(C) = Cut(C) / Vol(C)` (Definition 1). Returns an error
/// for empty or zero-volume sets.
///
/// # Errors
/// [`GraphError::InvalidArgument`] when `Vol(C) = 0`.
pub fn normalized_cut(g: &Graph, members: &[bool]) -> Result<f64> {
    let vol = volume(g, members);
    if vol == 0.0 {
        return Err(GraphError::InvalidArgument(
            "normalized cut of a zero-volume set".into(),
        ));
    }
    Ok(cut(g, members) / vol)
}

/// Conductance of the bipartition `(C, V∖C)`:
/// `Cut(C) / min(Vol(C), Vol(V∖C))` — the inner term of Eq. 3.
///
/// # Errors
/// [`GraphError::InvalidArgument`] if either side has zero volume.
pub fn set_conductance(g: &Graph, members: &[bool]) -> Result<f64> {
    let vol_c = volume(g, members);
    let vol_rest = g.total_volume() - vol_c;
    let denom = vol_c.min(vol_rest);
    if denom == 0.0 {
        return Err(GraphError::InvalidArgument(
            "conductance of a trivial bipartition".into(),
        ));
    }
    Ok(cut(g, members) / denom)
}

/// Sweep cut: sorts nodes by `score`, evaluates the conductance of every
/// prefix, and returns `(best_conductance, membership_mask)`.
///
/// With `score` = the Fiedler vector of the normalized Laplacian this is
/// the classic spectral partitioning rounding whose quality Cheeger's
/// inequality certifies; used in tests to validate Eq. 4 and available to
/// downstream users as a 2-way clustering primitive.
///
/// # Errors
/// [`GraphError::InvalidArgument`] on length mismatch or graphs with no
/// edges.
pub fn sweep_cut(g: &Graph, score: &[f64]) -> Result<(f64, Vec<bool>)> {
    let n = g.n();
    if score.len() != n {
        return Err(GraphError::InvalidArgument(format!(
            "score length {} != n = {n}",
            score.len()
        )));
    }
    if g.num_edges() == 0 {
        return Err(GraphError::InvalidArgument(
            "sweep cut of an edgeless graph".into(),
        ));
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| score[a].partial_cmp(&score[b]).expect("finite scores"));
    let deg = g.degrees();
    let total_vol = g.total_volume();
    let mut members = vec![false; n];
    let mut vol = 0.0;
    let mut cut_val = 0.0;
    let mut best = f64::INFINITY;
    let mut best_prefix = 0usize;
    for (prefix, &u) in order.iter().enumerate().take(n - 1) {
        members[u] = true;
        vol += deg[u];
        // Adding u flips each (u, v) edge: inside→cut if v outside,
        // cut→inside if v already inside.
        let (cols, vals) = g.neighbors(u);
        for (&v, &w) in cols.iter().zip(vals) {
            if members[v] {
                cut_val -= w;
            } else {
                cut_val += w;
            }
        }
        let denom = vol.min(total_vol - vol);
        if denom > 0.0 {
            let phi = cut_val / denom;
            if phi < best {
                best = phi;
                best_prefix = prefix + 1;
            }
        }
    }
    let mut best_mask = vec![false; n];
    for &u in order.iter().take(best_prefix) {
        best_mask[u] = true;
    }
    Ok((best, best_mask))
}

/// Connected components by union-find; returns a component id per node
/// (ids are 0-based and contiguous, ordered by smallest member).
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.n();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        // Path compression.
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for u in 0..n {
        for &v in g.neighbors(u).0 {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv)] = ru.min(rv);
            }
        }
    }
    let mut ids = vec![usize::MAX; n];
    let mut next_id = 0;
    for u in 0..n {
        let r = find(&mut parent, u);
        if ids[r] == usize::MAX {
            ids[r] = next_id;
            next_id += 1;
        }
        ids[u] = ids[r];
    }
    ids
}

/// Number of connected components.
pub fn num_components(g: &Graph) -> usize {
    connected_components(g)
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by one bridge edge (the classic dumbbell).
    fn dumbbell() -> Graph {
        Graph::from_unweighted_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
            .unwrap()
    }

    #[test]
    fn volume_cut_ncut_on_dumbbell() {
        let g = dumbbell();
        let left = [true, true, true, false, false, false];
        assert_eq!(volume(&g, &left), 7.0); // degrees 2+2+3
        assert_eq!(cut(&g, &left), 1.0); // the bridge
        let phi = normalized_cut(&g, &left).unwrap();
        assert!((phi - 1.0 / 7.0).abs() < 1e-15);
        let cond = set_conductance(&g, &left).unwrap();
        assert!((cond - 1.0 / 7.0).abs() < 1e-15);
    }

    #[test]
    fn ncut_rejects_empty_set() {
        let g = dumbbell();
        assert!(normalized_cut(&g, &[false; 6]).is_err());
        assert!(set_conductance(&g, &[true; 6]).is_err());
    }

    #[test]
    fn sweep_cut_finds_bridge() {
        let g = dumbbell();
        // Any score separating the triangles works; use node index.
        let score = [0.0, 0.1, 0.2, 1.0, 1.1, 1.2];
        let (phi, mask) = sweep_cut(&g, &score).unwrap();
        assert!((phi - 1.0 / 7.0).abs() < 1e-12);
        assert_eq!(mask, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn sweep_cut_with_fiedler_vector_obeys_cheeger() {
        let g = dumbbell();
        let l = g.normalized_laplacian();
        let eig = mvag_sparse::eigen::smallest_eigenpairs(
            &l,
            2,
            &mvag_sparse::eigen::EigOptions::default(),
        )
        .unwrap();
        let lambda2 = eig.values[1];
        let fiedler = eig.vectors.col(1);
        let (phi, _) = sweep_cut(&g, &fiedler).unwrap();
        // Cheeger: λ₂/2 ≤ Φ(G) ≤ φ_sweep ≤ √(2 λ₂).
        assert!(lambda2 / 2.0 <= phi + 1e-12);
        assert!(phi <= (2.0 * lambda2).sqrt() + 1e-12);
    }

    #[test]
    fn sweep_cut_validates_input() {
        let g = dumbbell();
        assert!(sweep_cut(&g, &[0.0; 3]).is_err());
        let empty = Graph::from_unweighted_edges(3, &[]).unwrap();
        assert!(sweep_cut(&empty, &[0.0; 3]).is_err());
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_unweighted_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let ids = connected_components(&g);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[2], ids[3]);
        assert_ne!(ids[0], ids[2]);
        assert_ne!(ids[4], ids[0]);
        assert_ne!(ids[4], ids[2]);
        assert_eq!(num_components(&g), 3);
    }

    #[test]
    fn components_of_connected_graph() {
        assert_eq!(num_components(&dumbbell()), 1);
    }

    #[test]
    fn zero_lambda2_iff_disconnected() {
        let g = Graph::from_unweighted_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let l = g.normalized_laplacian();
        let vals = mvag_sparse::eigen::smallest_eigenvalues(
            &l,
            3,
            &mvag_sparse::eigen::EigOptions::default(),
        )
        .unwrap();
        assert!(vals[0].abs() < 1e-10);
        assert!(
            vals[1].abs() < 1e-10,
            "disconnected ⇒ λ₂ = 0, got {}",
            vals[1]
        );
        assert!(vals[2] > 1e-6);
    }
}

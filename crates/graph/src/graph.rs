//! Undirected weighted simple graphs.

use crate::{GraphError, Result};
use mvag_sparse::{CooMatrix, CsrMatrix};

/// An undirected weighted simple graph stored as a symmetric CSR adjacency
/// matrix with zero diagonal.
///
/// Invariants: the adjacency is square, exactly symmetric, nonnegative,
/// and has no self-loops; all constructors enforce them.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    adj: CsrMatrix,
}

impl Graph {
    /// Builds a graph on `n` nodes from an undirected edge list. Edges are
    /// symmetrized, parallel edges have their weights summed, self-loops
    /// are dropped.
    ///
    /// # Errors
    /// * [`GraphError::InvalidArgument`] for out-of-range endpoints or
    ///   non-finite/negative weights.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Result<Self> {
        let mut coo = CooMatrix::with_capacity(n, n, edges.len() * 2);
        for &(u, v, w) in edges {
            if u >= n || v >= n {
                return Err(GraphError::InvalidArgument(format!(
                    "edge ({u}, {v}) out of range for n = {n}"
                )));
            }
            if !w.is_finite() || w < 0.0 {
                return Err(GraphError::InvalidArgument(format!(
                    "edge ({u}, {v}) has invalid weight {w}"
                )));
            }
            if u == v || w == 0.0 {
                continue;
            }
            coo.push_sym(u, v, w).map_err(GraphError::from)?;
        }
        Ok(Graph { adj: coo.to_csr() })
    }

    /// Builds a graph on `n` nodes from unweighted undirected edges
    /// (weight 1 each).
    ///
    /// # Errors
    /// See [`Graph::from_edges`].
    pub fn from_unweighted_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self> {
        let weighted: Vec<(usize, usize, f64)> = edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        Self::from_edges(n, &weighted)
    }

    /// Wraps an existing adjacency matrix.
    ///
    /// # Errors
    /// [`GraphError::InvalidAdjacency`] unless the matrix is square,
    /// symmetric, nonnegative, with zero diagonal.
    pub fn from_adjacency(adj: CsrMatrix) -> Result<Self> {
        if adj.nrows() != adj.ncols() {
            return Err(GraphError::InvalidAdjacency(format!(
                "{}x{} not square",
                adj.nrows(),
                adj.ncols()
            )));
        }
        if adj.values().iter().any(|&v| !v.is_finite() || v < 0.0) {
            return Err(GraphError::InvalidAdjacency(
                "negative or non-finite weight".into(),
            ));
        }
        if adj.diag().iter().any(|&d| d != 0.0) {
            return Err(GraphError::InvalidAdjacency("self-loop present".into()));
        }
        if !adj.is_symmetric(1e-12) {
            return Err(GraphError::InvalidAdjacency("not symmetric".into()));
        }
        Ok(Graph { adj })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.nrows()
    }

    /// Number of undirected edges (stored entries / 2).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.nnz() / 2
    }

    /// The adjacency matrix.
    #[inline]
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adj
    }

    /// Generalized degrees `δ(v)` — total weight of incident edges
    /// (Definition 1 of the paper).
    pub fn degrees(&self) -> Vec<f64> {
        self.adj.row_sums()
    }

    /// Total volume `Vol(V) = Σ δ(v)`.
    pub fn total_volume(&self) -> f64 {
        self.adj.values().iter().sum()
    }

    /// Neighbours of `v` with weights.
    pub fn neighbors(&self, v: usize) -> (&[usize], &[f64]) {
        (self.adj.row_cols(v), self.adj.row_vals(v))
    }

    /// The normalized Laplacian `L(G) = Iₙ − D^{-1/2} A D^{-1/2}`.
    ///
    /// Isolated nodes (degree 0) keep a diagonal entry of 1 (the `Iₙ`
    /// term with a zero normalized-adjacency row), matching the standard
    /// convention in Chung's Spectral Graph Theory.
    pub fn normalized_laplacian(&self) -> CsrMatrix {
        let p = self.adj.sym_normalized();
        let i = CsrMatrix::identity(self.n());
        CsrMatrix::linear_combination(&[&i, &p], &[1.0, -1.0])
            .expect("identity and adjacency share shape")
    }

    /// The symmetrically normalized adjacency `D^{-1/2} A D^{-1/2}`.
    pub fn normalized_adjacency(&self) -> CsrMatrix {
        self.adj.sym_normalized()
    }

    /// Returns a graph on `n + added` nodes carrying every existing
    /// edge plus `new_edges` (undirected, symmetrized; weights of
    /// parallel edges are summed, exactly like [`Graph::from_edges`]).
    /// New nodes with no incident `new_edges` stay isolated. This is
    /// the append primitive behind
    /// [`Mvag::apply_delta`](crate::Mvag::apply_delta).
    ///
    /// # Errors
    /// [`GraphError::InvalidArgument`] for endpoints outside
    /// `0..n + added` or non-finite/negative weights.
    pub fn append_nodes(&self, added: usize, new_edges: &[(usize, usize, f64)]) -> Result<Self> {
        let n_new = self.n() + added;
        let mut coo = CooMatrix::with_capacity(n_new, n_new, self.adj.nnz() + new_edges.len() * 2);
        // Existing entries are already symmetric with zero diagonal;
        // copy them verbatim.
        for (r, c, v) in self.adj.iter() {
            coo.push(r, c, v).expect("existing entries are in range");
        }
        for &(u, v, w) in new_edges {
            if u >= n_new || v >= n_new {
                return Err(GraphError::InvalidArgument(format!(
                    "appended edge ({u}, {v}) out of range for n = {n_new}"
                )));
            }
            if !w.is_finite() || w < 0.0 {
                return Err(GraphError::InvalidArgument(format!(
                    "appended edge ({u}, {v}) has invalid weight {w}"
                )));
            }
            if u == v || w == 0.0 {
                continue;
            }
            coo.push_sym(u, v, w).map_err(GraphError::from)?;
        }
        Ok(Graph { adj: coo.to_csr() })
    }

    /// Returns a graph on the same `n` nodes with every edge incident
    /// to a node in `removed` dropped — the *detach* primitive behind
    /// tombstone deletions: the node id stays valid (ids are stable
    /// until compaction) but the node no longer participates in any
    /// view's structure.
    ///
    /// # Errors
    /// [`GraphError::InvalidArgument`] for removed ids out of range.
    pub fn detach_nodes(&self, removed: &[usize]) -> Result<Self> {
        let n = self.n();
        let mut dead = vec![false; n];
        for &v in removed {
            if v >= n {
                return Err(GraphError::InvalidArgument(format!(
                    "detached node {v} out of range for n = {n}"
                )));
            }
            dead[v] = true;
        }
        let mut coo = CooMatrix::with_capacity(n, n, self.adj.nnz());
        for (r, c, v) in self.adj.iter() {
            if !dead[r] && !dead[c] {
                coo.push(r, c, v).expect("existing entries are in range");
            }
        }
        Ok(Graph { adj: coo.to_csr() })
    }

    /// Returns a graph with the weights of the given undirected edges
    /// *set* (not summed): weight `0` removes the edge, a nonzero
    /// weight overwrites an existing edge or inserts a new one. Later
    /// entries for the same pair win. This is the edge-edit primitive
    /// behind [`MvagDelta`](crate::MvagDelta) edits.
    ///
    /// # Errors
    /// [`GraphError::InvalidArgument`] for out-of-range endpoints,
    /// self-loops, or non-finite/negative weights.
    pub fn with_edge_weights(&self, edits: &[(usize, usize, f64)]) -> Result<Self> {
        let n = self.n();
        let mut overrides: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        for &(u, v, w) in edits {
            if u >= n || v >= n {
                return Err(GraphError::InvalidArgument(format!(
                    "edited edge ({u}, {v}) out of range for n = {n}"
                )));
            }
            if u == v {
                return Err(GraphError::InvalidArgument(format!(
                    "cannot edit self-loop ({u}, {u})"
                )));
            }
            if !w.is_finite() || w < 0.0 {
                return Err(GraphError::InvalidArgument(format!(
                    "edited edge ({u}, {v}) has invalid weight {w}"
                )));
            }
            overrides.insert((u.min(v), u.max(v)), w);
        }
        let mut coo = CooMatrix::with_capacity(n, n, self.adj.nnz() + overrides.len() * 2);
        // Existing edges: overridden pairs take the new weight (0
        // drops); everything else is copied verbatim.
        for (r, c, v) in self.adj.iter() {
            if r > c {
                continue; // each undirected edge handled once
            }
            let w = match overrides.remove(&(r, c)) {
                Some(w) => w,
                None => v,
            };
            if w != 0.0 {
                coo.push_sym(r, c, w).map_err(GraphError::from)?;
            }
        }
        // Remaining overrides are brand-new edges.
        for (&(u, v), &w) in &overrides {
            if w != 0.0 {
                coo.push_sym(u, v, w).map_err(GraphError::from)?;
            }
        }
        Ok(Graph { adj: coo.to_csr() })
    }

    /// Indices of isolated (degree-0) nodes.
    pub fn isolated_nodes(&self) -> Vec<usize> {
        self.degrees()
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| (d == 0.0).then_some(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_unweighted_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn from_edges_symmetrizes_and_dedups() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        assert_eq!(g.adjacency().get(0, 1), 3.0);
        assert_eq!(g.adjacency().get(1, 0), 3.0);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_dropped() {
        let g = Graph::from_edges(2, &[(0, 0, 5.0), (0, 1, 1.0)]).unwrap();
        assert_eq!(g.adjacency().get(0, 0), 0.0);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn invalid_edges_rejected() {
        assert!(Graph::from_edges(2, &[(0, 5, 1.0)]).is_err());
        assert!(Graph::from_edges(2, &[(0, 1, -1.0)]).is_err());
        assert!(Graph::from_edges(2, &[(0, 1, f64::NAN)]).is_err());
    }

    #[test]
    fn from_adjacency_validates() {
        let asym = {
            let mut c = CooMatrix::new(2, 2);
            c.push(0, 1, 1.0).unwrap();
            c.to_csr()
        };
        assert!(matches!(
            Graph::from_adjacency(asym),
            Err(GraphError::InvalidAdjacency(_))
        ));
        let with_loop = {
            let mut c = CooMatrix::new(2, 2);
            c.push(0, 0, 1.0).unwrap();
            c.to_csr()
        };
        assert!(Graph::from_adjacency(with_loop).is_err());
        let good = {
            let mut c = CooMatrix::new(2, 2);
            c.push_sym(0, 1, 2.0).unwrap();
            c.to_csr()
        };
        assert!(Graph::from_adjacency(good).is_ok());
    }

    #[test]
    fn degrees_and_volume() {
        let g = triangle();
        assert_eq!(g.degrees(), vec![2.0, 2.0, 2.0]);
        assert_eq!(g.total_volume(), 6.0);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn normalized_laplacian_triangle() {
        // Complete graph K3: L = I − A/2; eigenvalues 0, 3/2, 3/2.
        let l = triangle().normalized_laplacian();
        assert_eq!(l.get(0, 0), 1.0);
        assert!((l.get(0, 1) + 0.5).abs() < 1e-15);
        let eig = mvag_sparse::eigen::jacobi_eig(&l.to_dense()).unwrap();
        assert!(eig.values[0].abs() < 1e-12);
        assert!((eig.values[1] - 1.5).abs() < 1e-12);
        assert!((eig.values[2] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn laplacian_constant_vector_in_kernel() {
        // D^{1/2}·1 is in the kernel of L for connected graphs; for a
        // regular graph this is the constant vector.
        let g = triangle();
        let l = g.normalized_laplacian();
        let x = [1.0, 1.0, 1.0];
        let mut y = [0.0; 3];
        l.matvec(&x, &mut y);
        for v in y {
            assert!(v.abs() < 1e-14);
        }
    }

    #[test]
    fn isolated_node_handling() {
        let g = Graph::from_unweighted_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(g.isolated_nodes(), vec![2]);
        let l = g.normalized_laplacian();
        assert_eq!(l.get(2, 2), 1.0);
        assert_eq!(l.get(2, 0), 0.0);
    }

    #[test]
    fn neighbors_query() {
        let g = triangle();
        let (cols, vals) = g.neighbors(1);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[1.0, 1.0]);
    }

    #[test]
    fn append_nodes_extends_and_validates() {
        let g = triangle();
        // No delta: same adjacency, two extra isolated nodes.
        let bigger = g.append_nodes(2, &[]).unwrap();
        assert_eq!(bigger.n(), 5);
        assert_eq!(bigger.num_edges(), 3);
        assert_eq!(bigger.isolated_nodes(), vec![3, 4]);
        // Wiring a new node in: edges count, symmetry, weight sum with
        // an existing edge.
        let wired = g.append_nodes(1, &[(3, 0, 2.0), (0, 1, 0.5)]).unwrap();
        assert_eq!(wired.n(), 4);
        assert_eq!(wired.adjacency().get(3, 0), 2.0);
        assert_eq!(wired.adjacency().get(0, 3), 2.0);
        assert_eq!(wired.adjacency().get(0, 1), 1.5);
        // The appended graph passes the constructor invariants.
        Graph::from_adjacency(wired.adjacency().clone()).unwrap();
        // Bad edges rejected.
        assert!(g.append_nodes(1, &[(0, 4, 1.0)]).is_err());
        assert!(g.append_nodes(1, &[(0, 3, -1.0)]).is_err());
        assert!(g.append_nodes(1, &[(0, 3, f64::NAN)]).is_err());
    }

    #[test]
    fn detach_nodes_drops_incident_edges() {
        let g = triangle();
        let d = g.detach_nodes(&[1]).unwrap();
        assert_eq!(d.n(), 3);
        assert_eq!(d.num_edges(), 1); // only (0, 2) survives
        assert_eq!(d.adjacency().get(0, 1), 0.0);
        assert_eq!(d.adjacency().get(1, 2), 0.0);
        assert_eq!(d.adjacency().get(0, 2), 1.0);
        assert_eq!(d.isolated_nodes(), vec![1]);
        // Detached graphs keep the constructor invariants.
        Graph::from_adjacency(d.adjacency().clone()).unwrap();
        // Detaching nothing is the identity; out-of-range rejected.
        assert_eq!(g.detach_nodes(&[]).unwrap().adjacency(), g.adjacency());
        assert!(g.detach_nodes(&[3]).is_err());
    }

    #[test]
    fn with_edge_weights_sets_inserts_and_removes() {
        let g = triangle();
        // Overwrite (0,1), remove (1,2), leave (2,0).
        let e = g.with_edge_weights(&[(0, 1, 2.5), (2, 1, 0.0)]).unwrap();
        assert_eq!(e.adjacency().get(0, 1), 2.5);
        assert_eq!(e.adjacency().get(1, 0), 2.5);
        assert_eq!(e.adjacency().get(1, 2), 0.0);
        assert_eq!(e.adjacency().get(0, 2), 1.0);
        assert_eq!(e.num_edges(), 2);
        Graph::from_adjacency(e.adjacency().clone()).unwrap();
        // Insert a brand-new edge into a sparse graph.
        let sparse = Graph::from_unweighted_edges(4, &[(0, 1)]).unwrap();
        let grown = sparse.with_edge_weights(&[(2, 3, 4.0)]).unwrap();
        assert_eq!(grown.adjacency().get(2, 3), 4.0);
        assert_eq!(grown.num_edges(), 2);
        // Later edits for the same pair win (either endpoint order).
        let last = g.with_edge_weights(&[(0, 1, 9.0), (1, 0, 3.0)]).unwrap();
        assert_eq!(last.adjacency().get(0, 1), 3.0);
        // Bad edits rejected.
        assert!(g.with_edge_weights(&[(0, 5, 1.0)]).is_err());
        assert!(g.with_edge_weights(&[(1, 1, 1.0)]).is_err());
        assert!(g.with_edge_weights(&[(0, 1, -1.0)]).is_err());
        assert!(g.with_edge_weights(&[(0, 1, f64::NAN)]).is_err());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_unweighted_edges(4, &[]).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.isolated_nodes().len(), 4);
        let l = g.normalized_laplacian();
        for i in 0..4 {
            assert_eq!(l.get(i, i), 1.0);
        }
    }
}

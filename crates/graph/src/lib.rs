//! Graph substrate for the SGLA reproduction.
//!
//! Provides everything the paper's Section III assumes as given:
//!
//! * [`Graph`] — undirected weighted simple graphs in CSR adjacency form
//!   with degree and normalized-Laplacian computation
//!   (`L(G) = I − D^{-1/2} A D^{-1/2}`);
//! * [`knn`] — K-nearest-neighbour graph construction from attribute views
//!   by cosine similarity, with similarity-weighted edges (the paper's
//!   `G_K(Xⱼ)` construction);
//! * [`metrics`] — volume, cut, normalized cut (Definition 1), conductance
//!   (Eq. 3), sweep cuts, and connected components — the combinatorial
//!   quantities that the eigengap and connectivity objectives bound via
//!   spectral theory;
//! * [`generators`] — stochastic block models (plain and degree-corrected),
//!   Gaussian and binary attribute generators, and view-noise injectors
//!   used to simulate the paper's datasets;
//! * [`mvag`] — the multi-view attributed graph container
//!   `G = {V, E₁, …, E_p, X_{p+1}, …, X_r}`;
//! * [`toy`] — the paper's Figure 2 running example and small fixtures.

#![forbid(unsafe_code)]
// Indexed loops over matched row/column structures are the clearest idiom
// for the numerical kernels in this crate: the index relationships *are*
// the algorithm. The iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::field_reassign_with_default)]
#![warn(missing_docs)]

pub mod error;
pub mod generators;
pub mod graph;
pub mod knn;
pub mod metrics;
pub mod mvag;
pub mod toy;

pub use error::GraphError;
pub use graph::Graph;
pub use mvag::{DeltaEdit, Mvag, MvagDelta, View, ViewDelta};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;

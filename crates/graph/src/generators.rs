//! Synthetic generators for multi-view attributed graphs.
//!
//! The paper's eight datasets are real-world MVAGs that are not
//! redistributable here; per the reproduction's substitution policy
//! (DESIGN.md §3) we generate synthetic views that match each dataset's
//! *shape*: node count, per-view edge density, attribute dimensionality and
//! kind, cluster count — plus per-view **informativeness imbalance**, the
//! property SGLA's weighting actually exploits (cf. the paper's Figure 2,
//! where each single view reveals only part of the cluster structure).
//!
//! * [`sbm`] — (degree-corrected) stochastic block model graph views with
//!   an `informative_fraction` knob that scrambles the community signal for
//!   a random subset of nodes, making a view partially informative;
//! * [`gaussian_attributes`] / [`binary_attributes`] — numerical and
//!   categorical attribute views (Figure 1's `X₄` and `X₃` kinds);
//! * label helpers for planted partitions.
//!
//! Edge sampling uses geometric skipping (`O(expected edges)`), so
//! million-edge views are generated in milliseconds rather than `O(n²)`.

use crate::{DeltaEdit, Graph, GraphError, Mvag, MvagDelta, Result, View, ViewDelta};
use mvag_sparse::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for a stochastic-block-model graph view.
#[derive(Debug, Clone)]
pub struct SbmConfig {
    /// Within-community edge probability.
    pub p_in: f64,
    /// Cross-community edge probability.
    pub p_out: f64,
    /// Fraction of nodes whose community membership this view "sees";
    /// the remaining nodes get view-local random communities (partially
    /// informative views, the situation in the paper's Fig. 2). `1.0`
    /// makes a fully informative view.
    pub informative_fraction: f64,
    /// Degree-correction spread: node propensities θ are sampled from a
    /// truncated Pareto in `[1/spread, spread]` and normalized to mean 1.
    /// `1.0` disables degree correction (plain SBM).
    pub degree_spread: f64,
}

impl Default for SbmConfig {
    fn default() -> Self {
        SbmConfig {
            p_in: 0.1,
            p_out: 0.01,
            informative_fraction: 1.0,
            degree_spread: 1.0,
        }
    }
}

/// Generates an SBM graph view for the given planted labels.
///
/// # Errors
/// [`GraphError::InvalidArgument`] for empty labels, probabilities outside
/// `[0, 1]`, or invalid fractions/spreads.
pub fn sbm(labels: &[usize], cfg: &SbmConfig, seed: u64) -> Result<Graph> {
    let n = labels.len();
    if n == 0 {
        return Err(GraphError::InvalidArgument("sbm with 0 nodes".into()));
    }
    for &p in &[cfg.p_in, cfg.p_out] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidArgument(format!(
                "sbm probability {p} outside [0, 1]"
            )));
        }
    }
    if !(0.0..=1.0).contains(&cfg.informative_fraction) {
        return Err(GraphError::InvalidArgument(
            "informative_fraction outside [0, 1]".into(),
        ));
    }
    if cfg.degree_spread < 1.0 {
        return Err(GraphError::InvalidArgument(
            "degree_spread must be >= 1".into(),
        ));
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut rng = StdRng::seed_from_u64(seed);

    // View-local labels: scramble the uninformative share.
    let mut view_labels = labels.to_vec();
    if cfg.informative_fraction < 1.0 && k > 0 {
        for vl in view_labels.iter_mut() {
            if rng.gen::<f64>() > cfg.informative_fraction {
                *vl = rng.gen_range(0..k);
            }
        }
    }

    // Degree propensities.
    let thetas: Vec<f64> = if cfg.degree_spread > 1.0 {
        let lo = 1.0 / cfg.degree_spread;
        let hi = cfg.degree_spread;
        let alpha = 2.5; // Pareto tail exponent
        let mut t: Vec<f64> = (0..n)
            .map(|_| {
                // Inverse-CDF truncated Pareto on [lo, hi].
                let u: f64 = rng.gen();
                let a = lo.powf(-alpha + 1.0);
                let b = hi.powf(-alpha + 1.0);
                (a + u * (b - a)).powf(1.0 / (-alpha + 1.0))
            })
            .collect();
        let mean: f64 = t.iter().sum::<f64>() / n as f64;
        for x in t.iter_mut() {
            *x /= mean;
        }
        t
    } else {
        vec![1.0; n]
    };
    let theta_max = thetas.iter().fold(1.0f64, |m, &t| m.max(t));

    // Group nodes by view-local community.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k.max(1)];
    for (u, &c) in view_labels.iter().enumerate() {
        groups[c].push(u);
    }

    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for a in 0..groups.len() {
        for b in a..groups.len() {
            let base = if a == b { cfg.p_in } else { cfg.p_out };
            if base <= 0.0 {
                continue;
            }
            let p_bound = (base * theta_max * theta_max).min(1.0);
            if a == b {
                let s = groups[a].len();
                let total = s * (s.saturating_sub(1)) / 2;
                sample_pairs(total, p_bound, &mut rng, |idx, rng| {
                    let (i, j) = tri_decode(idx, s);
                    let (u, v) = (groups[a][i], groups[a][j]);
                    let accept = base * thetas[u] * thetas[v] / p_bound;
                    if rng.gen::<f64>() < accept.min(1.0) {
                        edges.push((u, v, 1.0));
                    }
                });
            } else {
                let (sa, sb) = (groups[a].len(), groups[b].len());
                let total = sa * sb;
                sample_pairs(total, p_bound, &mut rng, |idx, rng| {
                    let (u, v) = (groups[a][idx / sb], groups[b][idx % sb]);
                    let accept = base * thetas[u] * thetas[v] / p_bound;
                    if rng.gen::<f64>() < accept.min(1.0) {
                        edges.push((u, v, 1.0));
                    }
                });
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Iterates the indices of a Bernoulli(`p`) subset of `0..total` using
/// geometric skipping — `O(p · total)` expected work.
fn sample_pairs<F: FnMut(usize, &mut StdRng)>(total: usize, p: f64, rng: &mut StdRng, mut f: F) {
    if total == 0 || p <= 0.0 {
        return;
    }
    if p >= 1.0 {
        for idx in 0..total {
            f(idx, rng);
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut idx: i64 = -1;
    loop {
        let u: f64 = rng.gen::<f64>().max(1e-300);
        let jump = (u.ln() / log_q).floor() as i64 + 1;
        idx += jump.max(1);
        if idx as usize >= total {
            break;
        }
        f(idx as usize, rng);
    }
}

/// Decodes a linear index into the `(i, j)` pair with `i < j < s`
/// (row-major upper triangle).
fn tri_decode(idx: usize, s: usize) -> (usize, usize) {
    debug_assert!(s >= 2);
    // Row i starts at offset c(i) = i*s - i*(i+1)/2 - i ... solve by float
    // estimate then correct.
    let idx_f = idx as f64;
    let s_f = s as f64;
    let disc = ((2.0 * s_f - 1.0) * (2.0 * s_f - 1.0) - 8.0 * idx_f).max(0.0);
    let mut i = ((2.0 * s_f - 1.0 - disc.sqrt()) / 2.0).floor().max(0.0) as usize;
    i = i.min(s - 2);
    // Row i of the strict upper triangle starts at i(s-1) − i(i−1)/2.
    let row_start = |i: usize| i * (s - 1) - i * (i.saturating_sub(1)) / 2;
    while i + 1 < s && row_start(i + 1) <= idx {
        i += 1;
    }
    while i > 0 && row_start(i) > idx {
        i -= 1;
    }
    let j = i + 1 + (idx - row_start(i));
    debug_assert!(j < s, "tri_decode({idx}, {s}) -> ({i}, {j})");
    (i, j)
}

/// Configuration for Gaussian (numerical) attribute views.
#[derive(Debug, Clone)]
pub struct GaussianAttrConfig {
    /// Attribute dimensionality.
    pub dim: usize,
    /// Cluster-centre scale relative to unit noise; larger = easier.
    pub separation: f64,
    /// Per-coordinate noise standard deviation.
    pub noise: f64,
    /// Fraction of nodes whose attributes reflect their community; the
    /// rest draw from a random cluster's centre.
    pub informative_fraction: f64,
}

impl Default for GaussianAttrConfig {
    fn default() -> Self {
        GaussianAttrConfig {
            dim: 32,
            separation: 1.0,
            noise: 1.0,
            informative_fraction: 1.0,
        }
    }
}

/// Generates a numerical attribute view: cluster centres are isotropic
/// Gaussians, points are centre + noise (the `X₄` kind in Fig. 1).
///
/// # Errors
/// [`GraphError::InvalidArgument`] for empty input or zero dimensions.
pub fn gaussian_attributes(
    labels: &[usize],
    cfg: &GaussianAttrConfig,
    seed: u64,
) -> Result<DenseMatrix> {
    let n = labels.len();
    if n == 0 || cfg.dim == 0 {
        return Err(GraphError::InvalidArgument(
            "gaussian attributes need n >= 1 and dim >= 1".into(),
        ));
    }
    let k = labels.iter().copied().max().map_or(1, |m| m + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f64>> = (0..k)
        .map(|_| {
            (0..cfg.dim)
                .map(|_| normal(&mut rng) * cfg.separation)
                .collect()
        })
        .collect();
    let mut x = DenseMatrix::zeros(n, cfg.dim);
    for (i, &label) in labels.iter().enumerate() {
        let eff = if rng.gen::<f64>() < cfg.informative_fraction {
            label
        } else {
            rng.gen_range(0..k)
        };
        let c = &centers[eff];
        let row = x.row_mut(i);
        for (d, slot) in row.iter_mut().enumerate() {
            *slot = c[d] + normal(&mut rng) * cfg.noise;
        }
    }
    Ok(x)
}

/// Configuration for binary (categorical) attribute views.
#[derive(Debug, Clone)]
pub struct BinaryAttrConfig {
    /// Attribute dimensionality.
    pub dim: usize,
    /// Fraction of dimensions that are characteristic for each cluster.
    pub active_fraction: f64,
    /// Probability of a characteristic dimension being on.
    pub p_on: f64,
    /// Probability of a non-characteristic dimension being on (noise).
    pub p_noise: f64,
    /// Fraction of nodes whose attributes reflect their community.
    pub informative_fraction: f64,
}

impl Default for BinaryAttrConfig {
    fn default() -> Self {
        BinaryAttrConfig {
            dim: 64,
            active_fraction: 0.2,
            p_on: 0.6,
            p_noise: 0.05,
            informative_fraction: 1.0,
        }
    }
}

/// Generates a binary attribute view: each cluster activates a random
/// subset of dimensions (the `X₃` kind in Fig. 1).
///
/// # Errors
/// [`GraphError::InvalidArgument`] for empty input, zero dimensions, or
/// probabilities outside `[0, 1]`.
pub fn binary_attributes(
    labels: &[usize],
    cfg: &BinaryAttrConfig,
    seed: u64,
) -> Result<DenseMatrix> {
    let n = labels.len();
    if n == 0 || cfg.dim == 0 {
        return Err(GraphError::InvalidArgument(
            "binary attributes need n >= 1 and dim >= 1".into(),
        ));
    }
    for &p in &[
        cfg.active_fraction,
        cfg.p_on,
        cfg.p_noise,
        cfg.informative_fraction,
    ] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidArgument(format!(
                "probability {p} outside [0, 1]"
            )));
        }
    }
    let k = labels.iter().copied().max().map_or(1, |m| m + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let profiles: Vec<Vec<bool>> = (0..k)
        .map(|_| {
            (0..cfg.dim)
                .map(|_| rng.gen::<f64>() < cfg.active_fraction)
                .collect()
        })
        .collect();
    let mut x = DenseMatrix::zeros(n, cfg.dim);
    for (i, &label) in labels.iter().enumerate() {
        let eff = if rng.gen::<f64>() < cfg.informative_fraction {
            label
        } else {
            rng.gen_range(0..k)
        };
        let profile = &profiles[eff];
        let row = x.row_mut(i);
        for (d, slot) in row.iter_mut().enumerate() {
            let p = if profile[d] { cfg.p_on } else { cfg.p_noise };
            *slot = if rng.gen::<f64>() < p { 1.0 } else { 0.0 };
        }
    }
    Ok(x)
}

/// Balanced planted labels: `n` nodes in `k` nearly equal clusters
/// (contiguous blocks, sizes differing by at most 1).
///
/// # Errors
/// [`GraphError::InvalidArgument`] if `k == 0` or `k > n`.
pub fn balanced_labels(n: usize, k: usize) -> Result<Vec<usize>> {
    if k == 0 || k > n {
        return Err(GraphError::InvalidArgument(format!(
            "balanced_labels needs 1 <= k <= n, got k = {k}, n = {n}"
        )));
    }
    Ok((0..n).map(|i| i * k / n).collect())
}

/// Random labels with at least one node per cluster (retries until every
/// cluster is hit — k ≤ n required).
///
/// # Errors
/// [`GraphError::InvalidArgument`] if `k == 0` or `k > n`.
pub fn random_labels(n: usize, k: usize, seed: u64) -> Result<Vec<usize>> {
    if k == 0 || k > n {
        return Err(GraphError::InvalidArgument(format!(
            "random_labels needs 1 <= k <= n, got k = {k}, n = {n}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
        let mut seen = vec![false; k];
        for &l in &labels {
            seen[l] = true;
        }
        if seen.iter().all(|&s| s) {
            return Ok(labels);
        }
    }
}

/// Configuration for [`random_append_delta`].
#[derive(Debug, Clone)]
pub struct AppendConfig {
    /// Nodes to append.
    pub added_nodes: usize,
    /// Expected edges wired per appended node, per graph view.
    pub edges_per_node: usize,
    /// Probability that a wired edge stays within the appended node's
    /// own (planted) cluster — mirrors the informativeness knob of the
    /// SBM generators so appends preserve the community structure the
    /// base views encode.
    pub within_cluster: f64,
    /// Relative Gaussian noise added to bootstrapped attribute rows.
    pub attr_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AppendConfig {
    fn default() -> Self {
        AppendConfig {
            added_nodes: 1,
            edges_per_node: 8,
            within_cluster: 0.85,
            attr_noise: 0.1,
            seed: 97,
        }
    }
}

/// Generates a structure-preserving random append delta for `mvag`:
/// appended nodes draw planted labels round-robin, graph views wire
/// each appended node to mostly same-cluster targets, and attribute
/// views bootstrap each appended row from a random same-cluster
/// existing row plus scaled Gaussian noise. The result is the
/// synthetic stand-in for "new users arriving" that the incremental
/// artifact-update path ([`MvagDelta`]) consumes.
///
/// # Errors
/// [`GraphError::InvalidArgument`] for invalid configuration.
pub fn random_append_delta(mvag: &Mvag, cfg: &AppendConfig) -> Result<MvagDelta> {
    if !(0.0..=1.0).contains(&cfg.within_cluster) {
        return Err(GraphError::InvalidArgument(format!(
            "within_cluster {} outside [0, 1]",
            cfg.within_cluster
        )));
    }
    if !cfg.attr_noise.is_finite() || cfg.attr_noise < 0.0 {
        return Err(GraphError::InvalidArgument(format!(
            "attr_noise {} must be finite and nonnegative",
            cfg.attr_noise
        )));
    }
    let n = mvag.n();
    let k = mvag.k();
    let added = cfg.added_nodes;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Planted labels for the new nodes: round-robin keeps clusters
    // balanced; without ground truth everyone shares cluster 0 for the
    // wiring heuristics (labels are then omitted from the delta).
    let new_labels: Vec<usize> = (0..added).map(|i| i % k).collect();
    let base_labels: Vec<usize> = match mvag.labels() {
        Some(l) => l.to_vec(),
        None => vec![0; n],
    };
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &l) in base_labels.iter().enumerate() {
        members[l.min(k - 1)].push(i);
    }
    let label_of = |node: usize| -> usize {
        if node < n {
            base_labels[node].min(k - 1)
        } else {
            new_labels[node - n]
        }
    };
    let mut views = Vec::with_capacity(mvag.r());
    for view in mvag.views() {
        match view {
            View::Graph(_) => {
                let mut edges = Vec::with_capacity(added * cfg.edges_per_node);
                for new in 0..added {
                    let u = n + new;
                    let lu = label_of(u);
                    for _ in 0..cfg.edges_per_node {
                        let same = rng.gen::<f64>() < cfg.within_cluster;
                        // Targets span old and previously appended
                        // nodes, so the appended block is internally
                        // connected too.
                        let v = if same && !members[lu].is_empty() {
                            let pool = &members[lu];
                            let extra = new_labels[..new].iter().filter(|&&l| l == lu).count();
                            let pick = rng.gen_range(0..pool.len() + extra);
                            if pick < pool.len() {
                                pool[pick]
                            } else {
                                // The (pick - pool.len())-th earlier
                                // appended node with the same label.
                                let mut left = pick - pool.len();
                                let mut found = 0;
                                for (j, &l) in new_labels[..new].iter().enumerate() {
                                    if l == lu {
                                        if left == 0 {
                                            found = n + j;
                                            break;
                                        }
                                        left -= 1;
                                    }
                                }
                                found
                            }
                        } else {
                            rng.gen_range(0..u)
                        };
                        if v != u {
                            edges.push((u, v, 1.0));
                        }
                    }
                }
                views.push(ViewDelta::Edges(edges));
            }
            View::Attributes(x) => {
                let d = x.ncols();
                let mut rows = DenseMatrix::zeros(added, d);
                for new in 0..added {
                    let lu = new_labels[new];
                    let src = if members[lu].is_empty() {
                        rng.gen_range(0..n)
                    } else {
                        members[lu][rng.gen_range(0..members[lu].len())]
                    };
                    let base_row = x.row(src).to_vec();
                    let scale: f64 = {
                        let norm: f64 = base_row.iter().map(|v| v * v).sum::<f64>().sqrt();
                        cfg.attr_noise * (norm / (d as f64).sqrt()).max(1e-3)
                    };
                    let dst = rows.row_mut(new);
                    for (slot, &b) in dst.iter_mut().zip(&base_row) {
                        *slot = b + normal(&mut rng) * scale;
                    }
                }
                views.push(ViewDelta::Rows(rows));
            }
        }
    }
    Ok(MvagDelta::append(
        added,
        views,
        mvag.labels().map(|_| new_labels),
    ))
}

/// Configuration for [`random_crud_delta`].
#[derive(Debug, Clone)]
pub struct CrudConfig {
    /// The append half of the delta.
    pub append: AppendConfig,
    /// Existing nodes to tombstone (chosen uniformly, never colliding
    /// with edits or appended edges).
    pub removed_nodes: usize,
    /// Undirected edge-weight edits per graph view (weight set to a
    /// fresh positive value, or 0 — an edge deletion — with
    /// probability 1/4).
    pub edge_edits: usize,
    /// Attribute-row overwrites per attribute view (bootstrapped the
    /// same way appended rows are).
    pub row_edits: usize,
}

impl Default for CrudConfig {
    fn default() -> Self {
        CrudConfig {
            append: AppendConfig::default(),
            removed_nodes: 1,
            edge_edits: 2,
            row_edits: 1,
        }
    }
}

/// Generates a full-CRUD random delta for `mvag`: the structure-
/// preserving append of [`random_append_delta`], plus random
/// tombstone removals and random edge/attribute-row edits of
/// surviving existing nodes. The synthetic stand-in for "users
/// arriving, changing, and leaving" that the tombstone-aware update
/// and compaction paths consume.
///
/// # Errors
/// [`GraphError::InvalidArgument`] for invalid configuration (more
/// removals than existing nodes, or an invalid append half).
pub fn random_crud_delta(mvag: &Mvag, cfg: &CrudConfig) -> Result<MvagDelta> {
    let n = mvag.n();
    if cfg.removed_nodes >= n {
        return Err(GraphError::InvalidArgument(format!(
            "cannot remove {} of {n} existing nodes",
            cfg.removed_nodes
        )));
    }
    let mut delta = random_append_delta(mvag, &cfg.append)?;
    let mut rng = StdRng::seed_from_u64(cfg.append.seed ^ 0x6372_7564); // "crud"
                                                                        // Pick the tombstones first; edits and appended edges must avoid
                                                                        // them (apply_delta rejects the overlap).
    let mut removed: Vec<usize> = Vec::with_capacity(cfg.removed_nodes);
    while removed.len() < cfg.removed_nodes {
        let v = rng.gen_range(0..n);
        if !removed.contains(&v) {
            removed.push(v);
        }
    }
    removed.sort_unstable();
    let dead = |v: usize| removed.binary_search(&v).is_ok();
    for vd in &mut delta.views {
        if let ViewDelta::Edges(edges) = vd {
            edges.retain(|&(u, v, _)| !dead(u) && !dead(v));
        }
    }
    let live: Vec<usize> = (0..n).filter(|&v| !dead(v)).collect();
    // Live always has >= 1 entry (removed_nodes < n); edits need pairs.
    let mut edits = Vec::new();
    for (vi, view) in mvag.views().iter().enumerate() {
        match view {
            View::Graph(_) => {
                if live.len() < 2 {
                    continue;
                }
                for _ in 0..cfg.edge_edits {
                    let u = live[rng.gen_range(0..live.len())];
                    let mut v = live[rng.gen_range(0..live.len())];
                    while v == u {
                        v = live[rng.gen_range(0..live.len())];
                    }
                    let w = if rng.gen::<f64>() < 0.25 {
                        0.0
                    } else {
                        0.5 + rng.gen::<f64>()
                    };
                    edits.push(DeltaEdit::EdgeWeight { view: vi, u, v, w });
                }
            }
            View::Attributes(x) => {
                let d = x.ncols();
                for _ in 0..cfg.row_edits {
                    let node = live[rng.gen_range(0..live.len())];
                    let src = live[rng.gen_range(0..live.len())];
                    let base_row = x.row(src).to_vec();
                    let scale: f64 = {
                        let norm: f64 = base_row.iter().map(|v| v * v).sum::<f64>().sqrt();
                        cfg.append.attr_noise * (norm / (d as f64).sqrt()).max(1e-3)
                    };
                    let row: Vec<f64> = base_row
                        .iter()
                        .map(|&b| b + normal(&mut rng) * scale)
                        .collect();
                    edits.push(DeltaEdit::AttrRow {
                        view: vi,
                        node,
                        row,
                    });
                }
            }
        }
    }
    delta.removed_nodes = removed;
    delta.edits = edits;
    Ok(delta)
}

/// Standard normal sample (Box–Muller, one value per call).
pub(crate) fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::num_components;

    #[test]
    fn tri_decode_exhaustive() {
        for s in 2..12usize {
            let mut idx = 0usize;
            for i in 0..s {
                for j in (i + 1)..s {
                    assert_eq!(tri_decode(idx, s), (i, j), "idx = {idx}, s = {s}");
                    idx += 1;
                }
            }
            assert_eq!(idx, s * (s - 1) / 2);
        }
    }

    #[test]
    fn sample_pairs_density() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut count = 0usize;
        let total = 200_000;
        let p = 0.05;
        sample_pairs(total, p, &mut rng, |_, _| count += 1);
        let expect = total as f64 * p;
        assert!(
            (count as f64 - expect).abs() < 5.0 * expect.sqrt(),
            "count {count} vs expected {expect}"
        );
    }

    #[test]
    fn sample_pairs_edge_cases() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = Vec::new();
        sample_pairs(10, 1.0, &mut rng, |i, _| hits.push(i));
        assert_eq!(hits, (0..10).collect::<Vec<_>>());
        hits.clear();
        sample_pairs(10, 0.0, &mut rng, |i, _| hits.push(i));
        assert!(hits.is_empty());
        sample_pairs(0, 0.5, &mut rng, |i, _| hits.push(i));
        assert!(hits.is_empty());
    }

    #[test]
    fn sbm_respects_block_structure() {
        let labels = balanced_labels(400, 2).unwrap();
        let cfg = SbmConfig {
            p_in: 0.1,
            p_out: 0.005,
            ..Default::default()
        };
        let g = sbm(&labels, &cfg, 42).unwrap();
        let mut within = 0usize;
        let mut across = 0usize;
        for u in 0..g.n() {
            for &v in g.neighbors(u).0 {
                if v > u {
                    if labels[u] == labels[v] {
                        within += 1;
                    } else {
                        across += 1;
                    }
                }
            }
        }
        // Expected within ≈ 2·C(200,2)·0.1 ≈ 3980; across ≈ 200·200·0.005 = 200.
        assert!(within > 3_000, "within = {within}");
        assert!(across < 600, "across = {across}");
        assert!(within > 4 * across);
    }

    #[test]
    fn sbm_uninformative_view_mixes_clusters() {
        let labels = balanced_labels(300, 2).unwrap();
        let cfg = SbmConfig {
            p_in: 0.2,
            p_out: 0.0,
            informative_fraction: 0.0,
            ..Default::default()
        };
        let g = sbm(&labels, &cfg, 7).unwrap();
        let mut across = 0usize;
        let mut within = 0usize;
        for u in 0..g.n() {
            for &v in g.neighbors(u).0 {
                if v > u {
                    if labels[u] == labels[v] {
                        within += 1;
                    } else {
                        across += 1;
                    }
                }
            }
        }
        // With fully scrambled labels, within ≈ across.
        assert!(across > 0);
        let ratio = within as f64 / across.max(1) as f64;
        assert!(ratio < 2.0 && ratio > 0.5, "ratio = {ratio}");
    }

    #[test]
    fn sbm_degree_correction_spreads_degrees() {
        let labels = balanced_labels(600, 2).unwrap();
        let flat = sbm(
            &labels,
            &SbmConfig {
                p_in: 0.08,
                p_out: 0.01,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        let heavy = sbm(
            &labels,
            &SbmConfig {
                p_in: 0.08,
                p_out: 0.01,
                degree_spread: 4.0,
                ..Default::default()
            },
            3,
        )
        .unwrap();
        let cv = |g: &Graph| {
            let d = g.degrees();
            let mean = d.iter().sum::<f64>() / d.len() as f64;
            let var = d.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / d.len() as f64;
            var.sqrt() / mean
        };
        assert!(
            cv(&heavy) > 1.5 * cv(&flat),
            "cv flat {} vs heavy {}",
            cv(&flat),
            cv(&heavy)
        );
    }

    #[test]
    fn sbm_invalid_args() {
        let labels = balanced_labels(10, 2).unwrap();
        assert!(sbm(&[], &SbmConfig::default(), 0).is_err());
        assert!(sbm(
            &labels,
            &SbmConfig {
                p_in: 1.5,
                ..Default::default()
            },
            0
        )
        .is_err());
        assert!(sbm(
            &labels,
            &SbmConfig {
                degree_spread: 0.5,
                ..Default::default()
            },
            0
        )
        .is_err());
    }

    #[test]
    fn gaussian_attributes_separate_clusters() {
        let labels = balanced_labels(100, 2).unwrap();
        let cfg = GaussianAttrConfig {
            dim: 16,
            separation: 4.0,
            noise: 0.5,
            informative_fraction: 1.0,
        };
        let x = gaussian_attributes(&labels, &cfg, 9).unwrap();
        // Mean within-cluster distance should be well below cross-cluster.
        let d2 = |a: usize, b: usize| mvag_sparse::vecops::dist2(x.row(a), x.row(b));
        let within = d2(0, 1) + d2(50, 51);
        let across = d2(0, 50) + d2(1, 51);
        assert!(across > 2.0 * within, "within {within}, across {across}");
    }

    #[test]
    fn binary_attributes_valid_and_cluster_like() {
        let labels = balanced_labels(80, 2).unwrap();
        let x = binary_attributes(&labels, &BinaryAttrConfig::default(), 4).unwrap();
        assert!(x.data().iter().all(|&v| v == 0.0 || v == 1.0));
        // Cosine similarity within a cluster should exceed across.
        let cos = |a: usize, b: usize| mvag_sparse::vecops::cosine(x.row(a), x.row(b));
        let mut within = 0.0;
        let mut across = 0.0;
        let mut cw = 0;
        let mut ca = 0;
        for a in 0..20 {
            for b in (a + 1)..20 {
                within += cos(a, b);
                cw += 1;
            }
            for b in 40..60 {
                across += cos(a, b);
                ca += 1;
            }
        }
        assert!(within / cw as f64 > across / ca as f64 + 0.1);
    }

    #[test]
    fn labels_helpers() {
        let b = balanced_labels(10, 3).unwrap();
        assert_eq!(b.len(), 10);
        assert_eq!(b.iter().copied().max(), Some(2));
        assert!(balanced_labels(2, 3).is_err());
        assert!(balanced_labels(5, 0).is_err());
        let r = random_labels(20, 4, 11).unwrap();
        let mut seen = [false; 4];
        for &l in &r {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn generators_deterministic() {
        let labels = balanced_labels(120, 3).unwrap();
        let g1 = sbm(&labels, &SbmConfig::default(), 99).unwrap();
        let g2 = sbm(&labels, &SbmConfig::default(), 99).unwrap();
        assert_eq!(g1, g2);
        let x1 = gaussian_attributes(&labels, &GaussianAttrConfig::default(), 8).unwrap();
        let x2 = gaussian_attributes(&labels, &GaussianAttrConfig::default(), 8).unwrap();
        assert_eq!(x1, x2);
    }

    #[test]
    fn random_append_delta_is_valid_and_deterministic() {
        let mvag = crate::toy::toy_mvag(60, 3, 5);
        let cfg = AppendConfig {
            added_nodes: 6,
            ..Default::default()
        };
        let delta = random_append_delta(&mvag, &cfg).unwrap();
        assert_eq!(delta.added_nodes, 6);
        assert_eq!(delta.views.len(), mvag.r());
        assert_eq!(delta.added_labels.as_deref().unwrap().len(), 6);
        // The delta applies cleanly and preserves cluster count.
        let updated = mvag.apply_delta(&delta).unwrap();
        assert_eq!(updated.n(), 66);
        assert_eq!(updated.k(), 3);
        assert!(updated.total_edges() > mvag.total_edges());
        // Deterministic given the seed.
        assert_eq!(delta, random_append_delta(&mvag, &cfg).unwrap());
        // Bad config rejected.
        assert!(random_append_delta(
            &mvag,
            &AppendConfig {
                within_cluster: 1.5,
                ..cfg.clone()
            }
        )
        .is_err());
    }

    #[test]
    fn random_crud_delta_is_valid_and_deterministic() {
        let mvag = crate::toy::toy_mvag(60, 3, 5);
        let cfg = CrudConfig {
            append: AppendConfig {
                added_nodes: 4,
                ..Default::default()
            },
            removed_nodes: 3,
            edge_edits: 5,
            row_edits: 2,
        };
        let delta = random_crud_delta(&mvag, &cfg).unwrap();
        assert_eq!(delta.added_nodes, 4);
        assert_eq!(delta.removed_nodes.len(), 3);
        assert!(delta.removed_nodes.windows(2).all(|p| p[0] < p[1]));
        assert!(!delta.edits.is_empty());
        assert!(!delta.is_append_only());
        // Applies cleanly: removals detach, edits land, appends extend.
        let updated = mvag.apply_delta(&delta).unwrap();
        assert_eq!(updated.n(), 64);
        // Deterministic given the seed.
        assert_eq!(delta, random_crud_delta(&mvag, &cfg).unwrap());
        // Removing every node is rejected.
        assert!(random_crud_delta(
            &mvag,
            &CrudConfig {
                removed_nodes: 60,
                ..cfg.clone()
            }
        )
        .is_err());
    }

    #[test]
    fn dense_sbm_is_connected() {
        let labels = balanced_labels(200, 2).unwrap();
        let g = sbm(
            &labels,
            &SbmConfig {
                p_in: 0.3,
                p_out: 0.05,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        assert_eq!(num_components(&g), 1);
    }
}

//! Error types for the graph substrate.

use mvag_sparse::SparseError;
use std::fmt;

/// Errors raised by graph construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An underlying linear-algebra kernel failed.
    Sparse(SparseError),
    /// The adjacency matrix handed to
    /// [`Graph::from_adjacency`](crate::Graph::from_adjacency) was not
    /// symmetric / nonnegative / square.
    InvalidAdjacency(String),
    /// An argument was structurally invalid (zero nodes, k > n, label
    /// length mismatch, ...).
    InvalidArgument(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Sparse(e) => write!(f, "linear algebra error: {e}"),
            GraphError::InvalidAdjacency(msg) => write!(f, "invalid adjacency: {msg}"),
            GraphError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for GraphError {
    fn from(e: SparseError) -> Self {
        GraphError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = GraphError::from(SparseError::NumericalBreakdown("x"));
        assert!(e.to_string().contains("linear algebra"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(GraphError::InvalidArgument("n=0".into()).source().is_none());
    }
}

//! Small fixture MVAGs: the paper's running examples.

use crate::generators::{balanced_labels, gaussian_attributes, sbm, GaussianAttrConfig, SbmConfig};
use crate::{Graph, Mvag, View};
use mvag_sparse::DenseMatrix;

/// The running example of the paper's Figure 2: 8 nodes in two ground-truth
/// clusters `C₁ = {v₁..v₄}` and `C₂ = {v₅..v₈}`, observed through two graph
/// views. In each single view `C₁` is only sparsely connected (each view
/// sees *part* of its internal structure) while `C₂` is clearly clustered
/// in both; only the aggregation of both views reveals `C₁`.
///
/// Returns the MVAG with ground-truth labels `[0,0,0,0,1,1,1,1]`.
pub fn figure2_example() -> Mvag {
    let n = 8;
    // View 1 sees the "horizontal" half of C1's structure; the view is
    // connected as a whole (through cross edges into C2), but C1's induced
    // subgraph is fragmented.
    let g1 = Graph::from_unweighted_edges(
        n,
        &[
            (0, 1),
            (2, 3),
            // C2 is dense in both views.
            (4, 5),
            (5, 6),
            (6, 7),
            (4, 6),
            (5, 7),
            // Cross edges keeping the view connected.
            (1, 4),
            (3, 5),
        ],
    )
    .expect("static edges are valid");
    // View 2 sees the complementary "vertical" half of C1's structure.
    let g2 = Graph::from_unweighted_edges(
        n,
        &[
            (0, 2),
            (1, 3),
            (4, 5),
            (4, 7),
            (5, 6),
            (6, 7),
            (4, 6),
            (0, 6),
            (3, 7),
        ],
    )
    .expect("static edges are valid");
    Mvag::new(
        "figure2",
        vec![View::Graph(g1), View::Graph(g2)],
        Some(vec![0, 0, 0, 0, 1, 1, 1, 1]),
        2,
    )
    .expect("figure 2 example is a valid MVAG")
}

/// The paper's Figure 1 example shape: 8 entities with two graph views, a
/// binary attribute view, and a numerical attribute view.
pub fn figure1_example() -> Mvag {
    let base = figure2_example();
    let (g1, g2) = match (&base.views()[0], &base.views()[1]) {
        (View::Graph(a), View::Graph(b)) => (a.clone(), b.clone()),
        _ => unreachable!("figure2 has two graph views"),
    };
    // Binary categorical attributes (X₃): clusters differ in active columns.
    let x3 = DenseMatrix::from_rows(&[
        vec![1.0, 1.0, 0.0, 0.0],
        vec![1.0, 0.0, 0.0, 0.0],
        vec![1.0, 1.0, 0.0, 0.0],
        vec![0.0, 1.0, 0.0, 0.0],
        vec![0.0, 0.0, 1.0, 1.0],
        vec![0.0, 0.0, 1.0, 0.0],
        vec![0.0, 0.0, 1.0, 1.0],
        vec![0.0, 0.0, 0.0, 1.0],
    ])
    .expect("static rows are rectangular");
    // Numerical attributes (X₄): two blobs.
    let x4 = DenseMatrix::from_rows(&[
        vec![0.9, 0.1],
        vec![1.1, -0.1],
        vec![1.0, 0.2],
        vec![0.8, 0.0],
        vec![-0.1, 1.0],
        vec![0.1, 0.9],
        vec![0.0, 1.1],
        vec![-0.2, 1.0],
    ])
    .expect("static rows are rectangular");
    Mvag::new(
        "figure1",
        vec![
            View::Graph(g1),
            View::Graph(g2),
            View::Attributes(x3),
            View::Attributes(x4),
        ],
        Some(vec![0, 0, 0, 0, 1, 1, 1, 1]),
        2,
    )
    .expect("figure 1 example is a valid MVAG")
}

/// A small generated MVAG for examples and smoke tests: two SBM graph views
/// with complementary informativeness plus one Gaussian attribute view,
/// `k` balanced planted clusters.
pub fn toy_mvag(n: usize, k: usize, seed: u64) -> Mvag {
    let labels = balanced_labels(n, k).expect("toy sizes are valid");
    let g1 = sbm(
        &labels,
        &SbmConfig {
            p_in: 24.0 / n as f64,
            p_out: 2.0 / n as f64,
            informative_fraction: 0.8,
            ..Default::default()
        },
        seed,
    )
    .expect("toy SBM parameters are valid");
    let g2 = sbm(
        &labels,
        &SbmConfig {
            p_in: 18.0 / n as f64,
            p_out: 3.0 / n as f64,
            informative_fraction: 0.9,
            ..Default::default()
        },
        seed.wrapping_add(1),
    )
    .expect("toy SBM parameters are valid");
    let x = gaussian_attributes(
        &labels,
        &GaussianAttrConfig {
            dim: 16,
            separation: 2.0,
            noise: 1.0,
            informative_fraction: 0.9,
        },
        seed.wrapping_add(2),
    )
    .expect("toy attribute parameters are valid");
    Mvag::new(
        format!("toy-n{n}-k{k}"),
        vec![View::Graph(g1), View::Graph(g2), View::Attributes(x)],
        Some(labels),
        k,
    )
    .expect("toy MVAG is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::num_components;

    #[test]
    fn figure2_shape() {
        let m = figure2_example();
        assert_eq!(m.n(), 8);
        assert_eq!(m.r(), 2);
        assert_eq!(m.k(), 2);
        assert_eq!(m.labels().unwrap(), &[0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn figure2_single_views_fragment_c1() {
        // In each single view, C1 = {0,1,2,3} is NOT internally connected,
        // but the union of the two views connects it — the premise of the
        // aggregation argument.
        let m = figure2_example();
        let views: Vec<&Graph> = m
            .views()
            .iter()
            .map(|v| match v {
                View::Graph(g) => g,
                _ => unreachable!(),
            })
            .collect();
        for g in &views {
            // Induced subgraph on C1.
            let mut edges = Vec::new();
            for u in 0..4usize {
                for (&v, &w) in g.neighbors(u).0.iter().zip(g.neighbors(u).1) {
                    if v < 4 && v > u {
                        edges.push((u, v, w));
                    }
                }
            }
            let sub = Graph::from_edges(4, &edges).unwrap();
            assert!(num_components(&sub) > 1, "C1 should be fragmented per view");
        }
        // Union connects C1.
        let mut union_edges = Vec::new();
        for g in &views {
            for u in 0..4usize {
                for (&v, &w) in g.neighbors(u).0.iter().zip(g.neighbors(u).1) {
                    if v < 4 && v > u {
                        union_edges.push((u, v, w));
                    }
                }
            }
        }
        let union = Graph::from_edges(4, &union_edges).unwrap();
        assert_eq!(num_components(&union), 1);
    }

    #[test]
    fn figure1_shape() {
        let m = figure1_example();
        assert_eq!(m.r(), 4);
        assert_eq!(m.num_graph_views(), 2);
        assert_eq!(m.num_attr_views(), 2);
    }

    #[test]
    fn toy_mvag_valid() {
        let m = toy_mvag(90, 3, 5);
        assert_eq!(m.n(), 90);
        assert_eq!(m.r(), 3);
        assert_eq!(m.k(), 3);
        assert!(m.labels().is_some());
        assert!(m.total_edges() > 0);
    }
}

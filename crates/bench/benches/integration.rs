//! End-to-end Criterion benchmarks: the headline SGLA-vs-SGLA+ cost gap
//! (the paper's Section V-B argument) and the optimizer-choice ablation
//! (COBYLA-style trust region vs Nelder–Mead on the real objective).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvag_graph::toy::toy_mvag;
use mvag_optim::cobyla::{cobyla, CobylaParams, Constraint};
use mvag_optim::neldermead::{nelder_mead, NelderMeadParams};
use mvag_optim::simplex::{expand_weights, reduced_simplex_constraints};
use mvag_sparse::eigen::EigOptions;
use sgla_core::clustering::spectral_clustering;
use sgla_core::objective::{ObjectiveMode, SglaObjective};
use sgla_core::sgla::{Sgla, SglaParams};
use sgla_core::sgla_plus::SglaPlus;
use sgla_core::views::{KnnParams, ViewLaplacians};
use std::hint::black_box;

fn bench_sgla_vs_sgla_plus(c: &mut Criterion) {
    let mut group = c.benchmark_group("integration");
    group.sample_size(10);
    for &n in &[300usize, 1000] {
        let mvag = toy_mvag(n, 3, 7);
        let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("sgla", n), &n, |b, _| {
            b.iter(|| {
                let out = Sgla::new(SglaParams::default())
                    .integrate(black_box(&views), 3)
                    .unwrap();
                black_box(out.weights);
            })
        });
        group.bench_with_input(BenchmarkId::new("sgla_plus", n), &n, |b, _| {
            b.iter(|| {
                let out = SglaPlus::new(SglaParams::default())
                    .integrate(black_box(&views), 3)
                    .unwrap();
                black_box(out.weights);
            })
        });
    }
    group.finish();
}

fn bench_optimizer_ablation(c: &mut Criterion) {
    // Both optimizers get the *real* spectrum-guided objective with the
    // same evaluation budget; the trust-region method should reach a
    // comparable optimum in fewer evaluations (the design rationale for
    // choosing Cobyla in Algorithm 1).
    let mvag = toy_mvag(400, 2, 13);
    let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
    let mut group = c.benchmark_group("optimizer_ablation");
    group.sample_size(10);
    group.bench_function("cobyla_on_h", |b| {
        b.iter(|| {
            let obj =
                SglaObjective::new(&views, 2, 0.5, ObjectiveMode::Full, EigOptions::default())
                    .unwrap();
            let cons: Vec<Constraint> = reduced_simplex_constraints(2);
            let res = cobyla(
                |v| {
                    obj.evaluate(&expand_weights(v))
                        .map(|o| o.h)
                        .unwrap_or(f64::INFINITY)
                },
                &cons,
                &[1.0 / 3.0, 1.0 / 3.0],
                &CobylaParams {
                    max_evals: 30,
                    ..Default::default()
                },
            )
            .unwrap();
            black_box(res.fx);
        })
    });
    group.bench_function("nelder_mead_on_h", |b| {
        b.iter(|| {
            let obj =
                SglaObjective::new(&views, 2, 0.5, ObjectiveMode::Full, EigOptions::default())
                    .unwrap();
            let cons: Vec<Constraint> = reduced_simplex_constraints(2);
            let res = nelder_mead(
                |v| {
                    obj.evaluate(&expand_weights(v))
                        .map(|o| o.h)
                        .unwrap_or(f64::INFINITY)
                },
                &cons,
                &[1.0 / 3.0, 1.0 / 3.0],
                &NelderMeadParams {
                    max_evals: 30,
                    ..Default::default()
                },
            )
            .unwrap();
            black_box(res.fx);
        })
    });
    group.finish();
}

fn bench_clustering_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_clustering");
    group.sample_size(10);
    for &n in &[500usize, 2000] {
        let mvag = toy_mvag(n, 4, 21);
        let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        let out = SglaPlus::new(SglaParams::default())
            .integrate(&views, 4)
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let labels = spectral_clustering(black_box(&out.laplacian), 4, 3).unwrap();
                black_box(labels);
            })
        });
    }
    group.finish();
}

criterion_group!(
    integration,
    bench_sgla_vs_sgla_plus,
    bench_optimizer_ablation,
    bench_clustering_stage
);
criterion_main!(integration);

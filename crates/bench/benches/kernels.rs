//! Criterion micro-benchmarks for the computational kernels underpinning
//! the complexity claims of Section V: SpMV (the unit of the `O(m + qnK)`
//! bound), the Lanczos eigensolver (`Eigenvalues(L, k+1)`), KNN graph
//! construction, the COBYLA optimizer step, and the surrogate fit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mvag_graph::generators::{
    balanced_labels, gaussian_attributes, sbm, GaussianAttrConfig, SbmConfig,
};
use mvag_graph::knn::{knn_graph, KnnConfig};
use mvag_optim::cobyla::{cobyla, CobylaParams, Constraint};
use mvag_optim::simplex::reduced_simplex_constraints;
use mvag_optim::QuadraticSurrogate;
use mvag_sparse::eigen::{smallest_eigenvalues, EigOptions};
use mvag_sparse::CsrMatrix;
use std::hint::black_box;

fn laplacian(n: usize, seed: u64) -> CsrMatrix {
    let labels = balanced_labels(n, 4).expect("valid sizes");
    let g = sbm(
        &labels,
        &SbmConfig {
            p_in: 40.0 / n as f64,
            p_out: 4.0 / n as f64,
            ..Default::default()
        },
        seed,
    )
    .expect("valid SBM");
    g.normalized_laplacian()
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    for &n in &[1000usize, 4000, 16000] {
        let l = laplacian(n, 1);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y = vec![0.0; n];
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| {
                l.matvec(black_box(&x), &mut y);
                black_box(&y);
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| {
                l.matvec_parallel(black_box(&x), &mut y, 8);
                black_box(&y);
            })
        });
    }
    group.finish();
}

fn bench_eigensolver(c: &mut Criterion) {
    let mut group = c.benchmark_group("lanczos_smallest_k1");
    group.sample_size(10);
    for &n in &[1000usize, 4000] {
        let l = laplacian(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let vals = smallest_eigenvalues(black_box(&l), 5, &EigOptions::default()).unwrap();
                black_box(vals);
            })
        });
    }
    group.finish();
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_graph");
    group.sample_size(10);
    for &n in &[500usize, 2000] {
        let labels = balanced_labels(n, 4).unwrap();
        let x = gaussian_attributes(
            &labels,
            &GaussianAttrConfig {
                dim: 64,
                ..Default::default()
            },
            7,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let g = knn_graph(black_box(&x), &KnnConfig { k: 10, threads: 8 }).unwrap();
                black_box(g);
            })
        });
    }
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer");
    group.bench_function("cobyla_quadratic_3d", |b| {
        b.iter(|| {
            let cons: Vec<Constraint> = reduced_simplex_constraints(3);
            let res = cobyla(
                |v| {
                    (v[0] - 0.2).powi(2)
                        + (v[1] - 0.3).powi(2)
                        + 0.5 * (v[2] - 0.1).powi(2)
                        + v[0] * v[1]
                },
                &cons,
                &[0.25, 0.25, 0.25],
                &CobylaParams::default(),
            )
            .unwrap();
            black_box(res);
        })
    });
    group.bench_function("surrogate_fit_r4", |b| {
        let samples = vec![
            vec![0.25, 0.25, 0.25, 0.25],
            vec![0.625, 0.125, 0.125, 0.125],
            vec![0.125, 0.625, 0.125, 0.125],
            vec![0.125, 0.125, 0.625, 0.125],
            vec![0.125, 0.125, 0.125, 0.625],
        ];
        let values = vec![0.4, 0.7, 0.9, 0.5, 0.6];
        b.iter(|| {
            let s = QuadraticSurrogate::fit(black_box(&samples), black_box(&values), 0.05).unwrap();
            black_box(s);
        })
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_spmv,
    bench_eigensolver,
    bench_knn,
    bench_optimizer
);
criterion_main!(kernels);

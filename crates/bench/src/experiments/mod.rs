//! One module per paper artifact (table/figure); see DESIGN.md §4 for the
//! experiment index. Each module exposes `run(&ExpArgs)`; the `exp_*`
//! binaries are thin wrappers and `exp_all` chains everything.

pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod memory;
pub mod table3;
pub mod table4;

//! E7 — Fig. 7: convergence of SGLA — objective `h(w)` and clustering
//! accuracy as a function of the evaluation index `t`, on Yelp and IMDB.

use crate::cli::ExpArgs;
use crate::report::Table;
use mvag_data::by_name;
use mvag_eval::ClusterMetrics;
use sgla_core::clustering::spectral_clustering;
use sgla_core::sgla::{Sgla, SglaParams};
use sgla_core::views::{KnnParams, ViewLaplacians};

/// Runs the convergence traces.
pub fn run(args: &ExpArgs) {
    println!("== Fig. 7: SGLA convergence (h and Acc vs iteration t) ==");
    for name in ["yelp", "imdb"] {
        if !args.wants(name) {
            continue;
        }
        let spec = by_name(name).expect("registry dataset");
        // Accuracy is re-evaluated at every traced iterate, which means a
        // spectral clustering per point: default to quarter scale.
        let scale = if (args.scale - 1.0).abs() < 1e-12 {
            0.25
        } else {
            args.scale
        };
        let mvag = match spec.generate(scale, args.seed) {
            Ok(m) => m,
            Err(e) => {
                println!("{name}: generation failed: {e}");
                continue;
            }
        };
        let knn = KnnParams {
            k: spec.effective_knn(mvag.n()),
            ..Default::default()
        };
        let views = match ViewLaplacians::build(&mvag, &knn) {
            Ok(v) => v,
            Err(e) => {
                println!("{name}: view build failed: {e}");
                continue;
            }
        };
        let out = match Sgla::new(SglaParams {
            seed: args.seed,
            ..Default::default()
        })
        .integrate(&views, mvag.k())
        {
            Ok(o) => o,
            Err(e) => {
                println!("{name}: SGLA failed: {e}");
                continue;
            }
        };
        let truth = mvag.labels().expect("generated datasets carry labels");
        let mut table = Table::new(&["t", "h(w)", "Acc", "w"]);
        // Track the best-so-far iterate like the optimizer effectively
        // does; cluster at a subsample of iterates to bound cost.
        let stride = (out.trace.len() / 25).max(1);
        for point in out.trace.iter().step_by(stride) {
            let acc = views
                .aggregate(&point.weights)
                .ok()
                .and_then(|l| spectral_clustering(&l, mvag.k(), args.seed).ok())
                .and_then(|lbl| ClusterMetrics::compute(&lbl, truth).ok())
                .map(|m| m.acc)
                .unwrap_or(f64::NAN);
            table.row(vec![
                point.eval.to_string(),
                format!("{:.4}", point.h),
                format!("{acc:.3}"),
                format!(
                    "[{}]",
                    point
                        .weights
                        .iter()
                        .map(|w| format!("{w:.2}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ]);
        }
        println!("\n-- {name} (n = {}) --", mvag.n());
        print!("{}", table.render());
        println!(
            "h decreased from {:.4} to {:.4} over {} evaluations",
            out.trace.first().expect("non-empty trace").h,
            out.trace.iter().map(|t| t.h).fold(f64::INFINITY, f64::min),
            out.trace.len()
        );
        table
            .write_csv(&args.out_dir, &format!("fig7_convergence_{name}"))
            .expect("results dir writable");
    }
}

//! E12 — Fig. 12: t-SNE visualization of node embeddings on RM and Yelp
//! (SGLA+ vs representative baselines), written as CSV point clouds with
//! ground-truth class labels for plotting.

use crate::cli::ExpArgs;
use crate::pipeline::{prepare, EmbedMethod};
use crate::report::Table;
use mvag_data::by_name;
use mvag_eval::tsne::{tsne, TsneParams};
use sgla_core::baselines::{attribute_svd_embedding, equal_weights};
use sgla_core::embedding::{embed, EmbedParams};
use sgla_core::sgla::SglaParams;
use sgla_core::sgla_plus::SglaPlus;

const DATASETS: [&str; 2] = ["rm", "yelp"];
const METHODS: [EmbedMethod; 3] = [
    EmbedMethod::SglaPlus,
    EmbedMethod::EqualW,
    EmbedMethod::AttrSvd,
];

/// Runs the embedding visualizations.
pub fn run(args: &ExpArgs) {
    println!("== Fig. 12: t-SNE embedding visualization (CSV point clouds) ==");
    for name in DATASETS {
        if !args.wants(name) {
            continue;
        }
        let spec = by_name(name).expect("registry dataset");
        // Yelp at quarter scale keeps exact t-SNE quick.
        let scale = if name == "yelp" && (args.scale - 1.0).abs() < 1e-12 {
            0.25
        } else {
            args.scale
        };
        let prep = match prepare(&spec, scale, args.seed) {
            Ok(p) => p,
            Err(e) => {
                println!("{name}: generation failed: {e}");
                continue;
            }
        };
        let truth = prep.mvag.labels().expect("labels").to_vec();
        let dim = 32.min(prep.mvag.n().saturating_sub(2)).max(2);
        for method in METHODS {
            let embedding = match method {
                EmbedMethod::SglaPlus => SglaPlus::new(SglaParams {
                    seed: args.seed,
                    ..Default::default()
                })
                .integrate(&prep.views, prep.mvag.k())
                .ok()
                .and_then(|o| {
                    embed(
                        &o.laplacian,
                        &EmbedParams {
                            dim,
                            seed: args.seed,
                            ..Default::default()
                        },
                    )
                    .ok()
                }),
                EmbedMethod::EqualW => equal_weights(&prep.views).ok().and_then(|l| {
                    embed(
                        &l,
                        &EmbedParams {
                            dim,
                            seed: args.seed,
                            ..Default::default()
                        },
                    )
                    .ok()
                }),
                _ => attribute_svd_embedding(&prep.mvag, dim, args.seed).ok(),
            };
            let Some(embedding) = embedding else {
                println!("{name}/{}: embedding failed", method.name());
                continue;
            };
            let coords = match tsne(
                &embedding,
                &TsneParams {
                    iters: 300,
                    seed: args.seed,
                    ..Default::default()
                },
            ) {
                Ok(c) => c,
                Err(e) => {
                    println!("{name}/{}: t-SNE failed: {e}", method.name());
                    continue;
                }
            };
            let mut table = Table::new(&["x", "y", "class"]);
            for i in 0..coords.nrows() {
                table.row(vec![
                    format!("{:.4}", coords[(i, 0)]),
                    format!("{:.4}", coords[(i, 1)]),
                    truth[i].to_string(),
                ]);
            }
            let file = format!(
                "fig12_tsne_{name}_{}",
                method.name().replace(['+', '-'], "")
            );
            table
                .write_csv(&args.out_dir, &file)
                .expect("results dir writable");
            // Quantify class separation: mean silhouette-like ratio.
            let sep = class_separation(&coords, &truth);
            println!(
                "{name}/{}: wrote {}/{}.csv (between/within distance ratio = {sep:.2})",
                method.name(),
                args.out_dir,
                file
            );
        }
    }
}

/// Between-class vs within-class mean distance ratio in the 2-D map
/// (larger = visually better separated, the qualitative claim of Fig. 12).
fn class_separation(coords: &mvag_sparse::DenseMatrix, labels: &[usize]) -> f64 {
    let n = coords.nrows();
    let (mut within, mut across) = (0.0f64, 0.0f64);
    let (mut cw, mut ca) = (0usize, 0usize);
    let stride = (n / 200).max(1); // subsample pairs for big point clouds
    for i in (0..n).step_by(stride) {
        for j in ((i + 1)..n).step_by(stride) {
            let d = mvag_sparse::vecops::dist2(coords.row(i), coords.row(j)).sqrt();
            if labels[i] == labels[j] {
                within += d;
                cw += 1;
            } else {
                across += d;
                ca += 1;
            }
        }
    }
    if cw == 0 || ca == 0 || within == 0.0 {
        return f64::NAN;
    }
    (across / ca as f64) / (within / cw as f64)
}

//! E4 — Fig. 5: clustering running time per method per dataset.
//!
//! Reuses the Table III pipeline (the paper's Fig. 5 reports the very same
//! runs' wall-clock totals, with the best-quality competitor starred).

use crate::cli::ExpArgs;
use crate::experiments::table3;
use crate::pipeline::ClusterRun;
use crate::report::{fmt_secs, Table};

/// Runs (or reuses) the clustering sweeps and prints the timing figure.
pub fn run(args: &ExpArgs) {
    let all_runs = table3::run(args);
    print_from_runs(args, &all_runs);
}

/// Prints Fig. 5 from precomputed Table III runs.
pub fn print_from_runs(args: &ExpArgs, all_runs: &[(String, Vec<ClusterRun>)]) {
    println!("\n== Fig. 5: clustering running time (seconds) ==");
    for (dataset, runs) in all_runs {
        let mut table = Table::new(&["method", "time(s)", "best-quality?"]);
        // Star the non-SGLA competitor with the best accuracy (paper marks
        // the best-quality baseline per dataset).
        let best_baseline = runs
            .iter()
            .filter(|r| r.method != "SGLA" && r.method != "SGLA+" && r.metrics.is_some())
            .max_by(|a, b| {
                a.metrics
                    .unwrap()
                    .acc
                    .partial_cmp(&b.metrics.unwrap().acc)
                    .expect("finite accuracy")
            })
            .map(|r| r.method);
        for run in runs {
            table.row(vec![
                run.method.to_string(),
                if run.metrics.is_some() {
                    fmt_secs(run.seconds)
                } else {
                    "-".to_string()
                },
                if Some(run.method) == best_baseline {
                    "*".to_string()
                } else {
                    String::new()
                },
            ]);
        }
        println!("\n-- {dataset} --");
        print!("{}", table.render());
        table
            .write_csv(&args.out_dir, &format!("fig5_time_{dataset}"))
            .expect("results dir writable");
    }
}

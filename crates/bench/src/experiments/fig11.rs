//! E11 — Fig. 11: clustering accuracy of the alternative integrations —
//! SGLA+ (full objective) vs connectivity-only, eigengap-only, equal
//! weights, and raw adjacency aggregation — plus the cross-dataset
//! average.

use crate::cli::ExpArgs;
use crate::pipeline::{prepare, run_cluster_method, ClusterMethod};
use crate::report::Table;
use mvag_data::full_registry;

const METHODS: [ClusterMethod; 5] = [
    ClusterMethod::SglaPlus,
    ClusterMethod::ConnectivityOnly,
    ClusterMethod::EigengapOnly,
    ClusterMethod::EqualW,
    ClusterMethod::GraphAgg,
];

/// Runs the alternative-integration comparison.
pub fn run(args: &ExpArgs) {
    println!("== Fig. 11: clustering accuracy of alternative integrations ==");
    let mut header = vec!["dataset".to_string()];
    header.extend(METHODS.iter().map(|m| m.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    let mut sums = vec![0.0f64; METHODS.len()];
    let mut counts = vec![0usize; METHODS.len()];
    for spec in full_registry() {
        if !args.wants(spec.name) {
            continue;
        }
        let prep = match prepare(&spec, args.scale, args.seed) {
            Ok(p) => p,
            Err(e) => {
                println!("{}: generation failed: {e}", spec.name);
                continue;
            }
        };
        let mut row = vec![spec.name.to_string()];
        for (mi, &method) in METHODS.iter().enumerate() {
            let run = run_cluster_method(method, &prep, args.seed);
            match run.metrics {
                Some(m) => {
                    sums[mi] += m.acc;
                    counts[mi] += 1;
                    row.push(format!("{:.3}", m.acc));
                }
                None => row.push("-".into()),
            }
        }
        table.row(row);
    }
    // Average row.
    let mut avg_row = vec!["Average".to_string()];
    for (mi, _) in METHODS.iter().enumerate() {
        if counts[mi] > 0 {
            avg_row.push(format!("{:.3}", sums[mi] / counts[mi] as f64));
        } else {
            avg_row.push("-".into());
        }
    }
    table.row(avg_row);
    print!("{}", table.render());
    table
        .write_csv(&args.out_dir, "fig11_alternatives")
        .expect("results dir writable");
}

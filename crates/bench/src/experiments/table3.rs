//! E3 — Table III: clustering quality (Acc, F1, NMI, ARI, Purity) for
//! every method on every dataset, plus overall average ranks.

use crate::cli::ExpArgs;
use crate::pipeline::{prepare, run_cluster_method, ClusterMethod, ClusterRun};
use crate::report::{fmt_metric, fmt_secs, Table};
use mvag_data::full_registry;

/// Runs the full clustering-quality comparison. Also returns the per-run
/// timing data so Fig. 5 can reuse it.
pub fn run(args: &ExpArgs) -> Vec<(String, Vec<ClusterRun>)> {
    println!("== Table III: clustering quality ==");
    let methods = ClusterMethod::all();
    let mut all_runs: Vec<(String, Vec<ClusterRun>)> = Vec::new();
    // rank bookkeeping: per method, summed ranks and count.
    let mut rank_sum = vec![0.0f64; methods.len()];
    let mut rank_cnt = vec![0usize; methods.len()];

    for spec in full_registry() {
        if !args.wants(spec.name) {
            continue;
        }
        let prep = match prepare(&spec, args.scale, args.seed) {
            Ok(p) => p,
            Err(e) => {
                println!("{}: generation failed: {e}", spec.name);
                continue;
            }
        };
        println!(
            "\n-- {} (n = {}, r = {}, k = {}; paper n = {}) --",
            spec.name,
            prep.mvag.n(),
            prep.mvag.r(),
            prep.mvag.k(),
            spec.paper.n
        );
        let mut table = Table::new(&["method", "Acc", "F1", "NMI", "ARI", "Purity", "time(s)"]);
        let mut runs = Vec::new();
        for (mi, &method) in methods.iter().enumerate() {
            // Average over repeats.
            let mut acc = Vec::new();
            let mut reps: Vec<ClusterRun> = Vec::new();
            for rep in 0..args.repeats.max(1) {
                let run = run_cluster_method(method, &prep, args.seed + rep as u64);
                reps.push(run);
            }
            let ok: Vec<&ClusterRun> = reps.iter().filter(|r| r.metrics.is_some()).collect();
            let avg = |f: &dyn Fn(&ClusterRun) -> f64| -> Option<f64> {
                if ok.is_empty() {
                    None
                } else {
                    Some(ok.iter().map(|r| f(r)).sum::<f64>() / ok.len() as f64)
                }
            };
            let m_acc = avg(&|r| r.metrics.unwrap().acc);
            let m_f1 = avg(&|r| r.metrics.unwrap().f1);
            let m_nmi = avg(&|r| r.metrics.unwrap().nmi);
            let m_ari = avg(&|r| r.metrics.unwrap().ari);
            let m_pur = avg(&|r| r.metrics.unwrap().purity);
            let secs = reps.iter().map(|r| r.seconds).sum::<f64>() / reps.len() as f64;
            table.row(vec![
                method.name().to_string(),
                fmt_metric(m_acc),
                fmt_metric(m_f1),
                fmt_metric(m_nmi),
                fmt_metric(m_ari),
                fmt_metric(m_pur),
                fmt_secs(secs),
            ]);
            if let Some(a) = m_acc {
                acc.push(a);
            }
            // Representative run for fig5 reuse: mean time, first metrics.
            let mut rep = reps.swap_remove(0);
            rep.seconds = secs;
            if rep.metrics.is_none() {
                println!("   note: {} failed: {}", method.name(), rep.note);
            }
            runs.push(rep);
            let _ = mi;
        }
        // Ranks per metric on this dataset (1 = best; failures get worst).
        for metric_idx in 0..5usize {
            let extract = |r: &ClusterRun| -> Option<f64> {
                r.metrics.map(|m| match metric_idx {
                    0 => m.acc,
                    1 => m.f1,
                    2 => m.nmi,
                    3 => m.ari,
                    _ => m.purity,
                })
            };
            let vals: Vec<Option<f64>> = runs.iter().map(extract).collect();
            for (mi, v) in vals.iter().enumerate() {
                let rank = match v {
                    Some(x) => {
                        1.0 + vals
                            .iter()
                            .filter(|o| matches!(o, Some(y) if y > x))
                            .count() as f64
                    }
                    None => vals.len() as f64,
                };
                rank_sum[mi] += rank;
                rank_cnt[mi] += 1;
            }
        }
        print!("{}", table.render());
        table
            .write_csv(&args.out_dir, &format!("table3_{}", spec.name))
            .expect("results dir writable");
        all_runs.push((spec.name.to_string(), runs));
    }

    if !all_runs.is_empty() {
        println!("\n-- overall average rank (lower is better) --");
        let mut rank_table = Table::new(&["method", "avg rank"]);
        for (mi, &method) in methods.iter().enumerate() {
            let avg = if rank_cnt[mi] > 0 {
                rank_sum[mi] / rank_cnt[mi] as f64
            } else {
                f64::NAN
            };
            rank_table.row(vec![method.name().to_string(), format!("{avg:.1}")]);
        }
        print!("{}", rank_table.render());
        rank_table
            .write_csv(&args.out_dir, "table3_ranks")
            .expect("results dir writable");
    }
    all_runs
}

//! E5 — Table IV: embedding quality via node classification (Macro-F1 and
//! Micro-F1, logistic regression on 20% / 1% of labels).

use crate::cli::ExpArgs;
use crate::pipeline::{prepare, run_embed_method, train_frac_for, EmbedMethod, EmbedRun};
use crate::report::{fmt_metric, fmt_secs, Table};
use mvag_data::full_registry;

/// Embedding dimension fixed to 64, as in the paper.
pub const EMBED_DIM: usize = 64;

/// Runs the embedding-quality comparison; returns runs for Fig. 6 reuse.
pub fn run(args: &ExpArgs) -> Vec<(String, Vec<EmbedRun>)> {
    println!("== Table IV: embedding quality (node classification) ==");
    let methods = EmbedMethod::all();
    let mut all_runs = Vec::new();
    let mut rank_sum = vec![0.0f64; methods.len()];
    let mut rank_cnt = vec![0usize; methods.len()];

    for spec in full_registry() {
        if !args.wants(spec.name) {
            continue;
        }
        let prep = match prepare(&spec, args.scale, args.seed) {
            Ok(p) => p,
            Err(e) => {
                println!("{}: generation failed: {e}", spec.name);
                continue;
            }
        };
        let dim = EMBED_DIM.min(prep.mvag.n().saturating_sub(2)).max(2);
        let train_frac = train_frac_for(spec.name);
        println!(
            "\n-- {} (n = {}, dim = {dim}, train = {:.0}%) --",
            spec.name,
            prep.mvag.n(),
            train_frac * 100.0
        );
        let mut table = Table::new(&["method", "MaF1", "MiF1", "time(s)"]);
        let mut runs = Vec::new();
        for &method in &methods {
            let mut reps: Vec<EmbedRun> = Vec::new();
            for rep in 0..args.repeats.max(1) {
                reps.push(run_embed_method(
                    method,
                    &prep,
                    dim,
                    train_frac,
                    args.seed + rep as u64,
                ));
            }
            let ok: Vec<&EmbedRun> = reps.iter().filter(|r| r.f1.is_some()).collect();
            let maf1 = if ok.is_empty() {
                None
            } else {
                Some(ok.iter().map(|r| r.f1.unwrap().0).sum::<f64>() / ok.len() as f64)
            };
            let mif1 = if ok.is_empty() {
                None
            } else {
                Some(ok.iter().map(|r| r.f1.unwrap().1).sum::<f64>() / ok.len() as f64)
            };
            let secs = reps.iter().map(|r| r.seconds).sum::<f64>() / reps.len() as f64;
            table.row(vec![
                method.name().to_string(),
                fmt_metric(maf1),
                fmt_metric(mif1),
                fmt_secs(secs),
            ]);
            let mut rep = reps.swap_remove(0);
            rep.seconds = secs;
            if rep.f1.is_none() {
                println!("   note: {} failed: {}", method.name(), rep.note);
            }
            runs.push(rep);
        }
        // Ranks over MaF1 and MiF1.
        for metric_idx in 0..2usize {
            let vals: Vec<Option<f64>> = runs
                .iter()
                .map(|r| r.f1.map(|f| if metric_idx == 0 { f.0 } else { f.1 }))
                .collect();
            for (mi, v) in vals.iter().enumerate() {
                let rank = match v {
                    Some(x) => {
                        1.0 + vals
                            .iter()
                            .filter(|o| matches!(o, Some(y) if y > x))
                            .count() as f64
                    }
                    None => vals.len() as f64,
                };
                rank_sum[mi] += rank;
                rank_cnt[mi] += 1;
            }
        }
        print!("{}", table.render());
        table
            .write_csv(&args.out_dir, &format!("table4_{}", spec.name))
            .expect("results dir writable");
        all_runs.push((spec.name.to_string(), runs));
    }

    if !all_runs.is_empty() {
        println!("\n-- overall average rank (lower is better) --");
        let mut rank_table = Table::new(&["method", "avg rank"]);
        for (mi, &method) in methods.iter().enumerate() {
            let avg = if rank_cnt[mi] > 0 {
                rank_sum[mi] / rank_cnt[mi] as f64
            } else {
                f64::NAN
            };
            rank_table.row(vec![method.name().to_string(), format!("{avg:.1}")]);
        }
        print!("{}", rank_table.render());
        rank_table
            .write_csv(&args.out_dir, "table4_ranks")
            .expect("results dir writable");
    }
    all_runs
}

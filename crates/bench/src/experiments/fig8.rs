//! E8 — Fig. 8: sensitivity of SGLA to the termination threshold `ε`
//! (accuracy and running-time change relative to the default 10⁻³).

use crate::cli::ExpArgs;
use crate::pipeline::prepare;
use crate::report::Table;
use mvag_data::full_registry;
use mvag_eval::ClusterMetrics;
use sgla_core::clustering::spectral_clustering;
use sgla_core::sgla::{Sgla, SglaParams};
use std::time::Instant;

const EPSILONS: [f64; 4] = [1e-4, 1e-3, 1e-2, 1e-1];

/// Runs the ε sweep.
pub fn run(args: &ExpArgs) {
    println!("== Fig. 8: varying epsilon for SGLA ==");
    let mut table = Table::new(&["dataset", "epsilon", "Acc", "time(s)", "dTime vs 1e-3"]);
    for spec in full_registry() {
        if !args.wants(spec.name) {
            continue;
        }
        let prep = match prepare(&spec, args.scale, args.seed) {
            Ok(p) => p,
            Err(e) => {
                println!("{}: generation failed: {e}", spec.name);
                continue;
            }
        };
        let mut baseline_time = None;
        let mut rows = Vec::new();
        for &eps in &EPSILONS {
            let t = Instant::now();
            let result = Sgla::new(SglaParams {
                epsilon: eps,
                seed: args.seed,
                ..Default::default()
            })
            .integrate(&prep.views, prep.mvag.k())
            .ok()
            .and_then(|out| spectral_clustering(&out.laplacian, prep.mvag.k(), args.seed).ok())
            .and_then(|lbl| {
                ClusterMetrics::compute(&lbl, prep.mvag.labels().expect("labels")).ok()
            });
            let secs = prep.views_secs + t.elapsed().as_secs_f64();
            if (eps - 1e-3).abs() < 1e-15 {
                baseline_time = Some(secs);
            }
            rows.push((eps, result.map(|m| m.acc), secs));
        }
        let base = baseline_time.unwrap_or(1.0);
        for (eps, acc, secs) in rows {
            table.row(vec![
                spec.name.to_string(),
                format!("{eps:.0e}"),
                acc.map_or("-".to_string(), |a| format!("{a:.3}")),
                format!("{secs:.3}"),
                format!("{:+.0}%", (secs / base - 1.0) * 100.0),
            ]);
        }
    }
    print!("{}", table.render());
    table
        .write_csv(&args.out_dir, "fig8_epsilon")
        .expect("results dir writable");
}

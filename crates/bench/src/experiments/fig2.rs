//! E1 — the running example of Fig. 2 / Table 2b: objective values of the
//! two-view 8-node MVAG under a sweep of view weights.

use crate::cli::ExpArgs;
use crate::report::Table;
use mvag_sparse::eigen::EigOptions;
use sgla_core::objective::{ObjectiveMode, SglaObjective};
use sgla_core::views::{KnnParams, ViewLaplacians};

/// Runs the weight sweep and prints the Table 2b analogue.
pub fn run(args: &ExpArgs) {
    println!("== Fig. 2 / Table 2b: running example weight sweep ==");
    let mvag = mvag_graph::toy::figure2_example();
    let views =
        ViewLaplacians::build(&mvag, &KnnParams::default()).expect("static example is valid");
    let obj = SglaObjective::new(&views, 2, 0.0, ObjectiveMode::Full, EigOptions::default())
        .expect("k = 2 valid for n = 8");
    let mut table = Table::new(&["w1", "w2", "gk(L)", "lambda2(L)", "gk - lambda2"]);
    let mut best = (f64::INFINITY, 0.0f64);
    for i in 0..=10 {
        let w1 = 1.0 - i as f64 / 10.0;
        let w2 = 1.0 - w1;
        let v = obj
            .evaluate(&[w1, w2])
            .expect("objective evaluates on simplex");
        let combined = v.eigengap - v.connectivity;
        if combined < best.0 {
            best = (combined, w1);
        }
        table.row(vec![
            format!("{w1:.1}"),
            format!("{w2:.1}"),
            format!("{:.3}", v.eigengap),
            format!("{:.3}", v.connectivity),
            format!("{combined:.3}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "minimum of gk - lambda2 at w1 = {:.1} (paper's example: interior minimum, corners worst)",
        best.1
    );
    table
        .write_csv(&args.out_dir, "fig2_running_example")
        .expect("results dir writable");
}

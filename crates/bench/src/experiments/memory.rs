//! E13 — the memory-efficiency comparison of Sections VI-B/C: estimated
//! peak working-set of SGLA/SGLA+ vs the dense-consensus baselines on the
//! MAG-scale simulations, plus the extrapolated requirement at the paper's
//! full dataset sizes.

use crate::cli::ExpArgs;
use crate::pipeline::prepare;
use crate::report::Table;
use mvag_data::full_registry;

const BYTES_PER_GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Runs the memory accounting.
pub fn run(args: &ExpArgs) {
    println!("== Memory footprint accounting (Sections VI-B/C) ==");
    let mut table = Table::new(&[
        "dataset",
        "n",
        "views (GiB)",
        "L + basis (GiB)",
        "SGLA total (GiB)",
        "dense consensus (GiB)",
        "paper-scale consensus (GiB)",
    ]);
    for spec in full_registry() {
        if !args.wants(spec.name) {
            continue;
        }
        let prep = match prepare(&spec, args.scale, args.seed) {
            Ok(p) => p,
            Err(e) => {
                println!("{}: generation failed: {e}", spec.name);
                continue;
            }
        };
        let n = prep.mvag.n();
        let views_bytes: usize = prep.views.laplacians().iter().map(|l| l.heap_bytes()).sum();
        // Aggregated L has at most the union pattern; Lanczos basis is
        // ~(2(k+1)+30) doubled once, bounded by 6(k+1) vectors of length n.
        let l_bytes: usize = views_bytes; // union pattern upper bound
        let basis_bytes = 6 * (prep.mvag.k() + 1) * n * 8;
        let sgla_total = (views_bytes + l_bytes + basis_bytes) as f64 / BYTES_PER_GIB;
        let consensus = (n * n * 8) as f64 / BYTES_PER_GIB;
        let paper_consensus = (spec.paper.n as f64).powi(2) * 8.0 / BYTES_PER_GIB;
        table.row(vec![
            spec.name.to_string(),
            n.to_string(),
            format!("{:.3}", views_bytes as f64 / BYTES_PER_GIB),
            format!("{:.3}", (l_bytes + basis_bytes) as f64 / BYTES_PER_GIB),
            format!("{sgla_total:.3}"),
            format!("{consensus:.3}"),
            format!("{paper_consensus:.0}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "Shape check: SGLA's working set stays linear in m + qnK while any dense\n\
         consensus needs n² — at the paper's MAG sizes that is tens of thousands\n\
         of GiB (the out-of-memory '-' entries of Table III)."
    );
    table
        .write_csv(&args.out_dir, "memory_footprint")
        .expect("results dir writable");
}

//! E9 — Fig. 9: sensitivity of SGLA+ to the regularization coefficient
//! `γ` (accuracy and NMI over γ ∈ [−2, 2]).

use crate::cli::ExpArgs;
use crate::pipeline::prepare;
use crate::report::Table;
use mvag_data::full_registry;
use mvag_eval::ClusterMetrics;
use sgla_core::clustering::spectral_clustering;
use sgla_core::sgla::SglaParams;
use sgla_core::sgla_plus::SglaPlus;

const GAMMAS: [f64; 7] = [-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0];

/// Runs the γ sweep.
pub fn run(args: &ExpArgs) {
    println!("== Fig. 9: varying gamma for SGLA+ ==");
    let mut table = Table::new(&["dataset", "gamma", "Acc", "NMI"]);
    for spec in full_registry() {
        if !args.wants(spec.name) {
            continue;
        }
        let prep = match prepare(&spec, args.scale, args.seed) {
            Ok(p) => p,
            Err(e) => {
                println!("{}: generation failed: {e}", spec.name);
                continue;
            }
        };
        for &gamma in &GAMMAS {
            let result = SglaPlus::new(SglaParams {
                gamma,
                seed: args.seed,
                ..Default::default()
            })
            .integrate(&prep.views, prep.mvag.k())
            .ok()
            .and_then(|out| spectral_clustering(&out.laplacian, prep.mvag.k(), args.seed).ok())
            .and_then(|lbl| {
                ClusterMetrics::compute(&lbl, prep.mvag.labels().expect("labels")).ok()
            });
            table.row(vec![
                spec.name.to_string(),
                format!("{gamma}"),
                result.map_or("-".into(), |m| format!("{:.3}", m.acc)),
                result.map_or("-".into(), |m| format!("{:.3}", m.nmi)),
            ]);
        }
    }
    print!("{}", table.render());
    table
        .write_csv(&args.out_dir, "fig9_gamma")
        .expect("results dir writable");
}

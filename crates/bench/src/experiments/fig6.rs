//! E6 — Fig. 6: embedding running time per method per dataset (same runs
//! as Table IV; best-quality competitor starred).

use crate::cli::ExpArgs;
use crate::experiments::table4;
use crate::pipeline::EmbedRun;
use crate::report::{fmt_secs, Table};

/// Runs (or reuses) the embedding sweeps and prints the timing figure.
pub fn run(args: &ExpArgs) {
    let all_runs = table4::run(args);
    print_from_runs(args, &all_runs);
}

/// Prints Fig. 6 from precomputed Table IV runs.
pub fn print_from_runs(args: &ExpArgs, all_runs: &[(String, Vec<EmbedRun>)]) {
    println!("\n== Fig. 6: embedding running time (seconds) ==");
    for (dataset, runs) in all_runs {
        let mut table = Table::new(&["method", "time(s)", "best-quality?"]);
        let best_baseline = runs
            .iter()
            .filter(|r| r.method != "SGLA" && r.method != "SGLA+" && r.f1.is_some())
            .max_by(|a, b| {
                a.f1.unwrap()
                    .1
                    .partial_cmp(&b.f1.unwrap().1)
                    .expect("finite f1")
            })
            .map(|r| r.method);
        for run in runs {
            table.row(vec![
                run.method.to_string(),
                if run.f1.is_some() {
                    fmt_secs(run.seconds)
                } else {
                    "-".to_string()
                },
                if Some(run.method) == best_baseline {
                    "*".to_string()
                } else {
                    String::new()
                },
            ]);
        }
        println!("\n-- {dataset} --");
        print!("{}", table.render());
        table
            .write_csv(&args.out_dir, &format!("fig6_time_{dataset}"))
            .expect("results dir writable");
    }
}

//! E2 — Fig. 3: the objective surface `h(w)` on (simulated) Yelp and its
//! quadratic interpolation `h_Θ*`, with both minimizers.

use crate::cli::ExpArgs;
use crate::report::Table;
use mvag_data::by_name;
use mvag_optim::QuadraticSurrogate;
use mvag_sparse::eigen::EigOptions;
use sgla_core::objective::{ObjectiveMode, SglaObjective};
use sgla_core::sgla::SglaParams;
use sgla_core::sgla_plus::SglaPlus;
use sgla_core::views::{KnnParams, ViewLaplacians};

/// Default grid step for the surface (the paper uses 0.01; we default to
/// 0.05 and scale with `--scale` to keep the eigensolve count reasonable).
const GRID_STEP: f64 = 0.05;

/// Runs the surface study.
pub fn run(args: &ExpArgs) {
    println!("== Fig. 3: objective surface h(w) vs quadratic surrogate on Yelp ==");
    let spec = by_name("yelp").expect("registry contains yelp");
    // Surface evaluation is O(grid²) eigensolves: default to quarter-size
    // Yelp unless the user overrides the scale.
    let scale = if (args.scale - 1.0).abs() < 1e-12 {
        0.25
    } else {
        args.scale
    };
    let mvag = spec
        .generate(scale, args.seed)
        .expect("generation succeeds");
    let knn = KnnParams {
        k: spec.effective_knn(mvag.n()),
        ..Default::default()
    };
    let views = ViewLaplacians::build(&mvag, &knn).expect("views build");
    let obj = SglaObjective::new(
        &views,
        mvag.k(),
        0.5,
        ObjectiveMode::Full,
        EigOptions::default(),
    )
    .expect("objective valid");

    // Fit the surrogate from the canonical r + 1 samples.
    let plus = SglaPlus::new(SglaParams {
        seed: args.seed,
        ..Default::default()
    });
    let samples = plus.sample_weights(views.r());
    let values: Vec<f64> = samples
        .iter()
        .map(|w| obj.evaluate(w).expect("objective evaluates").h)
        .collect();
    let surrogate =
        QuadraticSurrogate::fit(&samples, &values, 0.05).expect("surrogate fit succeeds");

    let mut table = Table::new(&["w1", "w2", "h", "h_theta"]);
    let mut best_h = (f64::INFINITY, 0.0, 0.0);
    let mut best_s = (f64::INFINITY, 0.0, 0.0);
    let steps = (1.0 / GRID_STEP) as usize;
    for i in 0..=steps {
        let w1 = i as f64 * GRID_STEP;
        for j in 0..=(steps - i) {
            let w2 = j as f64 * GRID_STEP;
            let w3 = (1.0 - w1 - w2).max(0.0);
            let w = [w1, w2, w3];
            let h = obj.evaluate(&w).expect("objective evaluates").h;
            let s = surrogate.eval(&w);
            if h < best_h.0 {
                best_h = (h, w1, w2);
            }
            if s < best_s.0 {
                best_s = (s, w1, w2);
            }
            table.row(vec![
                format!("{w1:.2}"),
                format!("{w2:.2}"),
                format!("{h:.4}"),
                format!("{s:.4}"),
            ]);
        }
    }
    table
        .write_csv(&args.out_dir, "fig3_surface")
        .expect("results dir writable");
    println!(
        "grid {}x{} (step {GRID_STEP}), {} objective evaluations",
        steps + 1,
        steps + 1,
        obj.evaluations()
    );
    println!(
        "argmin h       = ({:.2}, {:.2}, {:.2})  h = {:.4}",
        best_h.1,
        best_h.2,
        1.0 - best_h.1 - best_h.2,
        best_h.0
    );
    println!(
        "argmin h_theta = ({:.2}, {:.2}, {:.2})  h_theta = {:.4}",
        best_s.1,
        best_s.2,
        1.0 - best_s.1 - best_s.2,
        best_s.0
    );
    let dist = ((best_h.1 - best_s.1).powi(2) + (best_h.2 - best_s.2).powi(2)).sqrt();
    println!("minimizer distance = {dist:.3} (paper: close → surrogate is an effective proxy)");
    println!("surface CSV: {}/fig3_surface.csv", args.out_dir);
}

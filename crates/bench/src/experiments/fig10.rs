//! E10 — Fig. 10: varying the number of weight-vector samples in SGLA+
//! (Δs ∈ {−2, −1, 0, +2, +5, +10, +20}); accuracy, NMI, and time.

use crate::cli::ExpArgs;
use crate::pipeline::prepare;
use crate::report::Table;
use mvag_data::by_name;
use mvag_eval::ClusterMetrics;
use sgla_core::clustering::spectral_clustering;
use sgla_core::sgla::SglaParams;
use sgla_core::sgla_plus::SglaPlus;
use std::time::Instant;

const DELTAS: [i64; 7] = [-2, -1, 0, 2, 5, 10, 20];
const DATASETS: [&str; 4] = ["yelp", "imdb", "dblp", "amazon-computers"];

/// Runs the Δs sweep.
pub fn run(args: &ExpArgs) {
    println!("== Fig. 10: varying the number of SGLA+ weight samples ==");
    let mut table = Table::new(&["dataset", "ds", "samples", "Acc", "NMI", "time(s)"]);
    for name in DATASETS {
        if !args.wants(name) {
            continue;
        }
        let spec = by_name(name).expect("registry dataset");
        let prep = match prepare(&spec, args.scale, args.seed) {
            Ok(p) => p,
            Err(e) => {
                println!("{name}: generation failed: {e}");
                continue;
            }
        };
        for &ds in &DELTAS {
            let plus = SglaPlus::new(SglaParams {
                extra_samples: ds,
                seed: args.seed,
                ..Default::default()
            });
            let n_samples = plus.sample_weights(prep.views.r()).len();
            let t = Instant::now();
            let result = plus
                .integrate(&prep.views, prep.mvag.k())
                .ok()
                .and_then(|out| spectral_clustering(&out.laplacian, prep.mvag.k(), args.seed).ok())
                .and_then(|lbl| {
                    ClusterMetrics::compute(&lbl, prep.mvag.labels().expect("labels")).ok()
                });
            let secs = prep.views_secs + t.elapsed().as_secs_f64();
            table.row(vec![
                name.to_string(),
                format!("{ds:+}"),
                n_samples.to_string(),
                result.map_or("-".into(), |m| format!("{:.3}", m.acc)),
                result.map_or("-".into(), |m| format!("{:.3}", m.nmi)),
                format!("{secs:.3}"),
            ]);
        }
    }
    print!("{}", table.render());
    table
        .write_csv(&args.out_dir, "fig10_samples")
        .expect("results dir writable");
}

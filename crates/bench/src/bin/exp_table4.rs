//! Regenerates Table IV (embedding quality).

fn main() {
    let args = mvag_bench::cli::ExpArgs::parse(std::env::args());
    mvag_bench::experiments::table4::run(&args);
}

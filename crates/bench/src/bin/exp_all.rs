//! Runs every experiment (E1–E13) in sequence — the one-command
//! reproduction of the paper's evaluation section. Tables III/IV are run
//! once and their timings feed Figs. 5/6 directly.

use mvag_bench::cli::ExpArgs;
use mvag_bench::experiments::*;

fn main() {
    let args = ExpArgs::parse(std::env::args());
    println!("SGLA reproduction: full experiment sweep");
    println!(
        "scale = {}, seed = {}, out = {}\n",
        args.scale, args.seed, args.out_dir
    );
    fig2::run(&args);
    println!();
    fig3::run(&args);
    println!();
    let cluster_runs = table3::run(&args);
    fig5::print_from_runs(&args, &cluster_runs);
    println!();
    let embed_runs = table4::run(&args);
    fig6::print_from_runs(&args, &embed_runs);
    println!();
    fig7::run(&args);
    println!();
    fig8::run(&args);
    println!();
    fig9::run(&args);
    println!();
    fig10::run(&args);
    println!();
    fig11::run(&args);
    println!();
    fig12::run(&args);
    println!();
    memory::run(&args);
    println!("\nAll artifacts written under {}/", args.out_dir);
}

//! Regenerates the paper artifact; see `mvag_bench::experiments::fig7`.

fn main() {
    let args = mvag_bench::cli::ExpArgs::parse(std::env::args());
    mvag_bench::experiments::fig7::run(&args);
}

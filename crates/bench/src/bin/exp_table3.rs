//! Regenerates Table III (clustering quality).

fn main() {
    let args = mvag_bench::cli::ExpArgs::parse(std::env::args());
    mvag_bench::experiments::table3::run(&args);
}

//! Regenerates Fig. 6 (embedding running time; reruns the Table IV
//! pipeline and reports the timing columns).

fn main() {
    let args = mvag_bench::cli::ExpArgs::parse(std::env::args());
    mvag_bench::experiments::fig6::run(&args);
}

//! Regenerates the memory-efficiency accounting (Sections VI-B/C).

fn main() {
    let args = mvag_bench::cli::ExpArgs::parse(std::env::args());
    mvag_bench::experiments::memory::run(&args);
}

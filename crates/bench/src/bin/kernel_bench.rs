//! Kernel benchmark: pooled/fused/blocked SpMV and KNN vs their
//! pre-pool baselines, with a built-in bit-identity/tolerance gate.
//! Writes `BENCH_kernels.json`; exits nonzero if any fused/pooled
//! kernel diverges from its sequential reference.
//!
//! ```bash
//! cargo run --release --bin kernel_bench            # full sweep
//! cargo run --release --bin kernel_bench -- --smoke # CI correctness gate
//! ```

use mvag_bench::kernel_bench::{run_to_file, KernelBenchConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // The benchmark measures *parallel* dispatch; on a narrow CI box the
    // autodetected width would be 1 and every kernel would degenerate to
    // the sequential path. Defaulting the pool to a few workers keeps
    // the comparison meaningful everywhere (overridden by SGLA_THREADS,
    // which the pool honours, or --threads below).
    if std::env::var("SGLA_THREADS").is_err() {
        std::env::set_var("SGLA_THREADS", "4");
    }
    let mut config = if smoke {
        KernelBenchConfig::smoke()
    } else {
        KernelBenchConfig::default()
    };
    config.threads = mvag_sparse::parallel::default_threads().max(2);
    let mut out = PathBuf::from("BENCH_kernels.json");
    let mut it = args.iter().filter(|a| *a != "--smoke");
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("{flag} needs a value");
            return ExitCode::FAILURE;
        };
        let parsed = match flag.as_str() {
            "--threads" => value.parse().map(|v| config.threads = v).is_ok(),
            "--views" => value.parse().map(|v| config.views = v).is_ok(),
            "--block" => value.parse().map(|v| config.block = v).is_ok(),
            "--per-row" => value.parse().map(|v| config.per_row = v).is_ok(),
            "--seed" => value.parse().map(|v| config.seed = v).is_ok(),
            "--sizes" => {
                let sizes: Option<Vec<usize>> =
                    value.split(',').map(|s| s.trim().parse().ok()).collect();
                sizes.map(|s| config.sizes = s).is_some()
            }
            "--out" => {
                out = PathBuf::from(value);
                true
            }
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        };
        if !parsed {
            eprintln!("{flag}: cannot parse '{value}'");
            return ExitCode::FAILURE;
        }
    }
    // The global pool's width is already fixed (default_threads() was
    // cached above); a larger --threads would hand the scoped baseline
    // real extra threads while the pooled kernels stay capped at the
    // pool width, skewing the exact comparison this benchmark reports.
    let pool_width = mvag_sparse::parallel::default_threads();
    if config.threads > pool_width {
        eprintln!(
            "--threads {} exceeds the pool width; clamping to {pool_width} \
             (set SGLA_THREADS before launch to widen the pool)",
            config.threads
        );
        config.threads = pool_width;
    }

    println!(
        "kernel_bench: sizes={:?} views={} block={} threads={} smoke={}",
        config.sizes, config.views, config.block, config.threads, config.smoke
    );
    let report = match run_to_file(&config, &out) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("failed to write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    };
    for t in &report.timings {
        println!(
            "  {:<24} n={:<8} nnz={:<9} reps={:<4} p50={:>10.1}us mean={:>10.1}us",
            t.kernel, t.n, t.nnz, t.reps, t.p50_us, t.mean_us
        );
    }
    for &n in &config.sizes {
        let fused = report.p50("multiview_spmv_fused", n);
        let lazy = report.p50("multiview_spmv_lazy", n);
        let mv_scoped = report.p50("multiview_spmv_scoped_baseline", n);
        let pooled = report.p50("spmv_pooled", n);
        let scoped = report.p50("spmv_scoped_baseline", n);
        if let (Some(f), Some(l), Some(ms), Some(p), Some(s)) =
            (fused, lazy, mv_scoped, pooled, scoped)
        {
            println!(
                "  n={n}: fused multi-view {:.2}x vs scoped baseline ({:.2}x vs lazy), \
                 pooled spmv {:.2}x vs scoped",
                ms / f,
                l / f,
                s / p
            );
        }
    }
    if !report.divergences.is_empty() {
        eprintln!("KERNEL DIVERGENCE — fused/pooled results do not match the reference:");
        for d in &report.divergences {
            eprintln!("  {d}");
        }
        return ExitCode::FAILURE;
    }
    println!(
        "all kernels verified against sequential references; report: {}",
        out.display()
    );
    ExitCode::SUCCESS
}

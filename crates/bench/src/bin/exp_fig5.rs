//! Regenerates Fig. 5 (clustering running time; reruns the Table III
//! pipeline and reports the timing columns).

fn main() {
    let args = mvag_bench::cli::ExpArgs::parse(std::env::args());
    mvag_bench::experiments::fig5::run(&args);
}

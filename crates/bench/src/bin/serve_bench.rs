//! Serving load benchmark: ≥1000 concurrent top-k queries over HTTP
//! against a freshly trained artifact, every response verified against
//! direct library calls; p50/p99/QPS land in `BENCH_serve.json`.
//! `--backend threaded|evented|both` picks the transport(s): with both
//! (the default) the threaded run is the latency oracle and the
//! evented p99 is gated against it; above 64 clients the threaded
//! phase auto-skips and the evented phase multiplexes the whole fleet
//! over a bounded driver-thread pool, asserting the server's own open
//! gauge saw every connection at once. `--shards N` replays the same
//! load against a shard router over the same artifact (verified
//! bit-exactly against the monolithic engine) and reports both latency
//! profiles. `--index ivf [--nlist N] [--nprobe N]` replays it as
//! approximate queries against an IVF-indexed engine, with the exact
//! engine as the recall oracle — the run fails below recall@k 0.9 or
//! when probes stop being sublinear. `--obs-gate 1` additionally
//! replays the load with tracing disabled and enabled, fails the run
//! when tracing overhead breaches its p50 bounds, and scrape-validates
//! the live `/metrics` page. Every run records the queue-wait vs
//! backend-time split from the tracing stages. `--smoke 1` shrinks the
//! workload to CI scale before the remaining flags apply.
//!
//! `--cold-start 1` switches to the out-of-core benchmark instead: it
//! synthesizes a sharded v5 layout (1M rows × dim 64 by default;
//! `--smoke 1` shrinks it to 50k), serves it memory-mapped and owned,
//! gates mapped time-to-first-query and `RssAnon` growth against the
//! owned decode, verifies every answer bit-for-bit across the two
//! stores, and merges the numbers into `BENCH_coldstart.json` — see
//! [`mvag_bench::coldstart`].
//!
//! ```bash
//! cargo run --release --bin serve_bench -- --clients 32 --queries 40
//! cargo run --release --bin serve_bench -- --clients 1000 --backend evented
//! cargo run --release --bin serve_bench -- --shards 4
//! cargo run --release --bin serve_bench -- --index ivf --nprobe 4
//! cargo run --release --bin serve_bench -- --obs-gate 1
//! cargo run --release --bin serve_bench -- --cold-start 1 --smoke 1
//! ```

use mvag_bench::serve_bench::{run_to_file, ServeBenchConfig};
use std::path::PathBuf;
use std::process::ExitCode;

/// `--cold-start 1` mode: a separate flag grammar because the
/// workload is disk-shaped, not client-shaped — it synthesizes a
/// sharded v5 layout and races the mmap open against the owned one.
fn cold_start_main(args: &[String]) -> ExitCode {
    let mut config = mvag_bench::coldstart::ColdStartConfig::default();
    let mut out = PathBuf::from("BENCH_coldstart.json");
    let smoke = args
        .windows(2)
        .any(|w| w[0] == "--smoke" && matches!(w[1].as_str(), "1" | "true" | "on"));
    if smoke {
        config.n = 50_000;
        config.shards = 8;
        config.queries = 32;
        config.topk = 5;
        config.smoke = true;
    }
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("{flag} needs a value");
            return ExitCode::FAILURE;
        };
        let parsed = match flag.as_str() {
            "--cold-start" | "--smoke" => true, // handled in the pre-scans
            "--n" => value.parse().map(|v| config.n = v).is_ok(),
            "--k" => value.parse().map(|v| config.k = v).is_ok(),
            "--dim" => value.parse().map(|v| config.dim = v).is_ok(),
            "--shards" => value.parse().map(|v| config.shards = v).is_ok(),
            "--queries" => value.parse().map(|v| config.queries = v).is_ok(),
            "--topk" => value.parse().map(|v| config.topk = v).is_ok(),
            "--seed" => value.parse().map(|v| config.seed = v).is_ok(),
            "--out" => {
                out = PathBuf::from(value);
                true
            }
            other => {
                eprintln!("unknown cold-start flag {other}");
                return ExitCode::FAILURE;
            }
        };
        if !parsed {
            eprintln!("{flag}: cannot parse '{value}'");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "serve_bench --cold-start: n={} dim={} shards={} queries={} ({})",
        config.n,
        config.dim,
        config.shards,
        config.queries,
        if smoke { "smoke" } else { "full" }
    );
    match mvag_bench::coldstart::run_to_file(&config, &out) {
        Ok(report) => {
            println!("synthesis: {:.2}s", report.synth_secs);
            println!(
                "ttfq:      mapped {:.0} us vs owned {:.0} us ({:.1}x faster; gate mapped < owned)",
                report.mapped_ttfq_us,
                report.owned_ttfq_us,
                report.owned_ttfq_us / report.mapped_ttfq_us.max(1.0)
            );
            println!(
                "anon rss:  mapped +{} KB vs owned +{} KB (gate mapped <= 50% owned)",
                report.mapped_anon_delta / 1024,
                report.owned_anon_delta / 1024
            );
            println!(
                "total rss: mapped +{} KB vs owned +{} KB (reported; file-backed pages are \
                 reclaimable)",
                report.mapped_rss_delta / 1024,
                report.owned_rss_delta / 1024
            );
            println!(
                "stores:    {} bytes mapped vs {} bytes heap-owned",
                report.store_mapped_bytes, report.store_owned_bytes
            );
            println!(
                "verified:  {} queries bit-identical across mapped/owned",
                report.verified_queries
            );
            println!("report:    {}", out.display());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("serve_bench --cold-start failed: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut config = ServeBenchConfig::default();
    let mut out = PathBuf::from("BENCH_serve.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args
        .windows(2)
        .any(|w| w[0] == "--cold-start" && matches!(w[1].as_str(), "1" | "true" | "on"))
    {
        return cold_start_main(&args);
    }
    // --smoke applies its defaults first so any explicit flag wins
    // regardless of argument order.
    let smoke = args
        .windows(2)
        .any(|w| w[0] == "--smoke" && matches!(w[1].as_str(), "1" | "true" | "on"));
    if smoke {
        config.n = 200;
        config.k = 3;
        config.dim = 8;
        config.queries_per_client = 3;
        config.topk = 5;
    }
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            eprintln!("{flag} needs a value");
            return ExitCode::FAILURE;
        };
        let parsed = match flag.as_str() {
            "--smoke" => true, // handled in the pre-scan above
            "--backend" => match value.parse() {
                Ok(backend) => {
                    config.backend = backend;
                    true
                }
                Err(msg) => {
                    eprintln!("--backend: {msg}");
                    return ExitCode::FAILURE;
                }
            },
            "--n" => value.parse().map(|v| config.n = v).is_ok(),
            "--k" => value.parse().map(|v| config.k = v).is_ok(),
            "--dim" => value.parse().map(|v| config.dim = v).is_ok(),
            "--clients" => value.parse().map(|v| config.clients = v).is_ok(),
            "--queries" => value.parse().map(|v| config.queries_per_client = v).is_ok(),
            "--topk" => value.parse().map(|v| config.topk = v).is_ok(),
            "--workers" => value.parse().map(|v| config.workers = v).is_ok(),
            "--batch" => value.parse().map(|v| config.max_batch = v).is_ok(),
            "--seed" => value.parse().map(|v| config.seed = v).is_ok(),
            "--shards" => value.parse().map(|v| config.shards = v).is_ok(),
            "--index" => {
                if value != "ivf" {
                    eprintln!("--index: unknown kind '{value}' (try ivf)");
                    return ExitCode::FAILURE;
                }
                config.index = true;
                true
            }
            "--nlist" => value.parse().map(|v| config.nlist = v).is_ok(),
            "--nprobe" => value.parse().map(|v| config.nprobe = v).is_ok(),
            "--obs-gate" => {
                config.obs_gate = matches!(value.as_str(), "1" | "true" | "on");
                true
            }
            "--out" => {
                out = PathBuf::from(value);
                true
            }
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        };
        if !parsed {
            eprintln!("{flag}: cannot parse '{value}'");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "serve_bench: backend={} n={} clients={} queries/client={} topk={} workers={} max_batch={}",
        config.backend.as_str(),
        config.n,
        config.clients,
        config.queries_per_client,
        config.topk,
        config.workers,
        config.max_batch
    );
    match run_to_file(&config, &out) {
        Ok(report) => {
            println!(
                "queries:   {} (all verified against direct library calls)",
                report.total_queries
            );
            println!("train:     {:.2}s", report.train_secs);
            println!("wall:      {:.2}s", report.wall_secs);
            println!("p50:       {:.0} us", report.p50_us);
            println!("p99:       {:.0} us", report.p99_us);
            println!("mean:      {:.0} us", report.mean_us);
            println!("max:       {:.0} us", report.max_us);
            println!("qps:       {:.0}", report.qps);
            println!(
                "cache:     {} hits / {} misses",
                report.cache_hits, report.cache_misses
            );
            // A dedicated evented section only when the threaded phase
            // also ran (otherwise the headline numbers above already
            // are the evented phase).
            if report.json.get("results_evented").is_some() {
                if let Some(evented) = &report.evented {
                    println!(
                        "evented:   p50 {:.0} us / p99 {:.0} us / mean {:.0} us / {:.0} qps \
                         ({:+.1}% p99 vs threaded; gate ≤ ×3 + 5000 us)",
                        evented.p50_us,
                        evented.p99_us,
                        evented.mean_us,
                        evented.qps,
                        if report.p99_us > 0.0 {
                            (evented.p99_us / report.p99_us - 1.0) * 100.0
                        } else {
                            0.0
                        }
                    );
                }
            }
            if let Some(open) = report.concurrent_connections {
                println!(
                    "conns:     {open} simultaneously open keep-alive connections \
                     (server gauge, full fleet connected)"
                );
            }
            let split = &report.stage_split;
            if let (Some(queue), Some(backend), Some(share)) = (
                split.get("queue_wait_mean_us").and_then(|v| v.as_f64()),
                split.get("backend_mean_us").and_then(|v| v.as_f64()),
                split.get("queue_wait_share").and_then(|v| v.as_f64()),
            ) {
                println!(
                    "stages:    queue wait {queue:.0} us / backend {backend:.0} us per query \
                     ({:.0}% of traced time in queue)",
                    share * 100.0
                );
            }
            if let Some(gate) = &report.obs_overhead {
                println!(
                    "obs gate:  pass — p50 baseline {:.0} us / disabled {:.0} us ({:+.1}%) / \
                     enabled {:.0} us ({:+.1}%); /metrics validated",
                    gate.get("baseline_p50_us")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0),
                    gate.get("disabled_p50_us")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0),
                    (gate
                        .get("disabled_ratio")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(1.0)
                        - 1.0)
                        * 100.0,
                    gate.get("enabled_p50_us")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0),
                    (gate
                        .get("enabled_ratio")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(1.0)
                        - 1.0)
                        * 100.0,
                );
            }
            if let Some(approx) = &report.approx {
                println!(
                    "approx:    {} queries via ivf (nlist={}, nprobe={})",
                    approx.stats.total_queries, approx.nlist, approx.nprobe
                );
                println!(
                    "  recall@{} {:.3} vs exact oracle; {:.0} rows scanned/query \
                     ({:.0}% of n-1)",
                    config.topk,
                    approx.recall,
                    approx.avg_rows_scanned,
                    approx.scan_fraction * 100.0
                );
                println!(
                    "  p50 {:.0} us / p99 {:.0} us / mean {:.0} us / {:.0} qps ({:+.1}% p50 vs exact)",
                    approx.stats.p50_us,
                    approx.stats.p99_us,
                    approx.stats.mean_us,
                    approx.stats.qps,
                    if report.p50_us > 0.0 {
                        (approx.stats.p50_us / report.p50_us - 1.0) * 100.0
                    } else {
                        0.0
                    }
                );
            }
            if let Some(sharded) = &report.sharded {
                println!(
                    "sharded:   {} queries across {} shards (all verified vs monolithic)",
                    sharded.total_queries, config.shards
                );
                println!(
                    "  p50 {:.0} us / p99 {:.0} us / mean {:.0} us / {:.0} qps ({:+.1}% p50 vs monolithic)",
                    sharded.p50_us,
                    sharded.p99_us,
                    sharded.mean_us,
                    sharded.qps,
                    if report.p50_us > 0.0 {
                        (sharded.p50_us / report.p50_us - 1.0) * 100.0
                    } else {
                        0.0
                    }
                );
            }
            println!("report:    {}", out.display());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("serve_bench failed: {msg}");
            ExitCode::FAILURE
        }
    }
}

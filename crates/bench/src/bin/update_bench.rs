//! Incremental-update benchmark: warm-started `Artifact::update` vs a
//! from-scratch retrain on the same appended graph, with the update
//! verified against the retrain (Hungarian-aligned labels, embedding
//! subspace) before any timing is reported. `BENCH_update.json` gets
//! the numbers; the run fails if the update is not faster (`--smoke`)
//! or misses the committed ≤ 0.5× ratio (full run), or if
//! verification diverges.
//!
//! `--crud-smoke` runs the delete/edit/compact gate instead: a
//! tombstoning CRUD delta via the warm update path, verified live-row
//! -for-live-row against a retrain, then a sharded compaction whose
//! write amplification must stay within 2× the dirty-shard bytes and
//! whose answers must match the monolithic compaction to the bit. Its
//! fragment merges into the same report under `"crud_smoke"`.
//!
//! ```bash
//! cargo run --release --bin update_bench
//! cargo run --release --bin update_bench -- --smoke true --n 300
//! cargo run --release --bin update_bench -- --crud-smoke --n 300
//! ```

use mvag_bench::update_bench::{run_crud_smoke_to_file, run_to_file, UpdateBenchConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut config = UpdateBenchConfig::default();
    let mut crud = false;
    let mut out = PathBuf::from("BENCH_update.json");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        // `--smoke` / `--crud-smoke` may appear bare (CI convenience)
        // or with a value.
        if flag == "--smoke" || flag == "--crud-smoke" {
            let enabled = match it.clone().next().map(String::as_str) {
                Some("true") | Some("1") => {
                    it.next();
                    true
                }
                Some("false") | Some("0") => {
                    it.next();
                    false
                }
                _ => true,
            };
            if flag == "--crud-smoke" {
                crud = enabled;
                // The CRUD gate is a smoke gate: noisy-runner timing
                // thresholds, repeated timing runs.
                config.smoke = config.smoke || enabled;
            } else {
                config.smoke = enabled;
            }
            continue;
        }
        let Some(value) = it.next() else {
            eprintln!("{flag} needs a value");
            return ExitCode::FAILURE;
        };
        let parsed = match flag.as_str() {
            "--n" => value.parse().map(|v| config.n = v).is_ok(),
            "--k" => value.parse().map(|v| config.k = v).is_ok(),
            "--dim" => value.parse().map(|v| config.dim = v).is_ok(),
            "--add-frac" => value.parse().map(|v| config.add_frac = v).is_ok(),
            "--seed" => value.parse().map(|v| config.seed = v).is_ok(),
            "--out" => {
                out = PathBuf::from(value);
                true
            }
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        };
        if !parsed {
            eprintln!("{flag}: cannot parse '{value}'");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "update_bench: n={} k={} dim={} add_frac={} seed={} smoke={} crud={}",
        config.n, config.k, config.dim, config.add_frac, config.seed, config.smoke, crud
    );
    if crud {
        return match run_crud_smoke_to_file(&config, &out) {
            Ok(report) => {
                println!(
                    "deleted:   {} nodes (plus 2 in-place edits)",
                    report.removed_nodes
                );
                println!("retrain:   {:.3}s (from scratch)", report.retrain_secs);
                println!("update:    {:.3}s (warm-started CRUD)", report.update_secs);
                println!(
                    "ratio:     {:.3} (update/retrain; lower is better)",
                    report.warm_ratio
                );
                println!(
                    "verified:  live label agreement {:.4}, live subspace residual {:.4}",
                    report.live_label_agreement, report.live_subspace_residual
                );
                println!(
                    "compact:   write amplification {:.2}x dirty bytes (bound 2x), \
                     sharded == monolithic to the bit",
                    report.write_amp
                );
                println!("report:    {} (key \"crud_smoke\")", out.display());
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("update_bench --crud-smoke failed: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    match run_to_file(&config, &out) {
        Ok(report) => {
            println!("appended:  {} nodes", report.added_nodes);
            println!("retrain:   {:.3}s (from scratch)", report.retrain_secs);
            println!("update:    {:.3}s (warm-started)", report.update_secs);
            println!(
                "ratio:     {:.3} (update/retrain; lower is better)",
                report.warm_ratio
            );
            println!(
                "verified:  label agreement {:.4}, subspace residual {:.4}",
                report.label_agreement, report.subspace_residual
            );
            println!("report:    {}", out.display());
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("update_bench failed: {msg}");
            ExitCode::FAILURE
        }
    }
}

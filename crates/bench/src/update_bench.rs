//! Benchmark + verification gate for the incremental artifact-update
//! path.
//!
//! Trains a base artifact, synthesizes a structure-preserving append
//! delta (5% of the nodes by default), and measures two ways of
//! reaching the updated artifact:
//!
//! * **full retrain** — `Artifact::train` on the updated MVAG: view
//!   Laplacians from scratch, `r + 1` SGLA+ objective eigensolves, a
//!   cold-started clustering eigensolve, a cold-started embedding;
//! * **warm update** — `Artifact::update` with the base run's cached
//!   view Laplacians: only changed views refreshed, weights reused
//!   (no SGLA+ optimization at all), clustering and embedding
//!   eigensolves warm-started from the previous artifact.
//!
//! The update is *verified* against the retrain before any number is
//! reported: cluster labels must agree after Hungarian alignment
//! (≥ [`MIN_LABEL_AGREEMENT`]), the embedding must span the same
//! subspace (projection residual ≤ [`MAX_SUBSPACE_RESIDUAL`]), and
//! the updated artifact must round-trip the v3 codec with its lineage
//! counter bumped. A run whose warm update is not faster than the
//! retrain fails (`--smoke`); the full run additionally enforces the
//! committed ≤ [`MAX_WARM_RATIO`] speedup target. Results land in
//! `BENCH_update.json`.

use mvag_data::json::Value;
use mvag_data::FsWriter;
use mvag_eval::hungarian::hungarian_min;
use mvag_graph::generators::{
    balanced_labels, gaussian_attributes, random_append_delta, sbm, AppendConfig,
    GaussianAttrConfig, SbmConfig,
};
use mvag_graph::{DeltaEdit, Mvag, MvagDelta, View, ViewDelta};
use mvag_sparse::DenseMatrix;
use sgla_core::embedding::EmbedBackend;
use sgla_serve::{
    compact_sharded, Artifact, EngineConfig, QueryBackend, QueryEngine, RouterConfig, ShardRouter,
    TrainConfig,
};
use std::time::Instant;

/// Full runs fail when the warm update costs more than this fraction
/// of the full retrain (the committed speedup target).
pub const MAX_WARM_RATIO: f64 = 0.5;
/// Smoke runs (CI) only require the update to actually be faster —
/// small smoke sizes leave less room for the skipped eigensolves to
/// dominate, and CI boxes are noisy.
pub const MAX_WARM_RATIO_SMOKE: f64 = 1.0;
/// Minimum Hungarian-aligned label agreement between the updated and
/// retrained artifacts.
pub const MIN_LABEL_AGREEMENT: f64 = 0.99;
/// Maximum relative Frobenius residual of projecting the updated
/// embedding onto the retrained embedding's column span.
pub const MAX_SUBSPACE_RESIDUAL: f64 = 0.35;
/// Maximum bytes a sharded compaction may write per dirty byte it
/// rewrites (the committed write-amplification bound: dirty shards are
/// rewritten once, plus the manifest and id-map sidecar).
pub const MAX_COMPACT_WRITE_AMP: f64 = 2.0;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct UpdateBenchConfig {
    /// Nodes in the base MVAG.
    pub n: usize,
    /// Planted clusters.
    pub k: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Appended nodes as a fraction of `n` (default 0.05).
    pub add_frac: f64,
    /// RNG seed (base graph, delta, training).
    pub seed: u64,
    /// Smoke mode: smaller thresholds suitable for CI gating.
    pub smoke: bool,
}

impl Default for UpdateBenchConfig {
    fn default() -> Self {
        UpdateBenchConfig {
            n: 1200,
            k: 3,
            dim: 32,
            add_frac: 0.05,
            seed: 42,
            smoke: false,
        }
    }
}

/// Outcome of one benchmark run.
#[derive(Debug, Clone)]
pub struct UpdateBenchReport {
    /// Seconds for the from-scratch retrain of the updated graph.
    pub retrain_secs: f64,
    /// Seconds for the warm-started incremental update.
    pub update_secs: f64,
    /// `update_secs / retrain_secs` — the headline number.
    pub warm_ratio: f64,
    /// Hungarian-aligned label agreement between update and retrain.
    pub label_agreement: f64,
    /// Embedding subspace projection residual (update vs retrain).
    pub subspace_residual: f64,
    /// Nodes appended by the delta.
    pub added_nodes: usize,
    /// The full JSON document written to the report file.
    pub json: Value,
}

/// A cleanly separated benchmark MVAG: two fully informative SBM views
/// plus one well-separated Gaussian attribute view. The verification
/// requires label identity up to borderline nodes, so the fixture must
/// not plant any.
fn bench_mvag(n: usize, k: usize, seed: u64) -> Mvag {
    let labels = balanced_labels(n, k).expect("bench sizes are valid");
    let g1 = sbm(
        &labels,
        &SbmConfig {
            p_in: (28.0 / n as f64).min(0.45),
            p_out: 2.0 / n as f64,
            ..Default::default()
        },
        seed,
    )
    .expect("bench SBM parameters are valid");
    let g2 = sbm(
        &labels,
        &SbmConfig {
            p_in: (22.0 / n as f64).min(0.4),
            p_out: 2.5 / n as f64,
            ..Default::default()
        },
        seed.wrapping_add(1),
    )
    .expect("bench SBM parameters are valid");
    let x = gaussian_attributes(
        &labels,
        &GaussianAttrConfig {
            dim: 16,
            separation: 3.0,
            noise: 0.8,
            informative_fraction: 1.0,
        },
        seed.wrapping_add(2),
    )
    .expect("bench attribute parameters are valid");
    Mvag::new(
        format!("update-bench-n{n}-k{k}"),
        vec![View::Graph(g1), View::Graph(g2), View::Attributes(x)],
        Some(labels),
        k,
    )
    .expect("bench MVAG is valid")
}

/// Hungarian-aligned label agreement: the fraction of nodes whose
/// labels match under the cluster-relabeling permutation that
/// maximizes matches.
fn aligned_agreement(a: &[usize], b: &[usize], k: usize) -> f64 {
    assert_eq!(a.len(), b.len());
    let mut counts = DenseMatrix::zeros(k, k);
    for (&x, &y) in a.iter().zip(b) {
        counts[(x, y)] += 1.0;
    }
    // Maximize matches = minimize negated counts.
    let mut cost = DenseMatrix::zeros(k, k);
    for i in 0..k {
        for j in 0..k {
            cost[(i, j)] = -counts[(i, j)];
        }
    }
    let (_, total) = hungarian_min(&cost).expect("square finite cost");
    -total / a.len() as f64
}

/// Subspace-agreement metric shared with the serve property tests
/// (one implementation, in `mvag_sparse::qr`).
fn subspace_residual(e: &DenseMatrix, reference: &DenseMatrix) -> f64 {
    mvag_sparse::qr::subspace_residual(e, reference).expect("shape-compatible embeddings")
}

/// Runs the benchmark: train base → delta → (timed) full retrain vs
/// (timed) warm update → verify → report.
///
/// # Errors
/// Pipeline failures, or any verification/speedup gate failing,
/// rendered as strings for the CLI.
pub fn run(config: &UpdateBenchConfig) -> Result<UpdateBenchReport, String> {
    let mvag = bench_mvag(config.n, config.k, config.seed);
    let mut train_config = TrainConfig::default();
    train_config.sgla.seed = config.seed;
    train_config.embed.dim = config.dim;
    // The spectral backend is the scalable path (NetMF densifies an
    // n × n matrix) and the one whose eigensolvers accept warm starts;
    // both sides of the comparison use it.
    train_config.embed.backend = EmbedBackend::Spectral;

    let started = Instant::now();
    let (artifact, views) =
        Artifact::train_with_views(&mvag, &train_config).map_err(|e| e.to_string())?;
    let base_train_secs = started.elapsed().as_secs_f64();

    let added = ((config.n as f64 * config.add_frac).round() as usize).max(1);
    let delta = random_append_delta(
        &mvag,
        &AppendConfig {
            added_nodes: added,
            edges_per_node: 10,
            within_cluster: 0.95,
            seed: config.seed.wrapping_add(7),
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let updated_mvag = mvag.apply_delta(&delta).map_err(|e| e.to_string())?;

    // Both sides are deterministic pure functions, so smoke mode (the
    // CI gate, run at small sizes on noisy shared runners) times each
    // twice and takes the per-side minimum — a single scheduling stall
    // must not flip a wall-clock comparison gate.
    let timing_runs = if config.smoke { 2 } else { 1 };

    // Timed: from-scratch retrain of the updated graph.
    let mut retrain_secs = f64::INFINITY;
    let mut retrained = None;
    for _ in 0..timing_runs {
        let started = Instant::now();
        let run = Artifact::train(&updated_mvag, &train_config).map_err(|e| e.to_string())?;
        retrain_secs = retrain_secs.min(started.elapsed().as_secs_f64());
        retrained = Some(run);
    }
    let retrained = retrained.expect("at least one retrain run");

    // Timed: warm-started incremental update (cached base views, the
    // state any resident trainer holds).
    let mut update_secs = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..timing_runs {
        let started = Instant::now();
        let run = artifact
            .update(&views, &mvag, &delta, &train_config)
            .map_err(|e| e.to_string())?;
        update_secs = update_secs.min(started.elapsed().as_secs_f64());
        outcome = Some(run);
    }
    let updated = outcome.expect("at least one update run").artifact;

    // Verification before any number is trusted.
    if updated.meta.n != config.n + added || updated.meta.update_count != 1 {
        return Err(format!(
            "updated artifact has n = {}, update_count = {} (expected {} / 1)",
            updated.meta.n,
            updated.meta.update_count,
            config.n + added
        ));
    }
    let roundtrip = Artifact::decode(updated.encode().map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    if roundtrip != updated {
        return Err("updated artifact did not round-trip the v3 codec bit-exactly".into());
    }
    let label_agreement = aligned_agreement(&updated.labels, &retrained.labels, config.k);
    if label_agreement < MIN_LABEL_AGREEMENT {
        return Err(format!(
            "update/retrain label agreement {label_agreement:.4} below {MIN_LABEL_AGREEMENT} \
             after Hungarian alignment"
        ));
    }
    let residual = subspace_residual(&updated.embedding, &retrained.embedding);
    if residual > MAX_SUBSPACE_RESIDUAL {
        return Err(format!(
            "update/retrain embedding subspace residual {residual:.4} above \
             {MAX_SUBSPACE_RESIDUAL}"
        ));
    }

    let warm_ratio = update_secs / retrain_secs.max(1e-12);
    let max_ratio = if config.smoke {
        MAX_WARM_RATIO_SMOKE
    } else {
        MAX_WARM_RATIO
    };
    if warm_ratio >= max_ratio {
        return Err(format!(
            "warm update took {update_secs:.3}s vs {retrain_secs:.3}s retrain \
             (ratio {warm_ratio:.2} >= {max_ratio})"
        ));
    }

    let json = Value::object(vec![
        ("config", {
            Value::object(vec![
                ("n", Value::from(config.n)),
                ("k", Value::from(config.k)),
                ("dim", Value::from(config.dim)),
                ("add_frac", Value::from(config.add_frac)),
                ("added_nodes", Value::from(added)),
                ("seed", Value::from(config.seed)),
                ("smoke", Value::Bool(config.smoke)),
            ])
        }),
        ("results", {
            Value::object(vec![
                ("base_train_secs", Value::from(base_train_secs)),
                ("retrain_secs", Value::from(retrain_secs)),
                ("update_secs", Value::from(update_secs)),
                ("warm_ratio", Value::from(warm_ratio)),
                ("label_agreement", Value::from(label_agreement)),
                ("subspace_residual", Value::from(residual)),
                ("update_count", Value::from(updated.meta.update_count)),
            ])
        }),
    ]);
    Ok(UpdateBenchReport {
        retrain_secs,
        update_secs,
        warm_ratio,
        label_agreement,
        subspace_residual: residual,
        added_nodes: added,
        json,
    })
}

/// Runs the benchmark and writes the JSON report to `out`.
///
/// # Errors
/// See [`run`]; additionally I/O failures writing the report.
pub fn run_to_file(
    config: &UpdateBenchConfig,
    out: &std::path::Path,
) -> Result<UpdateBenchReport, String> {
    let report = run(config)?;
    std::fs::write(out, report.json.to_string_pretty())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    Ok(report)
}

/// Outcome of one CRUD smoke run (`--crud-smoke`).
#[derive(Debug, Clone)]
pub struct CrudSmokeReport {
    /// Seconds for the from-scratch retrain of the mutated graph.
    pub retrain_secs: f64,
    /// Seconds for the warm-started CRUD update.
    pub update_secs: f64,
    /// `update_secs / retrain_secs`.
    pub warm_ratio: f64,
    /// Hungarian-aligned label agreement over *live* (untombstoned)
    /// nodes between the compacted update and the retrain.
    pub live_label_agreement: f64,
    /// Embedding subspace residual over live rows (update vs retrain).
    pub live_subspace_residual: f64,
    /// Nodes the delta tombstoned.
    pub removed_nodes: usize,
    /// Bytes a sharded compaction wrote per dirty byte rewritten.
    pub write_amp: f64,
    /// The JSON fragment merged into the report file.
    pub json: Value,
}

/// One empty [`ViewDelta`] per view (the shape of a delete/edit-only
/// delta).
fn empty_views(mvag: &Mvag) -> Vec<ViewDelta> {
    mvag.views()
        .iter()
        .map(|v| match v {
            View::Graph(_) => ViewDelta::Edges(vec![]),
            View::Attributes(x) => ViewDelta::Rows(DenseMatrix::zeros(0, x.ncols())),
        })
        .collect()
}

/// The CRUD gate: a delete + edit delta applied via the warm
/// [`Artifact::update`] path, verified live-row-for-live-row against a
/// from-scratch retrain of the mutated graph, then pushed through a
/// sharded compaction whose write amplification must stay within
/// [`MAX_COMPACT_WRITE_AMP`] of the dirty bytes and whose answers must
/// match the monolithic compacted artifact to the bit.
///
/// # Errors
/// Pipeline failures, or any verification/speedup/write-amp gate
/// failing, rendered as strings for the CLI.
pub fn run_crud_smoke(config: &UpdateBenchConfig) -> Result<CrudSmokeReport, String> {
    let mvag = bench_mvag(config.n, config.k, config.seed);
    let mut train_config = TrainConfig::default();
    train_config.sgla.seed = config.seed;
    train_config.embed.dim = config.dim;
    train_config.embed.backend = EmbedBackend::Spectral;
    let (artifact, views) =
        Artifact::train_with_views(&mvag, &train_config).map_err(|e| e.to_string())?;

    // ~3% deletions spread across the row (and shard) range, plus a
    // few in-place edits of live nodes.
    let removed: Vec<usize> = (0..(config.n / 32).max(2))
        .map(|i| i * 32 + 1)
        .take_while(|&r| r < config.n)
        .collect();
    let live = |node: usize| !removed.contains(&node);
    let mut live_iter = (0..config.n).filter(|&x| live(x));
    let mut next_live = || live_iter.next().expect("more live nodes than edits");
    let (a, b, c) = (next_live(), next_live(), next_live());
    let attr_view = mvag
        .views()
        .iter()
        .position(|v| matches!(v, View::Attributes(_)))
        .expect("bench MVAG has an attribute view");
    let attr_width = match &mvag.views()[attr_view] {
        View::Attributes(x) => x.ncols(),
        View::Graph(_) => unreachable!(),
    };
    let delta = MvagDelta {
        added_nodes: 0,
        views: empty_views(&mvag),
        added_labels: Some(vec![]),
        removed_nodes: removed.clone(),
        edits: vec![
            DeltaEdit::EdgeWeight {
                view: 0,
                u: a,
                v: b,
                w: 2.0,
            },
            DeltaEdit::AttrRow {
                view: attr_view,
                node: c,
                row: vec![0.25; attr_width],
            },
        ],
    };
    let updated_mvag = mvag.apply_delta(&delta).map_err(|e| e.to_string())?;

    let timing_runs = if config.smoke { 2 } else { 1 };
    let mut retrain_secs = f64::INFINITY;
    let mut retrained = None;
    for _ in 0..timing_runs {
        let started = Instant::now();
        let run = Artifact::train(&updated_mvag, &train_config).map_err(|e| e.to_string())?;
        retrain_secs = retrain_secs.min(started.elapsed().as_secs_f64());
        retrained = Some(run);
    }
    let retrained = retrained.expect("at least one retrain run");

    let mut update_secs = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..timing_runs {
        let started = Instant::now();
        let run = artifact
            .update(&views, &mvag, &delta, &train_config)
            .map_err(|e| e.to_string())?;
        update_secs = update_secs.min(started.elapsed().as_secs_f64());
        outcome = Some(run);
    }
    let updated = outcome.expect("at least one update run").artifact;

    // Verification: the update tombstoned (not dropped) the removals,
    // round-trips the codec, and — compacted — matches the retrain on
    // every live row.
    if updated.meta.n != config.n || updated.tombstone_count() != removed.len() {
        return Err(format!(
            "CRUD update has n = {}, tombstones = {} (expected {} / {})",
            updated.meta.n,
            updated.tombstone_count(),
            config.n,
            removed.len()
        ));
    }
    let roundtrip = Artifact::decode(updated.encode().map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())?;
    if roundtrip != updated {
        return Err("CRUD-updated artifact did not round-trip the codec bit-exactly".into());
    }
    let (compacted, id_map) = updated.compact().map_err(|e| e.to_string())?;
    let live_old: Vec<usize> = (0..config.n).filter(|&o| id_map.map(o).is_some()).collect();
    if compacted.meta.n != live_old.len() {
        return Err(format!(
            "compaction kept {} rows, expected {}",
            compacted.meta.n,
            live_old.len()
        ));
    }
    let retrained_live_labels: Vec<usize> = live_old.iter().map(|&o| retrained.labels[o]).collect();
    let live_label_agreement =
        aligned_agreement(&compacted.labels, &retrained_live_labels, config.k);
    if live_label_agreement < MIN_LABEL_AGREEMENT {
        return Err(format!(
            "CRUD update/retrain live-label agreement {live_label_agreement:.4} below \
             {MIN_LABEL_AGREEMENT}"
        ));
    }
    let retrained_live_embedding = {
        let mut data = Vec::with_capacity(live_old.len() * config.dim);
        for &o in &live_old {
            data.extend_from_slice(retrained.embedding.row(o));
        }
        DenseMatrix::from_vec(live_old.len(), config.dim, data)
            .expect("live rows stack into a matrix")
    };
    let live_subspace_residual = subspace_residual(&compacted.embedding, &retrained_live_embedding);
    if live_subspace_residual > MAX_SUBSPACE_RESIDUAL {
        return Err(format!(
            "CRUD update/retrain live subspace residual {live_subspace_residual:.4} above \
             {MAX_SUBSPACE_RESIDUAL}"
        ));
    }
    let warm_ratio = update_secs / retrain_secs.max(1e-12);
    let max_ratio = if config.smoke {
        MAX_WARM_RATIO_SMOKE
    } else {
        MAX_WARM_RATIO
    };
    if warm_ratio >= max_ratio {
        return Err(format!(
            "CRUD update took {update_secs:.3}s vs {retrain_secs:.3}s retrain \
             (ratio {warm_ratio:.2} >= {max_ratio})"
        ));
    }

    // Sharded compaction leg: write amplification bounded by the dirty
    // bytes, answers bit-identical to the monolithic compaction.
    let dir = std::env::temp_dir().join(format!("sgla-crud-smoke-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let result = (|| {
        updated.save_sharded(&dir, 4).map_err(|e| e.to_string())?;
        let stats = compact_sharded(&dir, &mut FsWriter).map_err(|e| e.to_string())?;
        if stats.purged != removed.len() {
            return Err(format!(
                "sharded compaction purged {} rows, expected {}",
                stats.purged,
                removed.len()
            ));
        }
        let write_amp = stats.bytes_written as f64 / (stats.dirty_bytes_before as f64).max(1.0);
        if write_amp > MAX_COMPACT_WRITE_AMP {
            return Err(format!(
                "sharded compaction wrote {} bytes for {} dirty bytes \
                 (amplification {write_amp:.2} > {MAX_COMPACT_WRITE_AMP})",
                stats.bytes_written, stats.dirty_bytes_before
            ));
        }
        let router = ShardRouter::open(&dir, RouterConfig::default()).map_err(|e| e.to_string())?;
        let engine = QueryEngine::new(compacted.clone(), EngineConfig::default())
            .map_err(|e| e.to_string())?;
        if QueryBackend::meta(&router).n != compacted.meta.n {
            return Err("sharded and monolithic compaction disagree on n".into());
        }
        for node in [0, compacted.meta.n / 2, compacted.meta.n - 1] {
            let (a, b) = (
                router.cluster_of(node).map_err(|e| e.to_string())?,
                engine.cluster_of(node).map_err(|e| e.to_string())?,
            );
            let (ea, eb) = (
                router.embed_batch(&[node]).map_err(|e| e.to_string())?,
                engine.embed_batch(&[node]).map_err(|e| e.to_string())?,
            );
            if a.cluster != b.cluster
                || a.centroid_dist.to_bits() != b.centroid_dist.to_bits()
                || ea[0]
                    .iter()
                    .zip(&eb[0])
                    .any(|(x, y)| x.to_bits() != y.to_bits())
            {
                return Err(format!(
                    "sharded compaction diverges from monolithic at node {node}"
                ));
            }
        }
        Ok(write_amp)
    })();
    std::fs::remove_dir_all(&dir).ok();
    let write_amp = result?;

    let json = Value::object(vec![
        ("config", {
            Value::object(vec![
                ("n", Value::from(config.n)),
                ("k", Value::from(config.k)),
                ("dim", Value::from(config.dim)),
                ("removed_nodes", Value::from(removed.len())),
                ("edits", Value::from(2usize)),
                ("seed", Value::from(config.seed)),
                ("smoke", Value::Bool(config.smoke)),
            ])
        }),
        ("results", {
            Value::object(vec![
                ("retrain_secs", Value::from(retrain_secs)),
                ("update_secs", Value::from(update_secs)),
                ("warm_ratio", Value::from(warm_ratio)),
                ("live_label_agreement", Value::from(live_label_agreement)),
                (
                    "live_subspace_residual",
                    Value::from(live_subspace_residual),
                ),
                ("compaction_write_amp", Value::from(write_amp)),
            ])
        }),
    ]);
    Ok(CrudSmokeReport {
        retrain_secs,
        update_secs,
        warm_ratio,
        live_label_agreement,
        live_subspace_residual,
        removed_nodes: removed.len(),
        write_amp,
        json,
    })
}

/// Runs the CRUD smoke and merges its fragment into `out` under the
/// `"crud_smoke"` key — an existing append-bench report in the same
/// file is preserved, so both gates land in one `BENCH_update.json`.
///
/// # Errors
/// See [`run_crud_smoke`]; additionally I/O failures writing `out`.
pub fn run_crud_smoke_to_file(
    config: &UpdateBenchConfig,
    out: &std::path::Path,
) -> Result<CrudSmokeReport, String> {
    let report = run_crud_smoke(config)?;
    let mut doc = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| mvag_data::json::parse(&text).ok())
        .unwrap_or_else(|| Value::object(vec![]));
    if !matches!(doc, Value::Object(_)) {
        doc = Value::object(vec![]);
    }
    if let Value::Object(map) = &mut doc {
        map.insert("crud_smoke".to_string(), report.json.clone());
    }
    std::fs::write(out, doc.to_string_pretty())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_verifies_and_reports() {
        let config = UpdateBenchConfig {
            n: 240,
            k: 2,
            dim: 12,
            smoke: true,
            ..Default::default()
        };
        let report = run(&config).unwrap();
        assert_eq!(report.added_nodes, 12);
        assert!(report.warm_ratio < MAX_WARM_RATIO_SMOKE);
        assert!(report.label_agreement >= MIN_LABEL_AGREEMENT);
        assert!(report.subspace_residual <= MAX_SUBSPACE_RESIDUAL);
        assert!(report.json.get("results").is_some());
    }

    #[test]
    fn crud_smoke_run_verifies_and_reports() {
        let config = UpdateBenchConfig {
            n: 240,
            k: 2,
            dim: 12,
            smoke: true,
            ..Default::default()
        };
        let report = run_crud_smoke(&config).unwrap();
        assert!(report.removed_nodes >= 2);
        assert!(report.write_amp <= MAX_COMPACT_WRITE_AMP);
        assert!(report.live_label_agreement >= MIN_LABEL_AGREEMENT);
        assert!(report.live_subspace_residual <= MAX_SUBSPACE_RESIDUAL);
        assert!(report.json.get("results").is_some());
    }

    #[test]
    fn crud_smoke_report_merges_into_an_existing_document() {
        // Only the file plumbing: an existing append report must
        // survive the merge. The heavy pipeline is covered above.
        let out = std::env::temp_dir().join(format!("sgla-crud-merge-{}.json", std::process::id()));
        std::fs::write(&out, "{\"results\": {\"warm_ratio\": 0.5}}").unwrap();
        let existing = std::fs::read_to_string(&out).unwrap();
        let mut doc = mvag_data::json::parse(&existing).unwrap();
        if let Value::Object(map) = &mut doc {
            map.insert("crud_smoke".to_string(), Value::object(vec![]));
        }
        std::fs::write(&out, doc.to_string_pretty()).unwrap();
        let merged = mvag_data::json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert!(merged.get("results").is_some());
        assert!(merged.get("crud_smoke").is_some());
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn aligned_agreement_handles_permuted_labels() {
        let a = [0usize, 0, 1, 1, 2, 2];
        let b = [2usize, 2, 0, 0, 1, 1];
        assert!((aligned_agreement(&a, &b, 3) - 1.0).abs() < 1e-12);
        let c = [2usize, 2, 0, 0, 1, 0];
        let agreement = aligned_agreement(&a, &c, 3);
        assert!((agreement - 5.0 / 6.0).abs() < 1e-12, "{agreement}");
    }
}

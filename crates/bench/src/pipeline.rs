//! End-to-end clustering and embedding pipelines for every method in the
//! comparison — the engine behind Tables III/IV and Figures 5/6/11.
//!
//! Timing conventions follow the paper: a method's wall-clock total
//! includes view-Laplacian (and KNN) construction, integration, and the
//! downstream clustering/embedding step. The view Laplacians are built
//! once per dataset and the (measured) build time is charged to every
//! method, so the 9-method sweeps don't redo the identical KNN searches
//! nine times.

use mvag_data::registry::DatasetSpec;
use mvag_eval::classify::evaluate_embedding;
use mvag_eval::ClusterMetrics;
use mvag_graph::Mvag;
use sgla_core::baselines::{
    attribute_svd_embedding, consensus_cluster, equal_weights, graph_agg,
    sampled_consensus_cluster, single_objective, single_view, ConsensusParams,
};
use sgla_core::clustering::spectral_clustering;
use sgla_core::embedding::{embed, EmbedParams};
use sgla_core::objective::ObjectiveMode;
use sgla_core::sgla::{Sgla, SglaParams};
use sgla_core::sgla_plus::SglaPlus;
use sgla_core::views::{KnnParams, ViewLaplacians};
use std::time::Instant;

/// A dataset prepared for the method sweeps: the MVAG, its prebuilt view
/// Laplacians, and the (shared) preprocessing time.
pub struct Prepared {
    /// The generated MVAG.
    pub mvag: Mvag,
    /// View Laplacians built once.
    pub views: ViewLaplacians,
    /// KNN parameters used.
    pub knn: KnnParams,
    /// Seconds spent building the view Laplacians (charged to every
    /// method's total).
    pub views_secs: f64,
}

/// Generates a dataset and builds its view Laplacians once.
///
/// # Errors
/// Propagates generation and construction failures as strings (harness
/// binaries report and continue).
pub fn prepare(spec: &DatasetSpec, scale: f64, seed: u64) -> Result<Prepared, String> {
    let mvag = spec.generate(scale, seed).map_err(|e| e.to_string())?;
    let knn = knn_for(spec, &mvag);
    let t = Instant::now();
    let views = ViewLaplacians::build(&mvag, &knn).map_err(|e| e.to_string())?;
    let views_secs = t.elapsed().as_secs_f64();
    Ok(Prepared {
        mvag,
        views,
        knn,
        views_secs,
    })
}

/// KNN parameters for a dataset spec at its generated size.
pub fn knn_for(spec: &DatasetSpec, mvag: &Mvag) -> KnnParams {
    KnnParams {
        k: spec.effective_knn(mvag.n()),
        ..Default::default()
    }
}

/// The clustering methods compared in Table III / Figs. 5, 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterMethod {
    /// SGLA+ (Algorithm 2) + spectral clustering.
    SglaPlus,
    /// SGLA (Algorithm 1) + spectral clustering.
    Sgla,
    /// Equal view weights + spectral clustering (`Equal-w`).
    EqualW,
    /// Raw adjacency aggregation + spectral clustering (`Graph-Agg`).
    GraphAgg,
    /// The single best view (oracle over views) + spectral clustering.
    BestSingleView,
    /// Eigengap-only objective ablation.
    EigengapOnly,
    /// Connectivity-only objective ablation.
    ConnectivityOnly,
    /// Dense consensus baseline (MCGC-like, O(n²)).
    Consensus,
    /// Anchor-sampled consensus baseline (MvAGC-like, linear).
    SampledConsensus,
}

impl ClusterMethod {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            ClusterMethod::SglaPlus => "SGLA+",
            ClusterMethod::Sgla => "SGLA",
            ClusterMethod::EqualW => "Equal-w",
            ClusterMethod::GraphAgg => "Graph-Agg",
            ClusterMethod::BestSingleView => "Best-view",
            ClusterMethod::EigengapOnly => "Eigengap",
            ClusterMethod::ConnectivityOnly => "Connectivity",
            ClusterMethod::Consensus => "Consensus",
            ClusterMethod::SampledConsensus => "Sampled-cons.",
        }
    }

    /// The full Table III lineup.
    pub fn all() -> Vec<ClusterMethod> {
        vec![
            ClusterMethod::Consensus,
            ClusterMethod::SampledConsensus,
            ClusterMethod::BestSingleView,
            ClusterMethod::EqualW,
            ClusterMethod::GraphAgg,
            ClusterMethod::EigengapOnly,
            ClusterMethod::ConnectivityOnly,
            ClusterMethod::Sgla,
            ClusterMethod::SglaPlus,
        ]
    }
}

/// Result of one clustering run.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// Method display name.
    pub method: &'static str,
    /// Metrics vs ground truth (`None` if the method failed, e.g. the
    /// consensus baseline exceeding its memory budget).
    pub metrics: Option<ClusterMetrics>,
    /// Total wall-clock seconds (including the shared preprocessing).
    pub seconds: f64,
    /// Failure note, when metrics are `None`.
    pub note: String,
}

/// Runs one clustering method end to end on a prepared dataset.
pub fn run_cluster_method(method: ClusterMethod, prep: &Prepared, seed: u64) -> ClusterRun {
    let mvag = &prep.mvag;
    let views = &prep.views;
    let truth = mvag.labels().expect("registry datasets carry labels");
    let k = mvag.k();
    let start = Instant::now();
    let params = SglaParams {
        seed,
        ..Default::default()
    };
    let labels: Result<Vec<usize>, String> = (|| {
        match method {
            ClusterMethod::SglaPlus => {
                let out = SglaPlus::new(params)
                    .integrate(views, k)
                    .map_err(|e| e.to_string())?;
                spectral_clustering(&out.laplacian, k, seed).map_err(|e| e.to_string())
            }
            ClusterMethod::Sgla => {
                let out = Sgla::new(params)
                    .integrate(views, k)
                    .map_err(|e| e.to_string())?;
                spectral_clustering(&out.laplacian, k, seed).map_err(|e| e.to_string())
            }
            ClusterMethod::EqualW => {
                let l = equal_weights(views).map_err(|e| e.to_string())?;
                spectral_clustering(&l, k, seed).map_err(|e| e.to_string())
            }
            ClusterMethod::GraphAgg => {
                let l = graph_agg(mvag, &prep.knn).map_err(|e| e.to_string())?;
                spectral_clustering(&l, k, seed).map_err(|e| e.to_string())
            }
            ClusterMethod::BestSingleView => {
                // Oracle: cluster every view, keep the best accuracy. The
                // time cost reflects trying all views, which is what a
                // practitioner without SGLA would have to do.
                let mut best: Option<(f64, Vec<usize>)> = None;
                for i in 0..views.r() {
                    let l = single_view(views, i).map_err(|e| e.to_string())?;
                    if let Ok(lbl) = spectral_clustering(&l, k, seed) {
                        let acc = ClusterMetrics::compute(&lbl, truth)
                            .map(|m| m.acc)
                            .unwrap_or(0.0);
                        if best.as_ref().is_none_or(|(b, _)| acc > *b) {
                            best = Some((acc, lbl));
                        }
                    }
                }
                best.map(|(_, l)| l)
                    .ok_or_else(|| "no view clusterable".to_string())
            }
            ClusterMethod::EigengapOnly => {
                let out = single_objective(views, k, ObjectiveMode::EigengapOnly, &params)
                    .map_err(|e| e.to_string())?;
                spectral_clustering(&out.laplacian, k, seed).map_err(|e| e.to_string())
            }
            ClusterMethod::ConnectivityOnly => {
                let out = single_objective(views, k, ObjectiveMode::ConnectivityOnly, &params)
                    .map_err(|e| e.to_string())?;
                spectral_clustering(&out.laplacian, k, seed).map_err(|e| e.to_string())
            }
            ClusterMethod::Consensus => {
                consensus_cluster(views, k, &ConsensusParams::default()).map_err(|e| e.to_string())
            }
            ClusterMethod::SampledConsensus => {
                sampled_consensus_cluster(views, k, &ConsensusParams::default())
                    .map_err(|e| e.to_string())
            }
        }
    })();
    let seconds = prep.views_secs + start.elapsed().as_secs_f64();
    match labels {
        Ok(labels) => match ClusterMetrics::compute(&labels, truth) {
            Ok(m) => ClusterRun {
                method: method.name(),
                metrics: Some(m),
                seconds,
                note: String::new(),
            },
            Err(e) => ClusterRun {
                method: method.name(),
                metrics: None,
                seconds,
                note: e.to_string(),
            },
        },
        Err(note) => ClusterRun {
            method: method.name(),
            metrics: None,
            seconds,
            note,
        },
    }
}

/// The embedding methods compared in Table IV / Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmbedMethod {
    /// SGLA+ Laplacian → NetMF/spectral embedding.
    SglaPlus,
    /// SGLA Laplacian → NetMF/spectral embedding.
    Sgla,
    /// Equal-weight Laplacian → embedding.
    EqualW,
    /// Graph-Agg Laplacian → embedding.
    GraphAgg,
    /// Best single view (oracle) → embedding.
    BestSingleView,
    /// Concatenated-attribute SVD (PANE-substitute).
    AttrSvd,
}

impl EmbedMethod {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            EmbedMethod::SglaPlus => "SGLA+",
            EmbedMethod::Sgla => "SGLA",
            EmbedMethod::EqualW => "Equal-w",
            EmbedMethod::GraphAgg => "Graph-Agg",
            EmbedMethod::BestSingleView => "Best-view",
            EmbedMethod::AttrSvd => "Attr-SVD",
        }
    }

    /// The full Table IV lineup.
    pub fn all() -> Vec<EmbedMethod> {
        vec![
            EmbedMethod::AttrSvd,
            EmbedMethod::BestSingleView,
            EmbedMethod::EqualW,
            EmbedMethod::GraphAgg,
            EmbedMethod::Sgla,
            EmbedMethod::SglaPlus,
        ]
    }
}

/// Result of one embedding run (node-classification protocol).
#[derive(Debug, Clone)]
pub struct EmbedRun {
    /// Method display name.
    pub method: &'static str,
    /// `(macro_f1, micro_f1)` on the held-out labels.
    pub f1: Option<(f64, f64)>,
    /// Total wall-clock seconds for producing the embedding (classifier
    /// excluded, as in the paper's "total embedding time").
    pub seconds: f64,
    /// Failure note.
    pub note: String,
}

/// Runs one embedding method end to end: embed, then evaluate by logistic
/// regression on a `train_frac` stratified split.
pub fn run_embed_method(
    method: EmbedMethod,
    prep: &Prepared,
    dim: usize,
    train_frac: f64,
    seed: u64,
) -> EmbedRun {
    let mvag = &prep.mvag;
    let views = &prep.views;
    let truth = mvag.labels().expect("registry datasets carry labels");
    let k = mvag.k();
    let start = Instant::now();
    let params = SglaParams {
        seed,
        ..Default::default()
    };
    let emb_params = EmbedParams {
        dim,
        seed,
        ..Default::default()
    };
    let embedding = (|| -> Result<mvag_sparse::DenseMatrix, String> {
        match method {
            EmbedMethod::AttrSvd => {
                attribute_svd_embedding(mvag, dim, seed).map_err(|e| e.to_string())
            }
            _ => {
                let l = match method {
                    EmbedMethod::SglaPlus => {
                        SglaPlus::new(params)
                            .integrate(views, k)
                            .map_err(|e| e.to_string())?
                            .laplacian
                    }
                    EmbedMethod::Sgla => {
                        Sgla::new(params)
                            .integrate(views, k)
                            .map_err(|e| e.to_string())?
                            .laplacian
                    }
                    EmbedMethod::EqualW => equal_weights(views).map_err(|e| e.to_string())?,
                    EmbedMethod::GraphAgg => {
                        graph_agg(mvag, &prep.knn).map_err(|e| e.to_string())?
                    }
                    EmbedMethod::BestSingleView => {
                        // Oracle by downstream Micro-F1.
                        let mut best: Option<(f64, mvag_sparse::CsrMatrix)> = None;
                        for i in 0..views.r() {
                            let l = single_view(views, i).map_err(|e| e.to_string())?;
                            if let Ok(e) = embed(&l, &emb_params) {
                                if let Ok((_, mif1)) =
                                    evaluate_embedding(&e, truth, train_frac, seed)
                                {
                                    if best.as_ref().is_none_or(|(b, _)| mif1 > *b) {
                                        best = Some((mif1, l));
                                    }
                                }
                            }
                        }
                        best.map(|(_, l)| l)
                            .ok_or_else(|| "no view embeddable".to_string())?
                    }
                    EmbedMethod::AttrSvd => unreachable!("handled above"),
                };
                embed(&l, &emb_params).map_err(|e| e.to_string())
            }
        }
    })();
    // Attr-SVD skips the graph preprocessing; everyone else pays it.
    let pre = if method == EmbedMethod::AttrSvd {
        0.0
    } else {
        prep.views_secs
    };
    let seconds = pre + start.elapsed().as_secs_f64();
    match embedding {
        Ok(e) => match evaluate_embedding(&e, truth, train_frac, seed) {
            Ok(f1) => EmbedRun {
                method: method.name(),
                f1: Some(f1),
                seconds,
                note: String::new(),
            },
            Err(err) => EmbedRun {
                method: method.name(),
                f1: None,
                seconds,
                note: err.to_string(),
            },
        },
        Err(note) => EmbedRun {
            method: method.name(),
            f1: None,
            seconds,
            note,
        },
    }
}

/// Table IV's label budget: 20% everywhere except 1% on the MAG-scale
/// datasets.
pub fn train_frac_for(name: &str) -> f64 {
    if name.starts_with("mag-") {
        0.01
    } else {
        0.2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvag_graph::toy::toy_mvag;

    fn prep_toy(n: usize, k: usize, seed: u64) -> Prepared {
        let mvag = toy_mvag(n, k, seed);
        let knn = KnnParams {
            k: 8,
            ..Default::default()
        };
        let t = Instant::now();
        let views = ViewLaplacians::build(&mvag, &knn).unwrap();
        Prepared {
            mvag,
            views,
            knn,
            views_secs: t.elapsed().as_secs_f64(),
        }
    }

    #[test]
    fn cluster_pipeline_all_methods_on_toy() {
        let prep = prep_toy(120, 2, 5);
        for method in ClusterMethod::all() {
            let run = run_cluster_method(method, &prep, 3);
            let m = run
                .metrics
                .unwrap_or_else(|| panic!("{} failed: {}", run.method, run.note));
            assert!(
                m.acc > 0.5,
                "{}: acc = {} (worse than random)",
                run.method,
                m.acc
            );
            assert!(run.seconds >= prep.views_secs);
        }
    }

    #[test]
    fn sgla_methods_competitive_on_toy() {
        let prep = prep_toy(150, 3, 11);
        let plus = run_cluster_method(ClusterMethod::SglaPlus, &prep, 3);
        let acc = plus.metrics.unwrap().acc;
        assert!(acc > 0.8, "SGLA+ acc = {acc}");
    }

    #[test]
    fn embed_pipeline_all_methods_on_toy() {
        let prep = prep_toy(120, 2, 7);
        for method in EmbedMethod::all() {
            let run = run_embed_method(method, &prep, 16, 0.2, 3);
            let (maf1, mif1) = run
                .f1
                .unwrap_or_else(|| panic!("{} failed: {}", run.method, run.note));
            assert!(
                mif1 > 0.5,
                "{}: micro-f1 = {mif1} (worse than random)",
                run.method
            );
            assert!((0.0..=1.0).contains(&maf1));
        }
    }

    #[test]
    fn train_frac_protocol() {
        assert_eq!(train_frac_for("yelp"), 0.2);
        assert_eq!(train_frac_for("mag-eng"), 0.01);
        assert_eq!(train_frac_for("mag-phy"), 0.01);
    }
}

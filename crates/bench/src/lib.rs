//! Experiment harness regenerating every table and figure of the paper.
//!
//! Shared machinery for the `exp_*` binaries (one per table/figure — see
//! DESIGN.md §4's experiment index) and the Criterion micro-benches:
//!
//! * [`pipeline`] — end-to-end clustering and embedding runs for SGLA,
//!   SGLA+, and every baseline, with wall-clock accounting that includes
//!   view-Laplacian construction (the paper's totals do too);
//! * [`report`] — fixed-width table printing and CSV output under
//!   `results/`;
//! * [`cli`] — a tiny argument parser (`--scale`, `--datasets`, `--seed`,
//!   `--out`) shared by all binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over matched row/column structures are the clearest idiom
// for the numerical kernels in this crate: the index relationships *are*
// the algorithm. The iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::field_reassign_with_default)]

pub mod cli;
pub mod coldstart;
pub mod experiments;
pub mod kernel_bench;
pub mod pipeline;
pub mod report;
pub mod serve_bench;
pub mod update_bench;

//! Kernel micro-benchmark: persistent-pool + fused-operator hot paths
//! against their pre-pool baselines, with built-in correctness gates.
//!
//! Four kernel families are timed at several sizes:
//!
//! * **spmv** — `CsrMatrix::matvec_parallel` (persistent pool, chunk
//!   stealing) vs the scoped-thread baseline
//!   (`parallel::scoped::matvec_parallel`, one spawn/join cycle per
//!   chunk per call — the pre-pool implementation);
//! * **fused-spmv** — one application of the integrated multi-view
//!   operator `Σ wᵥ Lᵥ`: [`FusedSumOp`] (single fused CSR pass) vs the
//!   lazy [`ScaledSumOp`] (one pass per view — the pre-fusing hot path
//!   of every inner eigensolve);
//! * **block-spmv** — [`CsrMatrix::matvec_block`] (one row traversal
//!   updates the whole block) vs `b` independent matvecs (the pre-block
//!   subspace-iteration inner loop);
//! * **knn** — KNN graph construction (pooled `par_map` row scan).
//!
//! Every timed pair is also *verified*: pooled vs sequential and block
//! vs column-wise must agree bit-for-bit, fused vs lazy within a 1e-10
//! relative tolerance. Any divergence fails the run (nonzero exit) —
//! this is the CI gate that keeps the fused kernels honest.

use mvag_data::json::Value;
use mvag_graph::knn::{knn_graph, KnnConfig};
use mvag_sparse::parallel::scoped;
use mvag_sparse::{CooMatrix, CsrMatrix, DenseMatrix, FusedSumOp, LinOp, ScaledSumOp};
use std::time::Instant;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct KernelBenchConfig {
    /// Matrix sizes (node counts) to benchmark.
    pub sizes: Vec<usize>,
    /// Average stored entries per row.
    pub per_row: usize,
    /// Number of views for the fused-operator benchmark.
    pub views: usize,
    /// Block width for the multi-vector matvec.
    pub block: usize,
    /// Worker width for parallel kernels.
    pub threads: usize,
    /// KNN sizes (node counts) and dimensionality.
    pub knn_sizes: Vec<usize>,
    /// Attribute dimensionality for the KNN benchmark.
    pub knn_dim: usize,
    /// RNG seed.
    pub seed: u64,
    /// Smoke mode: tiny sizes, few reps — correctness gate only.
    pub smoke: bool,
}

impl Default for KernelBenchConfig {
    fn default() -> Self {
        KernelBenchConfig {
            sizes: vec![2_000, 20_000, 120_000],
            per_row: 8,
            views: 3,
            block: 16,
            threads: mvag_sparse::parallel::default_threads(),
            knn_sizes: vec![500, 1_500],
            knn_dim: 32,
            seed: 2025,
            smoke: false,
        }
    }
}

impl KernelBenchConfig {
    /// The reduced configuration used by `--smoke` (CI).
    pub fn smoke() -> Self {
        KernelBenchConfig {
            sizes: vec![400, 2_000],
            knn_sizes: vec![200],
            smoke: true,
            ..Default::default()
        }
    }

    fn reps_for(&self, nnz: usize) -> usize {
        if self.smoke {
            return 5;
        }
        // Aim for enough repetitions that the p50 is stable without the
        // large sizes taking minutes: ~2e8 streamed entries per kernel.
        (200_000_000 / nnz.max(1)).clamp(11, 301)
    }
}

/// Timing summary of one kernel at one size.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Kernel name.
    pub kernel: String,
    /// Problem size (nodes).
    pub n: usize,
    /// Stored entries involved in one application.
    pub nnz: usize,
    /// Repetitions measured (after warmup).
    pub reps: usize,
    /// Median per-application latency, microseconds.
    pub p50_us: f64,
    /// Mean per-application latency, microseconds.
    pub mean_us: f64,
}

/// Full benchmark outcome.
#[derive(Debug, Clone)]
pub struct KernelBenchReport {
    /// All timings, grouped by kernel family in insertion order.
    pub timings: Vec<KernelTiming>,
    /// Verification failures (empty for a healthy run).
    pub divergences: Vec<String>,
}

fn time_reps<F: FnMut()>(reps: usize, mut f: F) -> (f64, f64) {
    let warmup = (reps / 5).clamp(1, 3);
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64() * 1e6);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let p50 = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    (p50, mean)
}

/// Deterministic random symmetric-ish CSR with strictly positive values
/// (no exact cancellation, so union-pattern fusing is bit-comparable to
/// the materialized linear combination).
fn random_csr(n: usize, per_row: usize, seed: u64) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state
    };
    for i in 0..n {
        for _ in 0..per_row / 2 {
            let s = next();
            let j = (s >> 33) as usize % n;
            let v = ((s >> 11) & 0xffff) as f64 / 65536.0 + 1e-3;
            coo.push_sym(i, j, v).expect("in bounds");
        }
    }
    coo.to_csr()
}

fn bench_vector(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
        .collect()
}

fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / (1.0 + x.abs().max(y.abs())))
        .fold(0.0f64, f64::max)
}

/// Runs the benchmark. Returns the report; verification failures are
/// collected in [`KernelBenchReport::divergences`] rather than panicking
/// so the binary can exit nonzero with a readable message.
pub fn run(config: &KernelBenchConfig) -> KernelBenchReport {
    let mut timings = Vec::new();
    let mut divergences = Vec::new();
    let threads = config.threads;

    for (si, &n) in config.sizes.iter().enumerate() {
        let seed = config.seed.wrapping_add(si as u64 * 977);
        let views: Vec<CsrMatrix> = (0..config.views)
            .map(|v| random_csr(n, config.per_row, seed.wrapping_add(v as u64 * 131)))
            .collect();
        let a = &views[0];
        let nnz = a.nnz();
        let x = bench_vector(n);
        let reps = config.reps_for(nnz);

        // --- spmv: scoped-thread baseline vs persistent pool ---
        let mut y_seq = vec![0.0f64; n];
        let mut y_scoped = vec![0.0f64; n];
        let mut y_pooled = vec![0.0f64; n];
        a.matvec(&x, &mut y_seq);
        let (p50, mean) = time_reps(reps, || a.matvec(&x, &mut y_seq));
        timings.push(KernelTiming {
            kernel: "spmv_sequential".into(),
            n,
            nnz,
            reps,
            p50_us: p50,
            mean_us: mean,
        });
        let (p50, mean) = time_reps(reps, || {
            scoped::matvec_parallel(a, &x, &mut y_scoped, threads)
        });
        timings.push(KernelTiming {
            kernel: "spmv_scoped_baseline".into(),
            n,
            nnz,
            reps,
            p50_us: p50,
            mean_us: mean,
        });
        let (p50, mean) = time_reps(reps, || a.matvec_parallel(&x, &mut y_pooled, threads));
        timings.push(KernelTiming {
            kernel: "spmv_pooled".into(),
            n,
            nnz,
            reps,
            p50_us: p50,
            mean_us: mean,
        });
        a.matvec(&x, &mut y_seq);
        if y_pooled != y_seq {
            divergences.push(format!(
                "n={n}: pooled spmv not bit-identical to sequential"
            ));
        }
        if y_scoped != y_seq {
            divergences.push(format!(
                "n={n}: scoped spmv not bit-identical to sequential"
            ));
        }

        // --- fused-spmv: the integrated operator Σ wᵥ Lᵥ three ways ---
        // scoped baseline: per-view scoped-thread matvec + axpy (the
        // pre-PR shape of a parallel multi-view application); lazy:
        // sequential V-pass ScaledSumOp (the pre-PR eigensolve hot
        // path); fused: single pooled pass over the scratch CSR.
        let refs: Vec<&CsrMatrix> = views.iter().collect();
        let weights: Vec<f64> = (0..config.views)
            .map(|v| (v + 1) as f64 / (config.views * (config.views + 1) / 2) as f64)
            .collect();
        let lazy = ScaledSumOp::new(refs.clone(), weights.clone());
        let build_t = Instant::now();
        let mut fused =
            FusedSumOp::with_threads(refs, weights.clone(), threads).expect("valid views");
        let fuse_build_us = build_t.elapsed().as_secs_f64() * 1e6;
        let refresh_t = Instant::now();
        fused.set_weights(&weights);
        let fuse_refresh_us = refresh_t.elapsed().as_secs_f64() * 1e6;
        let total_nnz: usize = views.iter().map(CsrMatrix::nnz).sum();
        let mut y_scoped_mv = vec![0.0f64; n];
        let mut tmp = vec![0.0f64; n];
        let (p50, mean) = time_reps(reps, || {
            y_scoped_mv.fill(0.0);
            for (m, &w) in views.iter().zip(&weights) {
                scoped::matvec_parallel(m, &x, &mut tmp, threads);
                for (o, &t) in y_scoped_mv.iter_mut().zip(&tmp) {
                    *o += w * t;
                }
            }
        });
        timings.push(KernelTiming {
            kernel: "multiview_spmv_scoped_baseline".into(),
            n,
            nnz: total_nnz,
            reps,
            p50_us: p50,
            mean_us: mean,
        });
        let mut y_lazy = vec![0.0f64; n];
        let mut y_fused = vec![0.0f64; n];
        let (p50, mean) = time_reps(reps, || lazy.matvec(&x, &mut y_lazy));
        timings.push(KernelTiming {
            kernel: "multiview_spmv_lazy".into(),
            n,
            nnz: total_nnz,
            reps,
            p50_us: p50,
            mean_us: mean,
        });
        let (p50, mean) = time_reps(reps, || fused.matvec(&x, &mut y_fused));
        timings.push(KernelTiming {
            kernel: "multiview_spmv_fused".into(),
            n,
            nnz: fused.fused_matrix().nnz(),
            reps,
            p50_us: p50,
            mean_us: mean,
        });
        timings.push(KernelTiming {
            kernel: "multiview_fuse_weight_refresh".into(),
            n,
            nnz: total_nnz,
            reps: 1,
            p50_us: fuse_refresh_us,
            mean_us: fuse_refresh_us,
        });
        timings.push(KernelTiming {
            kernel: "multiview_fuse_pattern_build".into(),
            n,
            nnz: total_nnz,
            reps: 1,
            p50_us: fuse_build_us,
            mean_us: fuse_build_us,
        });
        let rel = max_rel_diff(&y_lazy, &y_fused);
        if rel > 1e-10 {
            divergences.push(format!(
                "n={n}: fused vs lazy multi-view matvec diverged (max rel diff {rel:.3e})"
            ));
        }
        let rel = max_rel_diff(&y_lazy, &y_scoped_mv);
        if rel > 1e-10 {
            divergences.push(format!(
                "n={n}: scoped vs lazy multi-view matvec diverged (max rel diff {rel:.3e})"
            ));
        }

        // --- block-spmv: b independent matvecs vs one blocked pass ---
        let b = config.block;
        let mut xb = DenseMatrix::zeros(n, b);
        for (i, v) in xb.data_mut().iter_mut().enumerate() {
            *v = ((i * 40503) % 997) as f64 / 498.5 - 1.0;
        }
        let mut yb = DenseMatrix::zeros(n, b);
        let mut xc = vec![0.0f64; n];
        let mut yc = vec![0.0f64; n];
        let mut y_cols = DenseMatrix::zeros(n, b);
        let block_reps = (reps / b).max(3);
        let (p50, mean) = time_reps(block_reps, || {
            for j in 0..b {
                for i in 0..n {
                    xc[i] = xb[(i, j)];
                }
                a.matvec(&xc, &mut yc);
                for i in 0..n {
                    y_cols[(i, j)] = yc[i];
                }
            }
        });
        timings.push(KernelTiming {
            kernel: "block_spmv_columnwise".into(),
            n,
            nnz: nnz * b,
            reps: block_reps,
            p50_us: p50,
            mean_us: mean,
        });
        let (p50, mean) = time_reps(block_reps, || a.matvec_block(&xb, &mut yb, threads));
        timings.push(KernelTiming {
            kernel: "block_spmv_fused".into(),
            n,
            nnz: nnz * b,
            reps: block_reps,
            p50_us: p50,
            mean_us: mean,
        });
        if yb.data() != y_cols.data() {
            divergences.push(format!(
                "n={n}: block spmv not bit-identical to column-wise matvecs"
            ));
        }
    }

    // --- knn: pooled brute-force row scan ---
    for &n in &config.knn_sizes {
        let mut x = DenseMatrix::zeros(n, config.knn_dim);
        let mut state = config.seed | 1;
        for v in x.data_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5;
        }
        let reps = if config.smoke { 2 } else { 5 };
        let knn_cfg = KnnConfig {
            k: 10,
            threads: config.threads,
        };
        let (p50, mean) = time_reps(reps, || {
            let g = knn_graph(&x, &knn_cfg).expect("valid knn input");
            std::hint::black_box(g.adjacency().nnz());
        });
        timings.push(KernelTiming {
            kernel: "knn_pooled".into(),
            n,
            nnz: n * 10,
            reps,
            p50_us: p50,
            mean_us: mean,
        });
    }

    KernelBenchReport {
        timings,
        divergences,
    }
}

impl KernelBenchReport {
    /// p50 of a kernel at a given size, if measured.
    pub fn p50(&self, kernel: &str, n: usize) -> Option<f64> {
        self.timings
            .iter()
            .find(|t| t.kernel == kernel && t.n == n)
            .map(|t| t.p50_us)
    }

    /// JSON form written to `BENCH_kernels.json`.
    pub fn to_json(&self, config: &KernelBenchConfig) -> Value {
        let timings = self
            .timings
            .iter()
            .map(|t| {
                Value::object(vec![
                    ("kernel", Value::String(t.kernel.clone())),
                    ("n", Value::Number(t.n as f64)),
                    ("nnz", Value::Number(t.nnz as f64)),
                    ("reps", Value::Number(t.reps as f64)),
                    ("p50_us", Value::Number(t.p50_us)),
                    ("mean_us", Value::Number(t.mean_us)),
                ])
            })
            .collect();
        let speedups = config
            .sizes
            .iter()
            .map(|&n| {
                let ratio = |new: &str, old: &str| match (self.p50(old, n), self.p50(new, n)) {
                    (Some(o), Some(nw)) if nw > 0.0 => Value::Number(o / nw),
                    _ => Value::Null,
                };
                Value::object(vec![
                    ("n", Value::Number(n as f64)),
                    (
                        "spmv_pooled_vs_scoped",
                        ratio("spmv_pooled", "spmv_scoped_baseline"),
                    ),
                    (
                        "multiview_fused_vs_scoped",
                        ratio("multiview_spmv_fused", "multiview_spmv_scoped_baseline"),
                    ),
                    (
                        "multiview_fused_vs_lazy",
                        ratio("multiview_spmv_fused", "multiview_spmv_lazy"),
                    ),
                    (
                        "block_fused_vs_columnwise",
                        ratio("block_spmv_fused", "block_spmv_columnwise"),
                    ),
                ])
            })
            .collect();
        Value::object(vec![
            ("bench", Value::String("kernels".into())),
            ("threads", Value::Number(config.threads as f64)),
            ("views", Value::Number(config.views as f64)),
            ("block", Value::Number(config.block as f64)),
            ("per_row", Value::Number(config.per_row as f64)),
            ("smoke", Value::Bool(config.smoke)),
            ("verified", Value::Bool(self.divergences.is_empty())),
            (
                "divergences",
                Value::Array(
                    self.divergences
                        .iter()
                        .map(|d| Value::String(d.clone()))
                        .collect(),
                ),
            ),
            ("timings", Value::Array(timings)),
            ("speedups", Value::Array(speedups)),
        ])
    }
}

/// Runs the benchmark and writes the JSON report.
///
/// # Errors
/// Propagates I/O failures writing the report file.
pub fn run_to_file(
    config: &KernelBenchConfig,
    path: &std::path::Path,
) -> std::io::Result<KernelBenchReport> {
    let report = run(config);
    std::fs::write(path, report.to_json(config).to_string_pretty() + "\n")?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_verifies_all_kernels() {
        let mut config = KernelBenchConfig::smoke();
        config.sizes = vec![300];
        config.knn_sizes = vec![80];
        config.threads = 2;
        let report = run(&config);
        assert!(
            report.divergences.is_empty(),
            "kernel divergences: {:?}",
            report.divergences
        );
        assert!(report.p50("spmv_pooled", 300).is_some());
        assert!(report.p50("multiview_spmv_fused", 300).is_some());
        assert!(report.p50("block_spmv_fused", 300).is_some());
        let json = report.to_json(&config).to_string_pretty();
        assert!(json.contains("verified"));
        assert!(json.contains("speedups"));
    }
}

//! Cold-start benchmark: out-of-core (mmap) vs owned serving at scale.
//!
//! Synthesizes a sharded v5 layout of `n` rows × `dim` (default one
//! million × 64 — ~512 MB of embedding alone) *shard by shard*, so the
//! synthesis itself never holds more than one shard's buffers, then
//! measures the two costs the mmap path exists to cut:
//!
//! * **TTFQ** (time to first query): open the layout and answer one
//!   point query. The owned path must read + CRC + decode whole shard
//!   files first; the mapped path parses the v5 head, checksums only
//!   the small sections, and borrows rows from the page cache.
//! * **Resident set**: after answering point queries spread across
//!   every shard, the owned process holds every decoded shard on the
//!   heap while the mapped process holds only engine structs — its
//!   embedding pages are *clean file-backed* memory the kernel can
//!   reclaim at any moment. The gate therefore compares `RssAnon`
//!   deltas (the memory each phase actually obligates); total `VmRSS`
//!   is reported alongside but not gated, because modern kernels back
//!   the page cache with large folios and map an entire folio into the
//!   page table on a single touched byte — file-backed RSS then counts
//!   reclaimable cache, not cold-start cost. Snapshots are taken while
//!   each phase's router is still alive.
//!
//! Both phases answer the *same* queries and every answer is compared
//! bit-for-bit (cluster ids, centroid distances, embedding rows, and a
//! final exact top-k pass against the owned oracle) — the benchmark
//! fails on any divergence, so the speed/memory numbers are only ever
//! reported for provably identical answers.
//!
//! Gates (CI runs `--cold-start --smoke 1`): mapped TTFQ must beat
//! owned TTFQ, and the mapped `RssAnon` delta must be at most half the
//! owned delta. Results merge into `BENCH_coldstart.json` under
//! `cold_start` (full) or `cold_start_smoke`.

use mvag_data::json::Value;
use mvag_data::{ShardEntry, ShardManifest};
use mvag_sparse::{CsrMatrix, DenseMatrix};
use sgla_serve::artifact::FORMAT_VERSION;
use sgla_serve::store::MmapMode;
use sgla_serve::{
    Artifact, ArtifactMeta, ClusterInfo, EngineConfig, Neighbor, QueryBackend, RouterConfig,
    ShardRouter,
};
use std::path::Path;
use std::time::Instant;

/// Configuration of one cold-start run.
#[derive(Debug, Clone)]
pub struct ColdStartConfig {
    /// Total rows across the layout.
    pub n: usize,
    /// Clusters.
    pub k: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Shard count.
    pub shards: usize,
    /// Point queries (spread across shards) per phase.
    pub queries: usize,
    /// Neighbors per exact top-k verification query.
    pub topk: usize,
    /// Synthesis seed.
    pub seed: u64,
    /// Whether the TTFQ / RSS gates fail the run (unit tests at toy
    /// scale disable them: a 100 KB heap delta is allocator noise).
    pub enforce_gates: bool,
    /// Report under `cold_start_smoke` instead of `cold_start`.
    pub smoke: bool,
}

impl Default for ColdStartConfig {
    fn default() -> Self {
        ColdStartConfig {
            n: 1_000_000,
            k: 16,
            dim: 64,
            shards: 16,
            queries: 64,
            topk: 10,
            seed: 42,
            enforce_gates: true,
            smoke: false,
        }
    }
}

/// Outcome of a cold-start run (also serialized in [`Self::json`]).
#[derive(Debug, Clone)]
pub struct ColdStartReport {
    /// Wall-clock seconds synthesizing and writing the layout.
    pub synth_secs: f64,
    /// Open-to-first-answer latency, memory-mapped.
    pub mapped_ttfq_us: f64,
    /// Open-to-first-answer latency, owned.
    pub owned_ttfq_us: f64,
    /// `VmRSS` growth during the mapped phase, bytes (reported only —
    /// includes reclaimable file-backed pages).
    pub mapped_rss_delta: u64,
    /// `VmRSS` growth during the owned phase, bytes.
    pub owned_rss_delta: u64,
    /// `RssAnon` growth during the mapped phase, bytes (gated).
    pub mapped_anon_delta: u64,
    /// `RssAnon` growth during the owned phase, bytes (gated).
    pub owned_anon_delta: u64,
    /// Bytes of artifact files mapped at the end of the mapped phase.
    pub store_mapped_bytes: u64,
    /// Heap bytes pinned by the owned stores.
    pub store_owned_bytes: u64,
    /// Point + top-k answers compared bit-for-bit across phases.
    pub verified_queries: usize,
    /// The report fragment merged into the output file.
    pub json: Value,
}

/// One `kB`-valued field of `/proc/self/status` in bytes. 0 where the
/// file (or the field) is unavailable.
fn status_bytes(status: &str, field: &str) -> u64 {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: u64 = rest
                .trim_start_matches(':')
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// `(VmRSS, RssAnon)` of this process in bytes.
///
/// Snapshots are taken while the phase's router is still alive — unlike
/// `VmHWM` they exclude transient decode buffers the allocator has
/// already recycled, so the two phases compare what they actually
/// *hold*. `RssAnon` is the gated number: it counts heap the process
/// obligates (the owned phase's decoded shards) but not clean
/// file-backed pages (the mapped phase's embedding sections), which
/// the kernel reclaims for free under pressure. Total `VmRSS` would
/// overstate the mapped phase wildly on modern kernels: the page cache
/// holds freshly written files in large folios, and a single touched
/// byte maps the whole folio — near the entire file — into RSS.
fn rss_snapshot() -> (u64, u64) {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    (
        status_bytes(&status, "VmRSS"),
        status_bytes(&status, "RssAnon"),
    )
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic value in [-1, 1) for one embedding cell, so re-runs
/// and both phases agree on the synthetic data without holding it.
fn cell(seed: u64, flat_index: u64) -> f64 {
    let bits = splitmix64(seed ^ flat_index);
    (bits >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Writes the synthetic sharded v5 layout into `dir`, one shard at a
/// time (peak memory is one shard's buffers, not the whole dataset).
fn synthesize_layout(config: &ColdStartConfig, dir: &Path) -> Result<ShardManifest, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let (n, k, dim) = (config.n, config.k, config.dim);
    let shards = config.shards.clamp(1, n.max(1));
    let centroid_data: Vec<f64> = (0..k * dim)
        .map(|i| cell(config.seed.wrapping_add(1), i as u64))
        .collect();
    let base = n / shards;
    let extra = n % shards;
    let mut entries = Vec::with_capacity(shards);
    let mut row_start = 0usize;
    for i in 0..shards {
        let rows = base + usize::from(i < extra);
        let row_end = row_start + rows;
        let emb: Vec<f64> = (row_start * dim..row_end * dim)
            .map(|g| cell(config.seed, g as u64))
            .collect();
        // The graph itself is irrelevant to the serving measurements:
        // a diagonal Laplacian keeps every shard structurally valid at
        // negligible size, so the files are embedding + norms + labels
        // + centroids — the sections the query paths actually touch.
        let indptr: Vec<usize> = (0..=rows).collect();
        let cols: Vec<usize> = (row_start..row_end).collect();
        let vals = vec![1.0f64; rows];
        let artifact = Artifact {
            meta: ArtifactMeta {
                dataset: "coldstart-synth".to_string(),
                n,
                k,
                dim,
                seed: config.seed,
                row_start,
                row_end,
                parent_seed: config.seed,
                update_count: 0,
                compaction_count: 0,
            },
            weights: vec![1.0],
            laplacian: CsrMatrix::from_raw_parts(rows, n, indptr, cols, vals)
                .map_err(|e| format!("shard {i} laplacian: {e}"))?,
            labels: (row_start..row_end).map(|r| r % k).collect(),
            centroids: DenseMatrix::from_vec(k, dim, centroid_data.clone())
                .map_err(|e| format!("centroids: {e}"))?,
            embedding: DenseMatrix::from_vec(rows, dim, emb)
                .map_err(|e| format!("shard {i} embedding: {e}"))?,
            tombstones: Vec::new(),
        };
        let encoded = artifact
            .encode()
            .map_err(|e| format!("encoding shard {i}: {e}"))?;
        let file = Artifact::shard_file_name(i);
        std::fs::write(dir.join(&file), encoded.as_ref())
            .map_err(|e| format!("writing shard {i}: {e}"))?;
        entries.push(ShardEntry {
            file,
            row_start,
            row_end,
            bytes: encoded.len() as u64,
            crc32: mvag_data::codec::crc32(encoded.as_ref()),
            tombstones: 0,
            ..Default::default()
        });
        row_start = row_end;
    }
    let manifest = ShardManifest {
        dataset: "coldstart-synth".to_string(),
        n,
        k,
        dim,
        seed: config.seed,
        artifact_format_version: FORMAT_VERSION,
        update_count: 0,
        compaction_count: 0,
        id_map: None,
        shards: entries,
    };
    manifest
        .save(&dir.join(Artifact::MANIFEST_FILE))
        .map_err(|e| format!("writing manifest: {e}"))?;
    Ok(manifest)
}

fn open_router(dir: &Path, mmap: MmapMode) -> Result<ShardRouter, String> {
    ShardRouter::open(
        dir,
        RouterConfig {
            engine: EngineConfig::default(),
            cache_capacity: 0,
            max_resident: 0,
            mmap,
        },
    )
    .map_err(|e| format!("opening layout ({mmap:?}): {e}"))
}

/// One phase's point answers, kept as raw bits for exact comparison.
struct PointAnswers {
    clusters: Vec<ClusterInfo>,
    rows: Vec<Vec<u64>>,
}

fn point_phase(router: &ShardRouter, nodes: &[usize]) -> Result<PointAnswers, String> {
    let mut clusters = Vec::with_capacity(nodes.len());
    let mut rows = Vec::with_capacity(nodes.len());
    for &node in nodes {
        clusters.push(
            QueryBackend::cluster_of(router, node)
                .map_err(|e| format!("cluster_of({node}): {e}"))?,
        );
        let embedded = router
            .embed_batch(&[node])
            .map_err(|e| format!("embed({node}): {e}"))?;
        rows.push(embedded[0].iter().map(|v| v.to_bits()).collect());
    }
    Ok(PointAnswers { clusters, rows })
}

fn compare_points(mapped: &PointAnswers, owned: &PointAnswers) -> Result<(), String> {
    for (i, (m, o)) in mapped.clusters.iter().zip(&owned.clusters).enumerate() {
        if m.node != o.node
            || m.cluster != o.cluster
            || m.centroid_dist.to_bits() != o.centroid_dist.to_bits()
        {
            return Err(format!(
                "cluster answer {i} diverged: mapped {m:?} vs owned {o:?}"
            ));
        }
    }
    for (i, (m, o)) in mapped.rows.iter().zip(&owned.rows).enumerate() {
        if m != o {
            return Err(format!("embedding row {i} diverged between phases"));
        }
    }
    Ok(())
}

fn compare_topk(node: usize, mapped: &[Neighbor], owned: &[Neighbor]) -> Result<(), String> {
    if mapped.len() != owned.len() {
        return Err(format!(
            "top-k({node}): {} mapped neighbors vs {} owned",
            mapped.len(),
            owned.len()
        ));
    }
    for (m, o) in mapped.iter().zip(owned) {
        if m.node != o.node || m.score.to_bits() != o.score.to_bits() {
            return Err(format!(
                "top-k({node}) diverged: mapped ({}, {:x}) vs owned ({}, {:x})",
                m.node,
                m.score.to_bits(),
                o.node,
                o.score.to_bits()
            ));
        }
    }
    Ok(())
}

/// Runs the cold-start benchmark. See the module docs for phases and
/// gates.
///
/// # Errors
/// Synthesis/serving failures, any bit divergence between the mapped
/// and owned answers, and (with `enforce_gates`) a mapped TTFQ that
/// does not beat owned or a mapped `RssAnon` delta above half the
/// owned one.
pub fn run(config: &ColdStartConfig) -> Result<ColdStartReport, String> {
    if !sgla_serve::store::MMAP_SUPPORTED {
        return Err(
            "the cold-start benchmark compares mmap-backed serving, which needs Linux on a \
             little-endian target"
                .to_string(),
        );
    }
    let dir = std::env::temp_dir().join(format!("sgla-coldstart-{}", std::process::id()));
    let result = run_in(config, &dir);
    std::fs::remove_dir_all(&dir).ok();
    result
}

fn run_in(config: &ColdStartConfig, dir: &Path) -> Result<ColdStartReport, String> {
    let synth_start = Instant::now();
    let manifest = synthesize_layout(config, dir)?;
    let synth_secs = synth_start.elapsed().as_secs_f64();
    let layout_bytes: u64 = manifest.shards.iter().map(|s| s.bytes).sum();

    let queries = config.queries.max(config.shards).min(config.n);
    let nodes: Vec<usize> = (0..queries).map(|i| i * config.n / queries).collect();
    let topk_nodes: Vec<usize> = nodes.iter().copied().take(8).collect();

    // Mapped phase first: the owned decode leaves recycled allocator
    // pages behind, so running low-memory-first keeps its snapshot
    // clean of the other phase's footprint.
    let (rss_baseline, anon_baseline) = rss_snapshot();
    let mapped_open = Instant::now();
    let mapped_router = open_router(dir, MmapMode::On)?;
    QueryBackend::cluster_of(&mapped_router, nodes[0]).map_err(|e| format!("mapped TTFQ: {e}"))?;
    let mapped_ttfq_us = mapped_open.elapsed().as_secs_f64() * 1e6;
    let mapped_points = point_phase(&mapped_router, &nodes)?;
    let mapped_memory = mapped_router.store_memory();
    let (rss_mapped, anon_mapped) = rss_snapshot();
    if mapped_memory.stores.iter().any(|s| s != "mapped") {
        return Err(format!(
            "mapped phase did not map every shard: {:?}",
            mapped_memory.stores
        ));
    }
    drop(mapped_router);

    // Owned phase: same layout, same queries, full decode.
    let owned_open = Instant::now();
    let owned_router = open_router(dir, MmapMode::Off)?;
    QueryBackend::cluster_of(&owned_router, nodes[0]).map_err(|e| format!("owned TTFQ: {e}"))?;
    let owned_ttfq_us = owned_open.elapsed().as_secs_f64() * 1e6;
    let owned_points = point_phase(&owned_router, &nodes)?;
    let owned_memory = owned_router.store_memory();
    let (rss_owned, anon_owned) = rss_snapshot();
    compare_points(&mapped_points, &owned_points)?;

    // Exact top-k oracle (scans every row, so it runs only after both
    // RSS snapshots) against a reopened mapped router.
    let topk_queries: Vec<(usize, usize)> = topk_nodes.iter().map(|&n| (n, config.topk)).collect();
    let oracle = owned_router.top_k_batch(&topk_queries);
    drop(owned_router);
    let mapped_router = open_router(dir, MmapMode::On)?;
    let mapped_topk = mapped_router.top_k_batch(&topk_queries);
    for ((node, _), (m, o)) in topk_queries.iter().zip(mapped_topk.iter().zip(&oracle)) {
        let m = m
            .as_ref()
            .map_err(|e| format!("mapped top-k({node}): {e}"))?;
        let o = o
            .as_ref()
            .map_err(|e| format!("owned top-k({node}): {e}"))?;
        compare_topk(*node, m, o)?;
    }
    drop(mapped_router);

    let mapped_rss_delta = rss_mapped.saturating_sub(rss_baseline);
    let owned_rss_delta = rss_owned.saturating_sub(rss_baseline);
    let mapped_anon_delta = anon_mapped.saturating_sub(anon_baseline);
    let owned_anon_delta = anon_owned.saturating_sub(anon_baseline);
    let ttfq_pass = mapped_ttfq_us < owned_ttfq_us;
    let rss_pass = owned_anon_delta > 0 && mapped_anon_delta * 2 <= owned_anon_delta;
    let verified_queries = nodes.len() + topk_queries.len();

    let json = Value::object(vec![
        (
            "config",
            Value::object(vec![
                ("n", Value::from(config.n)),
                ("k", Value::from(config.k)),
                ("dim", Value::from(config.dim)),
                ("shards", Value::from(config.shards)),
                ("queries", Value::from(queries)),
                ("topk", Value::from(config.topk)),
                ("seed", Value::from(config.seed)),
            ]),
        ),
        ("layout_bytes", Value::from(layout_bytes)),
        ("synth_secs", Value::from(synth_secs)),
        (
            "mapped",
            Value::object(vec![
                ("ttfq_us", Value::from(mapped_ttfq_us)),
                ("rss_delta_bytes", Value::from(mapped_rss_delta)),
                ("anon_delta_bytes", Value::from(mapped_anon_delta)),
                (
                    "store_mapped_bytes",
                    Value::from(mapped_memory.mapped_bytes),
                ),
            ]),
        ),
        (
            "owned",
            Value::object(vec![
                ("ttfq_us", Value::from(owned_ttfq_us)),
                ("rss_delta_bytes", Value::from(owned_rss_delta)),
                ("anon_delta_bytes", Value::from(owned_anon_delta)),
                ("store_owned_bytes", Value::from(owned_memory.owned_bytes)),
            ]),
        ),
        (
            "verify",
            Value::object(vec![
                ("point_queries", Value::from(nodes.len())),
                ("topk_queries", Value::from(topk_queries.len())),
                ("bit_identical", Value::Bool(true)),
            ]),
        ),
        (
            "gates",
            Value::object(vec![
                ("enforced", Value::Bool(config.enforce_gates)),
                ("ttfq_pass", Value::Bool(ttfq_pass)),
                ("rss_pass", Value::Bool(rss_pass)),
            ]),
        ),
    ]);

    let report = ColdStartReport {
        synth_secs,
        mapped_ttfq_us,
        owned_ttfq_us,
        mapped_rss_delta,
        owned_rss_delta,
        mapped_anon_delta,
        owned_anon_delta,
        store_mapped_bytes: mapped_memory.mapped_bytes,
        store_owned_bytes: owned_memory.owned_bytes,
        verified_queries,
        json,
    };
    if config.enforce_gates {
        if !ttfq_pass {
            return Err(format!(
                "TTFQ gate failed: mapped {mapped_ttfq_us:.0} us is not below owned \
                 {owned_ttfq_us:.0} us"
            ));
        }
        if !rss_pass {
            return Err(format!(
                "RSS gate failed: mapped RssAnon delta {mapped_anon_delta} bytes exceeds half \
                 the owned delta {owned_anon_delta} bytes"
            ));
        }
    }
    Ok(report)
}

/// Runs the benchmark and merges the fragment into `out` under
/// `cold_start` (or `cold_start_smoke`), preserving whatever else the
/// file holds so full and smoke runs land in one
/// `BENCH_coldstart.json`.
///
/// # Errors
/// See [`run`]; additionally I/O failures writing `out`.
pub fn run_to_file(config: &ColdStartConfig, out: &Path) -> Result<ColdStartReport, String> {
    let report = run(config)?;
    let key = if config.smoke {
        "cold_start_smoke"
    } else {
        "cold_start"
    };
    let mut doc = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| mvag_data::json::parse(&text).ok())
        .unwrap_or_else(|| Value::object(vec![]));
    if !matches!(doc, Value::Object(_)) {
        doc = Value::object(vec![]);
    }
    if let Value::Object(map) = &mut doc {
        map.insert(key.to_string(), report.json.clone());
    }
    std::fs::write(out, doc.to_string_pretty())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_run_is_bit_identical_and_reports() {
        if !sgla_serve::store::MMAP_SUPPORTED {
            return;
        }
        let config = ColdStartConfig {
            n: 600,
            k: 4,
            dim: 8,
            shards: 3,
            queries: 12,
            topk: 5,
            // Allocator noise at toy scale makes the RSS gate
            // meaningless; bit-identity is still fully enforced.
            enforce_gates: false,
            ..Default::default()
        };
        let report = run(&config).unwrap();
        assert_eq!(report.verified_queries, 12 + 8);
        assert!(report.store_mapped_bytes > 0);
        assert!(report.store_owned_bytes > 0);
        assert!(report.json.get("gates").is_some());
    }

    #[test]
    fn report_merges_into_existing_document() {
        let out =
            std::env::temp_dir().join(format!("sgla-coldstart-merge-{}.json", std::process::id()));
        std::fs::write(&out, "{\"cold_start\": {\"keep\": 1}}").unwrap();
        let mut doc = mvag_data::json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        if let Value::Object(map) = &mut doc {
            map.insert("cold_start_smoke".to_string(), Value::object(vec![]));
        }
        std::fs::write(&out, doc.to_string_pretty()).unwrap();
        let merged = mvag_data::json::parse(&std::fs::read_to_string(&out).unwrap()).unwrap();
        assert!(merged.get("cold_start").unwrap().get("keep").is_some());
        assert!(merged.get("cold_start_smoke").is_some());
        std::fs::remove_dir_all(&out).ok();
        std::fs::remove_file(&out).ok();
    }
}

//! Minimal CLI argument handling shared by the experiment binaries.

/// Parsed common arguments.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Global scale multiplier on dataset sizes (default 1.0; the quick
    /// mode of `exp_all` uses smaller values).
    pub scale: f64,
    /// Dataset name filter (empty = all).
    pub datasets: Vec<String>,
    /// Base RNG seed.
    pub seed: u64,
    /// Output directory for CSV artifacts.
    pub out_dir: String,
    /// Number of repeated runs to average (the paper averages 5).
    pub repeats: usize,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            scale: 1.0,
            datasets: Vec::new(),
            seed: 2025,
            out_dir: "results".into(),
            repeats: 1,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args()`-style arguments. Unknown flags abort with
    /// a usage message.
    pub fn parse(args: impl Iterator<Item = String>) -> ExpArgs {
        let mut out = ExpArgs::default();
        let mut it = args.skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--scale" => {
                    out.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a positive number"));
                }
                "--datasets" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--datasets needs a comma-separated list"));
                    out.datasets = v.split(',').map(|s| s.trim().to_string()).collect();
                }
                "--seed" => {
                    out.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--out" => {
                    out.out_dir = it.next().unwrap_or_else(|| usage("--out needs a path"));
                }
                "--repeats" => {
                    out.repeats = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--repeats needs an integer"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        out
    }

    /// Whether a dataset passes the `--datasets` filter.
    pub fn wants(&self, name: &str) -> bool {
        self.datasets.is_empty() || self.datasets.iter().any(|d| d == name)
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: exp_* [--scale F] [--datasets a,b,c] [--seed N] [--out DIR] [--repeats N]");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(list: &[&str]) -> ExpArgs {
        let mut v = vec!["prog".to_string()];
        v.extend(list.iter().map(|s| s.to_string()));
        ExpArgs::parse(v.into_iter())
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1.0);
        assert!(a.datasets.is_empty());
        assert!(a.wants("anything"));
    }

    #[test]
    fn parses_flags() {
        let a = parse(&[
            "--scale",
            "0.25",
            "--datasets",
            "rm,yelp",
            "--seed",
            "7",
            "--out",
            "/tmp/r",
            "--repeats",
            "3",
        ]);
        assert_eq!(a.scale, 0.25);
        assert_eq!(a.datasets, vec!["rm", "yelp"]);
        assert_eq!(a.seed, 7);
        assert_eq!(a.out_dir, "/tmp/r");
        assert_eq!(a.repeats, 3);
        assert!(a.wants("rm"));
        assert!(!a.wants("imdb"));
    }
}

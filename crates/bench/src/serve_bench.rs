//! Load benchmark for the `sgla-serve` HTTP front end.
//!
//! Trains an artifact, serves it on a loopback socket, then drives it
//! with N concurrent keep-alive clients issuing top-k queries. Every
//! response is verified against a direct [`QueryEngine`] call (node
//! ids and bit-exact scores), so the benchmark doubles as a
//! correctness check under concurrency. With `shards >= 2` the same
//! load is replayed against a [`sgla_serve::ShardRouter`] over a
//! sharded copy of the same artifact — every sharded response is
//! verified bit-exactly against the *monolithic* engine, and the
//! report carries both latency profiles side by side. With
//! `index = true` a third phase replays the load as
//! `mode=approx` queries against an IVF-indexed engine: the exact
//! engine acts as the recall oracle (recall@k is *measured*, the run
//! fails below [`MIN_RECALL`]), returned scores must bit-match the
//! exact cosine of their pair, and the report records how many rows
//! the probes actually scanned (the sublinearity evidence). Reports
//! client-side p50/p99 latency and throughput plus the server's own
//! counters, and writes everything to a JSON report
//! (`BENCH_serve.json` by default).

use mvag_data::json::Value;
use sgla_serve::{
    Artifact, EngineConfig, HttpClient, IvfConfig, QueryEngine, RouterConfig, ServeBackend, Server,
    ServerConfig, ShardRouter, TrainConfig,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// An approx phase whose measured recall@k falls below this fails the
/// whole run: approximation is a latency trade, not silent decay.
pub const MIN_RECALL: f64 = 0.9;

/// An approx phase that scans more than this fraction of the rows per
/// query is not approximating anything — fail loudly.
pub const MAX_SCAN_FRACTION: f64 = 0.75;

/// Which transport backend(s) to load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BenchBackend {
    /// Thread-per-connection pool only.
    Threaded,
    /// Epoll readiness loop only.
    Evented,
    /// Both, with the evented p99 gated against the threaded oracle.
    #[default]
    Both,
}

impl BenchBackend {
    fn wants_threaded(self) -> bool {
        matches!(self, BenchBackend::Threaded | BenchBackend::Both)
    }

    fn wants_evented(self) -> bool {
        matches!(self, BenchBackend::Evented | BenchBackend::Both)
    }

    /// Flag-style name, as accepted by `--backend`.
    pub fn as_str(self) -> &'static str {
        match self {
            BenchBackend::Threaded => "threaded",
            BenchBackend::Evented => "evented",
            BenchBackend::Both => "both",
        }
    }
}

impl std::str::FromStr for BenchBackend {
    type Err = String;

    fn from_str(raw: &str) -> Result<BenchBackend, String> {
        match raw {
            "threaded" => Ok(BenchBackend::Threaded),
            "evented" => Ok(BenchBackend::Evented),
            "both" => Ok(BenchBackend::Both),
            other => Err(format!(
                "unknown backend '{other}' (threaded, evented, or both)"
            )),
        }
    }
}

/// Above this many clients the thread-per-connection pieces stop being
/// meaningful on small hosts (the threaded server pins one worker per
/// keep-alive connection and the plain driver spawns one OS thread per
/// client): the threaded phase auto-skips and the evented phase
/// switches to the multiplexed driver.
pub const MAX_THREADED_CLIENTS: usize = 64;

/// Driver threads for the high-concurrency mode; each multiplexes
/// `clients / MAX_DRIVER_THREADS` keep-alive connections.
const MAX_DRIVER_THREADS: usize = 32;

/// When both backends run, the evented p99 may exceed the threaded p99
/// by at most this factor (plus [`EVENTED_P99_SLACK_US`]) — the CI
/// regression gate. Generous: the point is catching a collapsed event
/// loop, not benchmarking noise.
pub const EVENTED_P99_MAX_RATIO: f64 = 3.0;

/// Absolute slack on the evented-vs-threaded p99 gate; tiny smoke
/// workloads have p99s of a few hundred microseconds where a single
/// scheduler hiccup swamps any ratio.
pub const EVENTED_P99_SLACK_US: f64 = 5000.0;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Which transport backend(s) to load.
    pub backend: BenchBackend,
    /// Nodes in the synthetic training MVAG.
    pub n: usize,
    /// Planted clusters.
    pub k: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Queries issued per client.
    pub queries_per_client: usize,
    /// `k` of each top-k query.
    pub topk: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Upper bound on micro-batched queries per kernel pass.
    pub max_batch: usize,
    /// RNG seed (training + query mix).
    pub seed: u64,
    /// Row-range shards for the sharded phase (`< 2` skips it).
    pub shards: usize,
    /// Run the IVF approx phase (`--index ivf`).
    pub index: bool,
    /// Inverted lists for the approx phase (0 = auto, `⌈√n⌉`).
    pub nlist: usize,
    /// Lists probed per approx query (0 = index default, `⌈√nlist⌉`).
    pub nprobe: usize,
    /// Run the tracing-overhead gate: repeat the monolithic load with
    /// tracing disabled and enabled, fail when p50 regresses past
    /// [`OBS_DISABLED_MAX_RATIO`] / [`OBS_ENABLED_MAX_RATIO`], and
    /// scrape-validate the live `/metrics` page.
    pub obs_gate: bool,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            backend: BenchBackend::default(),
            n: 400,
            k: 3,
            dim: 32,
            clients: 32,
            queries_per_client: 40,
            topk: 10,
            workers: 8,
            max_batch: 64,
            seed: 42,
            shards: 0,
            index: false,
            nlist: 0,
            nprobe: 0,
            obs_gate: false,
        }
    }
}

/// Tracing-disabled p50 may exceed the untraced baseline p50 by at
/// most this factor (instrumentation off the hot path must cost no
/// more than an atomic load per site).
pub const OBS_DISABLED_MAX_RATIO: f64 = 1.03;

/// Tracing-enabled p50 may exceed the untraced baseline p50 by at
/// most this factor.
pub const OBS_ENABLED_MAX_RATIO: f64 = 1.10;

/// Interleaved repeats per mode in the overhead gate; latencies pool
/// across repeats so machine drift hits every mode equally.
const OBS_GATE_REPEATS: usize = 3;

/// Absolute slack added on top of the relative gate bounds: loopback
/// p50s sit in the tens-to-hundreds of microseconds, where timer
/// quantization and scheduler noise alone move medians by more than
/// 3% between back-to-back identical runs.
const OBS_GATE_SLACK_US: f64 = 25.0;

/// Latency/throughput summary of one load phase.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Total queries issued.
    pub total_queries: usize,
    /// Queries whose response matched the direct library call.
    pub verified: usize,
    /// Mismatches (must be 0 for a healthy run).
    pub mismatches: usize,
    /// Client-observed median latency in microseconds.
    pub p50_us: f64,
    /// 99th percentile latency in microseconds.
    pub p99_us: f64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Worst observed latency in microseconds.
    pub max_us: f64,
    /// Aggregate throughput over the loaded phase (queries/second).
    pub qps: f64,
    /// Wall-clock of the query phase in seconds.
    pub wall_secs: f64,
}

impl PhaseStats {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("total_queries", Value::from(self.total_queries)),
            ("verified", Value::from(self.verified)),
            ("mismatches", Value::from(self.mismatches)),
            ("p50_us", Value::from(self.p50_us)),
            ("p99_us", Value::from(self.p99_us)),
            ("mean_us", Value::from(self.mean_us)),
            ("max_us", Value::from(self.max_us)),
            ("qps", Value::from(self.qps)),
            ("wall_secs", Value::from(self.wall_secs)),
        ])
    }
}

/// Outcome of one benchmark run.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Total queries issued in the monolithic phase.
    pub total_queries: usize,
    /// Queries whose response matched the direct library call.
    pub verified: usize,
    /// Mismatches (must be 0 for a healthy run).
    pub mismatches: usize,
    /// Client-observed latency percentiles in microseconds.
    pub p50_us: f64,
    /// 99th percentile latency in microseconds.
    pub p99_us: f64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Worst observed latency in microseconds.
    pub max_us: f64,
    /// Aggregate throughput over the loaded phase (queries/second).
    pub qps: f64,
    /// Wall-clock of the query phase in seconds.
    pub wall_secs: f64,
    /// Seconds spent training the artifact.
    pub train_secs: f64,
    /// Top-k cache hits observed by the engine.
    pub cache_hits: u64,
    /// Top-k cache misses observed by the engine.
    pub cache_misses: u64,
    /// The evented-phase profile whenever that transport was loaded.
    /// When the threaded phase was skipped (high client counts or
    /// `backend = evented`) these numbers are also the headline
    /// fields above.
    pub evented: Option<PhaseStats>,
    /// Open connections the server's own gauge reported with the
    /// whole fleet connected — high-concurrency evented mode only,
    /// asserted `>= clients` before the run can pass.
    pub concurrent_connections: Option<usize>,
    /// The sharded-phase profile, when `shards >= 2` was requested.
    /// Verified against the *monolithic* engine, bit-exactly.
    pub sharded: Option<PhaseStats>,
    /// The approx-phase profile, when `index` was requested. Recall
    /// and scan work are measured against the exact oracle.
    pub approx: Option<ApproxPhase>,
    /// Queue-wait vs backend-time split measured from the tracing
    /// stages over a short traced replay (`stage_split` in the JSON).
    pub stage_split: Value,
    /// The tracing-overhead gate result when `obs_gate` was requested
    /// (`obs_overhead` in the JSON). `Some` means the gate passed —
    /// a breached bound fails the whole run instead.
    pub obs_overhead: Option<Value>,
    /// The full JSON document written to the report file.
    pub json: Value,
}

/// Outcome of the IVF approx phase: latency profile plus the measured
/// quality/work trade against the exact oracle.
#[derive(Debug, Clone)]
pub struct ApproxPhase {
    /// Latency/throughput of the approx load.
    pub stats: PhaseStats,
    /// Measured recall@k against the exact engine.
    pub recall: f64,
    /// Inverted lists in the index.
    pub nlist: usize,
    /// Lists probed per query (the effective width used).
    pub nprobe: usize,
    /// Mean candidate rows scored per approx query.
    pub avg_rows_scanned: f64,
    /// `avg_rows_scanned / (n - 1)` — the sublinearity evidence.
    pub scan_fraction: f64,
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// `(node, status, response body)` of one recorded query.
type Recorded = (usize, u16, Value);

/// Drives the full client load against `addr`: each client thread owns
/// one keep-alive connection and a deterministic query mix.
/// `query_suffix` is appended to every `/topk` query string (the
/// approx phase passes `&mode=approx...`). Responses are only
/// *recorded* here — verification happens after the timed phase so the
/// reported latencies/QPS measure the server, not the benchmark
/// harness's own direct-call scans.
fn drive_load(
    addr: SocketAddr,
    config: &ServeBenchConfig,
    query_suffix: &str,
) -> Result<(Vec<u64>, Vec<Recorded>, f64), String> {
    let phase_started = Instant::now();
    let mut handles = Vec::new();
    for client_id in 0..config.clients {
        let config = config.clone();
        let suffix = query_suffix.to_string();
        handles.push(std::thread::spawn(
            move || -> Result<(Vec<u64>, Vec<Recorded>), String> {
                let mut client =
                    HttpClient::connect(addr).map_err(|e| format!("client {client_id}: {e}"))?;
                let mut latencies = Vec::with_capacity(config.queries_per_client);
                let mut recorded = Vec::with_capacity(config.queries_per_client);
                // Simple per-client LCG over nodes: spread across the
                // space but with repeats, so the LRU cache sees hits.
                let mut state = config
                    .seed
                    .wrapping_add(client_id as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    | 1;
                for _ in 0..config.queries_per_client {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let node = (state >> 33) as usize % config.n;
                    let started = Instant::now();
                    let res = client
                        .get(&format!("/topk/{node}?k={}{suffix}", config.topk))
                        .map_err(|e| format!("client {client_id}: {e}"))?;
                    latencies.push(started.elapsed().as_micros() as u64);
                    recorded.push((node, res.status, res.body));
                }
                Ok((latencies, recorded))
            },
        ));
    }
    let mut latencies: Vec<u64> = Vec::new();
    let mut recorded: Vec<Recorded> = Vec::new();
    for handle in handles {
        let (mut lat, mut rec) = handle
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        latencies.append(&mut lat);
        recorded.append(&mut rec);
    }
    Ok((latencies, recorded, phase_started.elapsed().as_secs_f64()))
}

/// High-concurrency driver for the evented backend: the whole fleet of
/// keep-alive connections is opened up front and held open for the
/// entire phase, but multiplexed over at most [`MAX_DRIVER_THREADS`]
/// OS threads (round-robin within each thread) — 1000 connections must
/// not need 1000 *client* threads any more than they need 1000 server
/// threads. Returns the usual latency/record vectors plus the
/// open-connection count the server itself reported mid-phase, with
/// every connection up.
fn drive_load_multiplexed(
    addr: SocketAddr,
    config: &ServeBenchConfig,
) -> Result<(Vec<u64>, Vec<Recorded>, f64, usize), String> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let threads = config.clients.clamp(1, MAX_DRIVER_THREADS);
    let barrier = Arc::new(std::sync::Barrier::new(threads));
    let observed_open = Arc::new(AtomicUsize::new(0));
    let phase_started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let config = config.clone();
        let barrier = Arc::clone(&barrier);
        let observed_open = Arc::clone(&observed_open);
        handles.push(std::thread::spawn(
            move || -> Result<(Vec<u64>, Vec<Recorded>), String> {
                // This thread owns connections t, t+threads, ... of
                // the fleet, each with its own deterministic node mix.
                let ids: Vec<usize> = (t..config.clients).step_by(threads).collect();
                let mut conns = Vec::with_capacity(ids.len());
                for &id in &ids {
                    conns.push(HttpClient::connect(addr).map_err(|e| format!("conn {id}: {e}"))?);
                }
                let mut states: Vec<u64> = ids
                    .iter()
                    .map(|&id| {
                        config
                            .seed
                            .wrapping_add(id as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            | 1
                    })
                    .collect();
                // Every connection in the fleet is open before any
                // query: the server gauge must see the full count.
                barrier.wait();
                if t == 0 {
                    let open = conns[0]
                        .get("/stats")
                        .ok()
                        .and_then(|r| {
                            r.body
                                .get("connections")
                                .and_then(|c| c.get("open"))
                                .and_then(Value::as_usize)
                        })
                        .unwrap_or(0);
                    observed_open.store(open, Ordering::SeqCst);
                }
                let mut latencies = Vec::with_capacity(ids.len() * config.queries_per_client);
                let mut recorded = Vec::with_capacity(ids.len() * config.queries_per_client);
                for _ in 0..config.queries_per_client {
                    for (ci, client) in conns.iter_mut().enumerate() {
                        let state = &mut states[ci];
                        *state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        let node = (*state >> 33) as usize % config.n;
                        let started = Instant::now();
                        let res = client
                            .get(&format!("/topk/{node}?k={}", config.topk))
                            .map_err(|e| format!("conn {}: {e}", ids[ci]))?;
                        latencies.push(started.elapsed().as_micros() as u64);
                        recorded.push((node, res.status, res.body));
                    }
                }
                Ok((latencies, recorded))
            },
        ));
    }
    let mut latencies: Vec<u64> = Vec::new();
    let mut recorded: Vec<Recorded> = Vec::new();
    for handle in handles {
        let (mut lat, mut rec) = handle
            .join()
            .map_err(|_| "driver thread panicked".to_string())??;
        latencies.append(&mut lat);
        recorded.append(&mut rec);
    }
    Ok((
        latencies,
        recorded,
        phase_started.elapsed().as_secs_f64(),
        observed_open.load(std::sync::atomic::Ordering::SeqCst),
    ))
}

/// Verification pass (untimed): every recorded response must match the
/// direct library call — node ids and bit-exact scores.
fn verify_recorded(
    recorded: &[Recorded],
    engine: &QueryEngine,
    topk: usize,
) -> Result<(usize, usize), String> {
    let mut verified = 0usize;
    let mut mismatches = 0usize;
    for (node, status, body) in recorded {
        if *status != 200 {
            mismatches += 1;
            continue;
        }
        let direct = engine
            .top_k_similar(*node, topk)
            .map_err(|e| e.to_string())?;
        let matches = body
            .get("neighbors")
            .and_then(Value::as_array)
            .is_some_and(|neighbors| {
                neighbors.len() == direct.len()
                    && neighbors.iter().zip(&direct).all(|(wire, want)| {
                        wire.get("node").and_then(Value::as_usize) == Some(want.node)
                            && wire
                                .get("score")
                                .and_then(Value::as_f64)
                                .is_some_and(|s| s.to_bits() == want.score.to_bits())
                    })
            });
        if matches {
            verified += 1;
        } else {
            mismatches += 1;
        }
    }
    Ok((verified, mismatches))
}

/// Approx verification pass (untimed): every response must be
/// well-formed with the right neighbor count, and every returned
/// `(node, score)` must bit-match the exact cosine the oracle engine
/// computes for that pair — approximation may drop true neighbors,
/// never corrupt scores. Returns `(verified, mismatches, recall@k)`.
fn verify_recorded_approx(
    recorded: &[Recorded],
    oracle: &QueryEngine,
    topk: usize,
) -> Result<(usize, usize, f64), String> {
    use std::collections::HashMap;
    let mut verified = 0usize;
    let mut mismatches = 0usize;
    let mut hit = 0usize;
    let mut total = 0usize;
    for (node, status, body) in recorded {
        if *status != 200 {
            mismatches += 1;
            continue;
        }
        // Full exact ranking of this node (k clamps to n - 1; the
        // oracle's LRU makes repeats cheap).
        let full = oracle
            .top_k_similar(*node, usize::MAX)
            .map_err(|e| e.to_string())?;
        let exact_bits: HashMap<usize, u64> = full
            .iter()
            .map(|nb| (nb.node, nb.score.to_bits()))
            .collect();
        let want_len = topk.min(full.len());
        let Some(neighbors) = body.get("neighbors").and_then(Value::as_array) else {
            mismatches += 1;
            continue;
        };
        let well_formed = neighbors.len() == want_len
            && neighbors.iter().all(|wire| {
                let id = wire.get("node").and_then(Value::as_usize);
                let score = wire.get("score").and_then(Value::as_f64);
                match (id, score) {
                    (Some(id), Some(score)) => exact_bits.get(&id) == Some(&score.to_bits()),
                    _ => false,
                }
            });
        if !well_formed {
            mismatches += 1;
            continue;
        }
        verified += 1;
        let returned: Vec<usize> = neighbors
            .iter()
            .filter_map(|wire| wire.get("node").and_then(Value::as_usize))
            .collect();
        total += want_len;
        hit += full
            .iter()
            .take(want_len)
            .filter(|nb| returned.contains(&nb.node))
            .count();
    }
    let recall = if total == 0 {
        0.0
    } else {
        hit as f64 / total as f64
    };
    Ok((verified, mismatches, recall))
}

fn summarize(
    mut latencies: Vec<u64>,
    wall_secs: f64,
    verified: usize,
    mismatches: usize,
) -> PhaseStats {
    latencies.sort_unstable();
    let total_queries = latencies.len();
    let mean_us = if total_queries == 0 {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / total_queries as f64
    };
    PhaseStats {
        total_queries,
        verified,
        mismatches,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        mean_us,
        max_us: latencies.last().copied().unwrap_or(0) as f64,
        qps: if wall_secs > 0.0 {
            total_queries as f64 / wall_secs
        } else {
            0.0
        },
        wall_secs,
    }
}

/// `(count, sum_us)` of one obs stage histogram, zero when the stage
/// has never fired.
fn stage_totals(name: &str) -> (u64, u64) {
    mvag_obs::stage(name)
        .map(|s| (s.count, s.sum_us))
        .unwrap_or((0, 0))
}

/// Replays a short traced load against the still-running server and
/// reports where request time went: batcher queue wait vs backend
/// (kernel) time, from the `serve.queue_wait` / `serve.backend` span
/// stages. Runs after the timed phase so tracing cost cannot pollute
/// the headline latencies.
fn measure_stage_split(addr: SocketAddr, config: &ServeBenchConfig) -> Result<Value, String> {
    let split_config = ServeBenchConfig {
        clients: config.clients.clamp(1, 4),
        queries_per_client: config.queries_per_client.clamp(1, 16),
        ..config.clone()
    };
    let was_enabled = mvag_obs::enabled();
    let queue_before = stage_totals("serve.queue_wait");
    let backend_before = stage_totals("serve.backend");
    mvag_obs::set_enabled(true);
    let driven = drive_load(addr, &split_config, "");
    mvag_obs::set_enabled(was_enabled);
    driven?;
    let (queue_after, backend_after) = (
        stage_totals("serve.queue_wait"),
        stage_totals("serve.backend"),
    );
    let queue_count = queue_after.0 - queue_before.0;
    let queue_us = queue_after.1 - queue_before.1;
    let backend_count = backend_after.0 - backend_before.0;
    let backend_us = backend_after.1 - backend_before.1;
    let mean = |sum: u64, count: u64| sum as f64 / count.max(1) as f64;
    Ok(Value::object(vec![
        (
            "queries",
            Value::from(split_config.clients * split_config.queries_per_client),
        ),
        ("queue_wait_count", Value::from(queue_count)),
        ("queue_wait_total_us", Value::from(queue_us)),
        (
            "queue_wait_mean_us",
            Value::from(mean(queue_us, queue_count)),
        ),
        ("backend_count", Value::from(backend_count)),
        ("backend_total_us", Value::from(backend_us)),
        (
            "backend_mean_us",
            Value::from(mean(backend_us, backend_count)),
        ),
        (
            "queue_wait_share",
            Value::from(queue_us as f64 / (queue_us + backend_us).max(1) as f64),
        ),
    ]))
}

/// The tracing-overhead gate: interleaved repeats of the same load in
/// three modes — untraced baseline, instrumentation compiled in but
/// disabled (the shipping default; baseline and disabled run the same
/// code path, so this leg measures that the per-site atomic load stays
/// inside run-to-run noise), and tracing fully enabled. Pools
/// latencies per mode across repeats, gates the disabled/enabled p50s
/// against the baseline, and scrape-validates the live `/metrics`
/// page while the stage histograms are populated.
fn run_obs_gate(addr: SocketAddr, config: &ServeBenchConfig) -> Result<Value, String> {
    let gate_config = ServeBenchConfig {
        clients: config.clients.clamp(1, 8),
        queries_per_client: config.queries_per_client.clamp(20, 200),
        ..config.clone()
    };
    let was_enabled = mvag_obs::enabled();
    // Warmup: fault in connections, caches, and batcher threads.
    mvag_obs::set_enabled(false);
    drive_load(addr, &gate_config, "")?;
    let mut pooled: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for _rep in 0..OBS_GATE_REPEATS {
        for (mode, bucket) in pooled.iter_mut().enumerate() {
            mvag_obs::set_enabled(mode == 2);
            let driven = drive_load(addr, &gate_config, "");
            mvag_obs::set_enabled(false);
            let (mut latencies, _, _) = driven?;
            bucket.append(&mut latencies);
        }
    }
    // EXPLAIN leg (tracing off): every response must carry the spliced
    // cost object; its latency is reported alongside the gate modes so
    // the cost of asking for a cost profile is itself measured.
    let (mut explain_latencies, explain_recorded, _) =
        drive_load(addr, &gate_config, "&explain=1")?;
    for (node, status, body) in &explain_recorded {
        if *status != 200 {
            return Err(format!("explain leg: /topk/{node} answered {status}"));
        }
        let ok = body
            .get("cost")
            .and_then(|c| c.get("path"))
            .and_then(|p| p.as_str())
            .is_some();
        if !ok {
            return Err(format!(
                "explain leg: /topk/{node}?explain=1 response has no cost object"
            ));
        }
    }

    // The enabled legs populated the sgla_stage_* histograms; the
    // exported page must be conformant Prometheus text format and
    // carry every observability family the serve layer promises.
    let (status, page) = HttpClient::connect(addr)
        .and_then(|mut c| c.get_text("/metrics"))
        .map_err(|e| format!("scraping /metrics: {e}"))?;
    mvag_obs::set_enabled(was_enabled);
    if status != 200 {
        return Err(format!("/metrics answered {status}"));
    }
    sgla_serve::metrics::validate_prometheus(&page)
        .map_err(|e| format!("/metrics failed Prometheus validation: {e}"))?;
    for series in [
        "sgla_stage_duration_us_bucket",
        "sgla_slow_query_captured_total",
        "sgla_slo_objective_p99_us",
        "sgla_compact_duration_us_bucket",
    ] {
        if !page.contains(series) {
            return Err(format!("no {series} series on /metrics after traced load"));
        }
    }
    // The health endpoint must answer with a well-formed verdict (the
    // gate load is healthy traffic, so `unhealthy`/503 is a failure).
    let health = HttpClient::connect(addr)
        .and_then(|mut c| c.get("/health"))
        .map_err(|e| format!("scraping /health: {e}"))?;
    if health.status != 200 {
        return Err(format!("/health answered {}", health.status));
    }
    match health.body.get("status").and_then(|s| s.as_str()) {
        Some("ok") | Some("degraded") => {}
        other => return Err(format!("/health reported {other:?}")),
    }

    let p50_of = |latencies: &mut Vec<u64>| {
        latencies.sort_unstable();
        percentile(latencies, 0.50)
    };
    let [mut baseline, mut disabled, mut enabled] = pooled;
    let baseline_p50 = p50_of(&mut baseline);
    let disabled_p50 = p50_of(&mut disabled);
    let enabled_p50 = p50_of(&mut enabled);
    let explain_p50 = p50_of(&mut explain_latencies);
    let disabled_limit = baseline_p50 * OBS_DISABLED_MAX_RATIO + OBS_GATE_SLACK_US;
    let enabled_limit = baseline_p50 * OBS_ENABLED_MAX_RATIO + OBS_GATE_SLACK_US;
    if disabled_p50 > disabled_limit {
        return Err(format!(
            "tracing-disabled p50 {disabled_p50:.0} us exceeds {disabled_limit:.0} us \
             (baseline {baseline_p50:.0} us × {OBS_DISABLED_MAX_RATIO} + {OBS_GATE_SLACK_US} us)"
        ));
    }
    if enabled_p50 > enabled_limit {
        return Err(format!(
            "tracing-enabled p50 {enabled_p50:.0} us exceeds {enabled_limit:.0} us \
             (baseline {baseline_p50:.0} us × {OBS_ENABLED_MAX_RATIO} + {OBS_GATE_SLACK_US} us)"
        ));
    }
    let ratio = |p: f64| {
        if baseline_p50 > 0.0 {
            p / baseline_p50
        } else {
            0.0
        }
    };
    Ok(Value::object(vec![
        ("repeats", Value::from(OBS_GATE_REPEATS)),
        ("samples_per_mode", Value::from(baseline.len())),
        ("baseline_p50_us", Value::from(baseline_p50)),
        ("disabled_p50_us", Value::from(disabled_p50)),
        ("enabled_p50_us", Value::from(enabled_p50)),
        ("disabled_ratio", Value::from(ratio(disabled_p50))),
        ("enabled_ratio", Value::from(ratio(enabled_p50))),
        ("explain_p50_us", Value::from(explain_p50)),
        ("explain_ratio", Value::from(ratio(explain_p50))),
        (
            "explain_responses_checked",
            Value::from(explain_recorded.len()),
        ),
        ("disabled_limit_us", Value::from(disabled_limit)),
        ("enabled_limit_us", Value::from(enabled_limit)),
        ("metrics_page_validated", Value::Bool(true)),
        ("health_scraped", Value::Bool(true)),
        ("gate", Value::from("pass")),
    ]))
}

/// Runs the benchmark. On success every response matched its direct
/// library-call reference; any mismatch is an `Err`. With
/// `config.shards >= 2` a second phase replays the same load against a
/// shard router over the same artifact (still verified against the
/// monolithic engine).
///
/// # Errors
/// Training/serving failures, transport errors, or response
/// mismatches, rendered as strings for the CLI.
pub fn run(config: &ServeBenchConfig) -> Result<ServeBenchReport, String> {
    // The threaded backend pins one worker per keep-alive connection
    // and the plain driver spawns one OS thread per client — neither
    // survives a 1000-client fleet on a small host, so that phase
    // auto-skips above the cutoff rather than deadlocking.
    let run_threaded = config.backend.wants_threaded() && config.clients <= MAX_THREADED_CLIENTS;
    let run_evented = config.backend.wants_evented() && cfg!(target_os = "linux");
    if !run_threaded && !run_evented {
        return Err(format!(
            "no backend to load: backend = {}, clients = {} (the threaded phase skips above \
             {MAX_THREADED_CLIENTS} clients; the evented backend needs Linux)",
            config.backend.as_str(),
            config.clients
        ));
    }
    if (config.shards >= 2 || config.index) && config.clients > MAX_THREADED_CLIENTS {
        return Err(format!(
            "the sharded/approx phases use the thread-per-client driver; \
             run them with clients <= {MAX_THREADED_CLIENTS}"
        ));
    }

    let mvag = mvag_data::toy_mvag(config.n, config.k, config.seed);
    let mut train_config = TrainConfig::default();
    train_config.sgla.seed = config.seed;
    train_config.embed.dim = config.dim;
    let train_started = Instant::now();
    let artifact = Artifact::train(&mvag, &train_config).map_err(|e| e.to_string())?;
    let train_secs = train_started.elapsed().as_secs_f64();

    let server_config = ServerConfig {
        addr: "127.0.0.1:0".parse().expect("static addr"),
        workers: config.workers,
        max_batch: config.max_batch,
        ..ServerConfig::default()
    };

    // Phase 1: monolithic engine, loaded through each requested
    // transport. The threaded run doubles as the latency oracle for
    // the evented p99 gate; both serve the *same* engine, so the
    // verification pass proves byte-level agreement between backends.
    let engine = Arc::new(
        QueryEngine::new(artifact.clone(), EngineConfig::default()).map_err(|e| e.to_string())?,
    );
    let mut threaded: Option<PhaseStats> = None;
    let mut evented: Option<PhaseStats> = None;
    let mut cache_counts: Option<(u64, u64)> = None;
    let mut threaded_server_stats = Value::Null;
    let mut evented_server_stats = Value::Null;
    let mut stage_split = Value::Null;
    let mut obs_overhead: Option<Value> = None;
    let mut concurrent_connections: Option<usize> = None;

    if run_threaded {
        let server =
            Server::start(Arc::clone(&engine), &server_config).map_err(|e| e.to_string())?;
        let addr = server.local_addr();
        let (latencies, recorded, wall_secs) = drive_load(addr, config, "")?;
        // Snapshot server-side counters before the verification pass
        // adds its own direct calls to the engine's cache statistics.
        if cache_counts.is_none() {
            cache_counts = Some(engine.cache_stats());
        }
        threaded_server_stats = HttpClient::connect(addr)
            .and_then(|mut c| c.get("/stats"))
            .map(|r| r.body)
            .unwrap_or(Value::Null);
        // Traced replay + optional overhead gate run against the
        // still-live server, after the timed phase so neither can
        // touch the headline numbers. They attach to the evented
        // server when that phase runs (the primary transport), so
        // only run them here when this is the sole phase.
        if !run_evented {
            stage_split = measure_stage_split(addr, config)?;
            if config.obs_gate {
                obs_overhead = Some(run_obs_gate(addr, config)?);
            }
        }
        server.shutdown();
        let (verified, mismatches) = verify_recorded(&recorded, &engine, config.topk)?;
        let stats = summarize(latencies, wall_secs, verified, mismatches);
        if stats.mismatches > 0 {
            return Err(format!(
                "{} of {} threaded responses did not match direct library calls",
                stats.mismatches, stats.total_queries
            ));
        }
        threaded = Some(stats);
    }

    if run_evented {
        let evented_config = ServerConfig {
            backend: ServeBackend::Evented,
            ..server_config.clone()
        };
        let server =
            Server::start(Arc::clone(&engine), &evented_config).map_err(|e| e.to_string())?;
        let addr = server.local_addr();
        let (latencies, recorded, wall_secs) = if config.clients > MAX_THREADED_CLIENTS {
            let (latencies, recorded, wall_secs, open) = drive_load_multiplexed(addr, config)?;
            // The server's own gauge, read with the whole fleet
            // connected, is the concurrency evidence.
            if open < config.clients {
                return Err(format!(
                    "server reported {open} open connections with the full fleet connected; \
                     expected at least {}",
                    config.clients
                ));
            }
            concurrent_connections = Some(open);
            (latencies, recorded, wall_secs)
        } else {
            drive_load(addr, config, "")?
        };
        if cache_counts.is_none() {
            cache_counts = Some(engine.cache_stats());
        }
        evented_server_stats = HttpClient::connect(addr)
            .and_then(|mut c| c.get("/stats"))
            .map(|r| r.body)
            .unwrap_or(Value::Null);
        stage_split = measure_stage_split(addr, config)?;
        if config.obs_gate {
            obs_overhead = Some(run_obs_gate(addr, config)?);
        }
        server.shutdown();
        let (verified, mismatches) = verify_recorded(&recorded, &engine, config.topk)?;
        let stats = summarize(latencies, wall_secs, verified, mismatches);
        if stats.mismatches > 0 {
            return Err(format!(
                "{} of {} evented responses did not match direct library calls",
                stats.mismatches, stats.total_queries
            ));
        }
        evented = Some(stats);
    }

    // Regression gate: with both transports loaded, a collapsed event
    // loop shows up as a blown-out evented p99 relative to the
    // threaded oracle.
    if let (Some(t), Some(e)) = (&threaded, &evented) {
        let limit = t.p99_us * EVENTED_P99_MAX_RATIO + EVENTED_P99_SLACK_US;
        if e.p99_us > limit {
            return Err(format!(
                "evented p99 {:.0} us exceeds the gate {:.0} us \
                 (threaded p99 {:.0} us × {EVENTED_P99_MAX_RATIO} + {EVENTED_P99_SLACK_US} us)",
                e.p99_us, limit, t.p99_us
            ));
        }
    }

    // Headline numbers: the threaded phase when it ran (back-compat
    // with every earlier report), otherwise the evented phase.
    let mono = threaded
        .clone()
        .or_else(|| evented.clone())
        .expect("at least one backend ran");
    let (cache_hits, cache_misses) = cache_counts.unwrap_or((0, 0));
    let server_stats = if threaded.is_some() {
        threaded_server_stats
    } else {
        evented_server_stats.clone()
    };

    // Phase 2 (optional): the same load against a shard router over a
    // sharded copy of the same artifact, verified against the same
    // monolithic engine — the router must be indistinguishable.
    let mut sharded: Option<PhaseStats> = None;
    let mut sharded_server_stats = Value::Null;
    if config.shards >= 2 {
        let dir = std::env::temp_dir().join(format!(
            "sgla-serve-bench-shards-{}-{}",
            config.shards,
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        artifact
            .save_sharded(&dir, config.shards)
            .map_err(|e| e.to_string())?;
        let router = ShardRouter::open(&dir, RouterConfig::default()).map_err(|e| e.to_string())?;
        let server =
            Server::start_backend(Arc::new(router), &server_config).map_err(|e| e.to_string())?;
        let addr = server.local_addr();
        let (latencies, recorded, wall_secs) = drive_load(addr, config, "")?;
        sharded_server_stats = HttpClient::connect(addr)
            .and_then(|mut c| c.get("/stats"))
            .map(|r| r.body)
            .unwrap_or(Value::Null);
        server.shutdown();
        let (verified, mismatches) = verify_recorded(&recorded, &engine, config.topk)?;
        let stats = summarize(latencies, wall_secs, verified, mismatches);
        std::fs::remove_dir_all(&dir).ok();
        if stats.mismatches > 0 {
            return Err(format!(
                "{} of {} sharded responses did not match the monolithic engine",
                stats.mismatches, stats.total_queries
            ));
        }
        sharded = Some(stats);
    }

    // Phase 3 (optional): the same load as mode=approx queries against
    // an IVF-indexed engine over the same artifact. The exact engine
    // is the oracle: recall@k is measured per response, every returned
    // score must bit-match the exact cosine of its pair, and the
    // index's own scan counters prove the probes were sublinear.
    let mut approx: Option<ApproxPhase> = None;
    let mut approx_server_stats = Value::Null;
    if config.index {
        let engine_approx = Arc::new(
            QueryEngine::new(
                artifact.clone(),
                EngineConfig {
                    index: Some(IvfConfig {
                        nlist: config.nlist,
                        seed: config.seed,
                    }),
                    ..EngineConfig::default()
                },
            )
            .map_err(|e| e.to_string())?,
        );
        let index = engine_approx.index().expect("index was configured");
        let nlist = index.nlist();
        let nprobe = if config.nprobe == 0 {
            index.default_nprobe()
        } else {
            config.nprobe.min(nlist)
        };
        let server =
            Server::start(Arc::clone(&engine_approx), &server_config).map_err(|e| e.to_string())?;
        let addr = server.local_addr();
        let suffix = format!("&mode=approx&nprobe={nprobe}");
        let (latencies, recorded, wall_secs) = drive_load(addr, config, &suffix)?;
        // Scan-work counters before verification touches anything.
        let index_stats = engine_approx.index_stats();
        approx_server_stats = HttpClient::connect(addr)
            .and_then(|mut c| c.get("/stats"))
            .map(|r| r.body)
            .unwrap_or(Value::Null);
        server.shutdown();
        let (verified, mismatches, recall) =
            verify_recorded_approx(&recorded, &engine, config.topk)?;
        let stats = summarize(latencies, wall_secs, verified, mismatches);
        if stats.mismatches > 0 {
            return Err(format!(
                "{} of {} approx responses were malformed or carried non-exact scores",
                stats.mismatches, stats.total_queries
            ));
        }
        if recall < MIN_RECALL {
            return Err(format!(
                "approx recall@{} = {recall:.3} below the {MIN_RECALL} floor \
                 (nlist = {nlist}, nprobe = {nprobe})",
                config.topk
            ));
        }
        let avg_rows_scanned =
            index_stats.rows_scanned as f64 / index_stats.approx_queries.max(1) as f64;
        let scan_fraction = avg_rows_scanned / (config.n.saturating_sub(1)) as f64;
        if scan_fraction > MAX_SCAN_FRACTION {
            return Err(format!(
                "approx queries scanned {:.0}% of the rows on average — not sublinear \
                 (nlist = {nlist}, nprobe = {nprobe})",
                scan_fraction * 100.0
            ));
        }
        approx = Some(ApproxPhase {
            stats,
            recall,
            nlist,
            nprobe,
            avg_rows_scanned,
            scan_fraction,
        });
    }

    let mut results = vec![
        ("config", {
            Value::object(vec![
                ("backend", Value::from(config.backend.as_str())),
                ("n", Value::from(config.n)),
                ("k", Value::from(config.k)),
                ("dim", Value::from(config.dim)),
                ("clients", Value::from(config.clients)),
                ("queries_per_client", Value::from(config.queries_per_client)),
                ("topk", Value::from(config.topk)),
                ("workers", Value::from(config.workers)),
                ("max_batch", Value::from(config.max_batch)),
                ("seed", Value::from(config.seed)),
                ("shards", Value::from(config.shards)),
                ("index", Value::Bool(config.index)),
                ("nlist", Value::from(config.nlist)),
                ("nprobe", Value::from(config.nprobe)),
            ])
        }),
        ("results", {
            let mut obj = mono.to_json();
            if let Value::Object(map) = &mut obj {
                map.insert("train_secs".into(), Value::from(train_secs));
                map.insert("cache_hits".into(), Value::from(cache_hits));
                map.insert("cache_misses".into(), Value::from(cache_misses));
            }
            obj
        }),
        ("server_stats", server_stats),
        ("stage_split", stage_split.clone()),
    ];
    // With both transports loaded, the evented phase gets its own
    // section plus the gate ratio; with only the evented transport its
    // numbers already *are* "results".
    if let (Some(t), Some(e)) = (&threaded, &evented) {
        results.push(("results_evented", e.to_json()));
        results.push((
            "evented_vs_threaded_p99",
            Value::from(if t.p99_us > 0.0 {
                e.p99_us / t.p99_us
            } else {
                0.0
            }),
        ));
        results.push(("server_stats_evented", evented_server_stats.clone()));
    }
    if let Some(open) = concurrent_connections {
        results.push(("concurrent_connections", Value::from(open)));
    }
    if let Some(gate) = &obs_overhead {
        results.push(("obs_overhead", gate.clone()));
    }
    if let Some(stats) = &sharded {
        results.push(("results_sharded", stats.to_json()));
        results.push((
            "sharded_vs_monolithic_p50",
            Value::from(if mono.p50_us > 0.0 {
                stats.p50_us / mono.p50_us
            } else {
                0.0
            }),
        ));
        results.push(("server_stats_sharded", sharded_server_stats));
    }
    if let Some(phase) = &approx {
        results.push(("results_approx", {
            let mut obj = phase.stats.to_json();
            if let Value::Object(map) = &mut obj {
                map.insert("recall_at_k".into(), Value::from(phase.recall));
                map.insert("nlist".into(), Value::from(phase.nlist));
                map.insert("nprobe".into(), Value::from(phase.nprobe));
                map.insert(
                    "avg_rows_scanned".into(),
                    Value::from(phase.avg_rows_scanned),
                );
                map.insert("scan_fraction".into(), Value::from(phase.scan_fraction));
            }
            obj
        }));
        results.push((
            "approx_vs_exact_p50",
            Value::from(if mono.p50_us > 0.0 {
                phase.stats.p50_us / mono.p50_us
            } else {
                0.0
            }),
        ));
        results.push(("server_stats_approx", approx_server_stats));
    }
    let json = Value::object(results);

    Ok(ServeBenchReport {
        total_queries: mono.total_queries,
        verified: mono.verified,
        mismatches: mono.mismatches,
        p50_us: mono.p50_us,
        p99_us: mono.p99_us,
        mean_us: mono.mean_us,
        max_us: mono.max_us,
        qps: mono.qps,
        wall_secs: mono.wall_secs,
        train_secs,
        cache_hits,
        cache_misses,
        evented,
        concurrent_connections,
        sharded,
        approx,
        stage_split,
        obs_overhead,
        json,
    })
}

/// Runs the benchmark and writes the JSON report to `out`.
///
/// # Errors
/// See [`run`]; additionally I/O failures writing the report.
pub fn run_to_file(
    config: &ServeBenchConfig,
    out: &std::path::Path,
) -> Result<ServeBenchReport, String> {
    let report = run(config)?;
    std::fs::write(out, report.json.to_string_pretty())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The stage split (and the gate) toggle the process-global
    /// tracing flag and read global stage histograms; runs must not
    /// overlap.
    static RUN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn locked_run(config: &ServeBenchConfig) -> Result<ServeBenchReport, String> {
        let _guard = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        run(config)
    }

    #[test]
    fn small_load_run_verifies_all_responses() {
        let config = ServeBenchConfig {
            n: 80,
            k: 2,
            dim: 8,
            clients: 4,
            queries_per_client: 10,
            topk: 5,
            workers: 4,
            ..Default::default()
        };
        let report = locked_run(&config).unwrap();
        assert_eq!(report.total_queries, 40);
        assert_eq!(report.verified, 40);
        assert_eq!(report.mismatches, 0);
        assert!(report.p50_us > 0.0);
        assert!(report.p99_us >= report.p50_us);
        assert!(report.qps > 0.0);
        assert!(report.json.get("results").is_some());
        assert!(report.sharded.is_none());
        assert!(report.json.get("results_sharded").is_none());
        assert!(report.approx.is_none());
        assert!(report.json.get("results_approx").is_none());
    }

    #[test]
    fn approx_phase_measures_recall_and_sublinear_scans() {
        let config = ServeBenchConfig {
            n: 160,
            k: 2,
            dim: 8,
            clients: 4,
            queries_per_client: 10,
            topk: 5,
            workers: 4,
            index: true,
            nlist: 8,
            nprobe: 3,
            ..Default::default()
        };
        let report = locked_run(&config).unwrap();
        let approx = report.approx.expect("approx phase ran");
        assert_eq!(approx.stats.total_queries, 40);
        assert_eq!(approx.stats.mismatches, 0);
        assert!(approx.recall >= MIN_RECALL, "recall {}", approx.recall);
        assert!(
            approx.scan_fraction <= MAX_SCAN_FRACTION,
            "scan fraction {}",
            approx.scan_fraction
        );
        assert_eq!(approx.nlist, 8);
        assert_eq!(approx.nprobe, 3);
        assert!(report.json.get("results_approx").is_some());
        assert!(report.json.get("approx_vs_exact_p50").is_some());
    }

    #[test]
    fn sharded_phase_verifies_against_monolithic() {
        let config = ServeBenchConfig {
            n: 80,
            k: 2,
            dim: 8,
            clients: 4,
            queries_per_client: 10,
            topk: 5,
            workers: 4,
            shards: 3,
            ..Default::default()
        };
        let report = locked_run(&config).unwrap();
        let sharded = report.sharded.expect("sharded phase ran");
        assert_eq!(sharded.total_queries, 40);
        assert_eq!(sharded.verified, 40);
        assert_eq!(sharded.mismatches, 0);
        assert!(report.json.get("results_sharded").is_some());
        assert!(report.json.get("sharded_vs_monolithic_p50").is_some());
    }

    #[test]
    fn obs_gate_passes_and_split_is_recorded() {
        let config = ServeBenchConfig {
            n: 80,
            k: 2,
            dim: 8,
            clients: 4,
            queries_per_client: 10,
            topk: 5,
            workers: 4,
            obs_gate: true,
            ..Default::default()
        };
        let report = locked_run(&config).unwrap();
        // Every run measures the queue-wait vs backend split from the
        // tracing stages.
        let split = &report.stage_split;
        assert!(split.get("queue_wait_count").unwrap().as_f64().unwrap() > 0.0);
        assert!(split.get("backend_count").unwrap().as_f64().unwrap() > 0.0);
        assert!(split.get("backend_mean_us").unwrap().as_f64().unwrap() > 0.0);
        let share = split.get("queue_wait_share").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&share), "share {share}");
        // The gate ran, passed, and validated the live /metrics page.
        let gate = report.obs_overhead.expect("gate requested");
        assert_eq!(gate.get("gate").unwrap().as_str(), Some("pass"));
        assert_eq!(
            gate.get("metrics_page_validated").unwrap().as_bool(),
            Some(true)
        );
        assert!(gate.get("baseline_p50_us").unwrap().as_f64().unwrap() > 0.0);
        assert!(gate.get("samples_per_mode").unwrap().as_usize().unwrap() >= 60);
        assert!(report.json.get("obs_overhead").is_some());
        assert!(report.json.get("stage_split").is_some());
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 0.5), 5.0);
        assert_eq!(percentile(&v, 0.99), 10.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
    }
}

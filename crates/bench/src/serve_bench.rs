//! Load benchmark for the `sgla-serve` HTTP front end.
//!
//! Trains an artifact, serves it on a loopback socket, then drives it
//! with N concurrent keep-alive clients issuing top-k queries. Every
//! response is verified against a direct [`QueryEngine`] call (node
//! ids and bit-exact scores), so the benchmark doubles as a
//! correctness check under concurrency. With `shards >= 2` the same
//! load is replayed against a [`sgla_serve::ShardRouter`] over a
//! sharded copy of the same artifact — every sharded response is
//! verified bit-exactly against the *monolithic* engine, and the
//! report carries both latency profiles side by side. With
//! `index = true` a third phase replays the load as
//! `mode=approx` queries against an IVF-indexed engine: the exact
//! engine acts as the recall oracle (recall@k is *measured*, the run
//! fails below [`MIN_RECALL`]), returned scores must bit-match the
//! exact cosine of their pair, and the report records how many rows
//! the probes actually scanned (the sublinearity evidence). Reports
//! client-side p50/p99 latency and throughput plus the server's own
//! counters, and writes everything to a JSON report
//! (`BENCH_serve.json` by default).

use mvag_data::json::Value;
use sgla_serve::{
    Artifact, EngineConfig, HttpClient, IvfConfig, QueryEngine, RouterConfig, Server, ServerConfig,
    ShardRouter, TrainConfig,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// An approx phase whose measured recall@k falls below this fails the
/// whole run: approximation is a latency trade, not silent decay.
pub const MIN_RECALL: f64 = 0.9;

/// An approx phase that scans more than this fraction of the rows per
/// query is not approximating anything — fail loudly.
pub const MAX_SCAN_FRACTION: f64 = 0.75;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Nodes in the synthetic training MVAG.
    pub n: usize,
    /// Planted clusters.
    pub k: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Queries issued per client.
    pub queries_per_client: usize,
    /// `k` of each top-k query.
    pub topk: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Upper bound on micro-batched queries per kernel pass.
    pub max_batch: usize,
    /// RNG seed (training + query mix).
    pub seed: u64,
    /// Row-range shards for the sharded phase (`< 2` skips it).
    pub shards: usize,
    /// Run the IVF approx phase (`--index ivf`).
    pub index: bool,
    /// Inverted lists for the approx phase (0 = auto, `⌈√n⌉`).
    pub nlist: usize,
    /// Lists probed per approx query (0 = index default, `⌈√nlist⌉`).
    pub nprobe: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            n: 400,
            k: 3,
            dim: 32,
            clients: 32,
            queries_per_client: 40,
            topk: 10,
            workers: 8,
            max_batch: 64,
            seed: 42,
            shards: 0,
            index: false,
            nlist: 0,
            nprobe: 0,
        }
    }
}

/// Latency/throughput summary of one load phase.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Total queries issued.
    pub total_queries: usize,
    /// Queries whose response matched the direct library call.
    pub verified: usize,
    /// Mismatches (must be 0 for a healthy run).
    pub mismatches: usize,
    /// Client-observed median latency in microseconds.
    pub p50_us: f64,
    /// 99th percentile latency in microseconds.
    pub p99_us: f64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Worst observed latency in microseconds.
    pub max_us: f64,
    /// Aggregate throughput over the loaded phase (queries/second).
    pub qps: f64,
    /// Wall-clock of the query phase in seconds.
    pub wall_secs: f64,
}

impl PhaseStats {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("total_queries", Value::from(self.total_queries)),
            ("verified", Value::from(self.verified)),
            ("mismatches", Value::from(self.mismatches)),
            ("p50_us", Value::from(self.p50_us)),
            ("p99_us", Value::from(self.p99_us)),
            ("mean_us", Value::from(self.mean_us)),
            ("max_us", Value::from(self.max_us)),
            ("qps", Value::from(self.qps)),
            ("wall_secs", Value::from(self.wall_secs)),
        ])
    }
}

/// Outcome of one benchmark run.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Total queries issued in the monolithic phase.
    pub total_queries: usize,
    /// Queries whose response matched the direct library call.
    pub verified: usize,
    /// Mismatches (must be 0 for a healthy run).
    pub mismatches: usize,
    /// Client-observed latency percentiles in microseconds.
    pub p50_us: f64,
    /// 99th percentile latency in microseconds.
    pub p99_us: f64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Worst observed latency in microseconds.
    pub max_us: f64,
    /// Aggregate throughput over the loaded phase (queries/second).
    pub qps: f64,
    /// Wall-clock of the query phase in seconds.
    pub wall_secs: f64,
    /// Seconds spent training the artifact.
    pub train_secs: f64,
    /// Top-k cache hits observed by the engine.
    pub cache_hits: u64,
    /// Top-k cache misses observed by the engine.
    pub cache_misses: u64,
    /// The sharded-phase profile, when `shards >= 2` was requested.
    /// Verified against the *monolithic* engine, bit-exactly.
    pub sharded: Option<PhaseStats>,
    /// The approx-phase profile, when `index` was requested. Recall
    /// and scan work are measured against the exact oracle.
    pub approx: Option<ApproxPhase>,
    /// The full JSON document written to the report file.
    pub json: Value,
}

/// Outcome of the IVF approx phase: latency profile plus the measured
/// quality/work trade against the exact oracle.
#[derive(Debug, Clone)]
pub struct ApproxPhase {
    /// Latency/throughput of the approx load.
    pub stats: PhaseStats,
    /// Measured recall@k against the exact engine.
    pub recall: f64,
    /// Inverted lists in the index.
    pub nlist: usize,
    /// Lists probed per query (the effective width used).
    pub nprobe: usize,
    /// Mean candidate rows scored per approx query.
    pub avg_rows_scanned: f64,
    /// `avg_rows_scanned / (n - 1)` — the sublinearity evidence.
    pub scan_fraction: f64,
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// `(node, status, response body)` of one recorded query.
type Recorded = (usize, u16, Value);

/// Drives the full client load against `addr`: each client thread owns
/// one keep-alive connection and a deterministic query mix.
/// `query_suffix` is appended to every `/topk` query string (the
/// approx phase passes `&mode=approx...`). Responses are only
/// *recorded* here — verification happens after the timed phase so the
/// reported latencies/QPS measure the server, not the benchmark
/// harness's own direct-call scans.
fn drive_load(
    addr: SocketAddr,
    config: &ServeBenchConfig,
    query_suffix: &str,
) -> Result<(Vec<u64>, Vec<Recorded>, f64), String> {
    let phase_started = Instant::now();
    let mut handles = Vec::new();
    for client_id in 0..config.clients {
        let config = config.clone();
        let suffix = query_suffix.to_string();
        handles.push(std::thread::spawn(
            move || -> Result<(Vec<u64>, Vec<Recorded>), String> {
                let mut client =
                    HttpClient::connect(addr).map_err(|e| format!("client {client_id}: {e}"))?;
                let mut latencies = Vec::with_capacity(config.queries_per_client);
                let mut recorded = Vec::with_capacity(config.queries_per_client);
                // Simple per-client LCG over nodes: spread across the
                // space but with repeats, so the LRU cache sees hits.
                let mut state = config
                    .seed
                    .wrapping_add(client_id as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    | 1;
                for _ in 0..config.queries_per_client {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let node = (state >> 33) as usize % config.n;
                    let started = Instant::now();
                    let res = client
                        .get(&format!("/topk/{node}?k={}{suffix}", config.topk))
                        .map_err(|e| format!("client {client_id}: {e}"))?;
                    latencies.push(started.elapsed().as_micros() as u64);
                    recorded.push((node, res.status, res.body));
                }
                Ok((latencies, recorded))
            },
        ));
    }
    let mut latencies: Vec<u64> = Vec::new();
    let mut recorded: Vec<Recorded> = Vec::new();
    for handle in handles {
        let (mut lat, mut rec) = handle
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        latencies.append(&mut lat);
        recorded.append(&mut rec);
    }
    Ok((latencies, recorded, phase_started.elapsed().as_secs_f64()))
}

/// Verification pass (untimed): every recorded response must match the
/// direct library call — node ids and bit-exact scores.
fn verify_recorded(
    recorded: &[Recorded],
    engine: &QueryEngine,
    topk: usize,
) -> Result<(usize, usize), String> {
    let mut verified = 0usize;
    let mut mismatches = 0usize;
    for (node, status, body) in recorded {
        if *status != 200 {
            mismatches += 1;
            continue;
        }
        let direct = engine
            .top_k_similar(*node, topk)
            .map_err(|e| e.to_string())?;
        let matches = body
            .get("neighbors")
            .and_then(Value::as_array)
            .is_some_and(|neighbors| {
                neighbors.len() == direct.len()
                    && neighbors.iter().zip(&direct).all(|(wire, want)| {
                        wire.get("node").and_then(Value::as_usize) == Some(want.node)
                            && wire
                                .get("score")
                                .and_then(Value::as_f64)
                                .is_some_and(|s| s.to_bits() == want.score.to_bits())
                    })
            });
        if matches {
            verified += 1;
        } else {
            mismatches += 1;
        }
    }
    Ok((verified, mismatches))
}

/// Approx verification pass (untimed): every response must be
/// well-formed with the right neighbor count, and every returned
/// `(node, score)` must bit-match the exact cosine the oracle engine
/// computes for that pair — approximation may drop true neighbors,
/// never corrupt scores. Returns `(verified, mismatches, recall@k)`.
fn verify_recorded_approx(
    recorded: &[Recorded],
    oracle: &QueryEngine,
    topk: usize,
) -> Result<(usize, usize, f64), String> {
    use std::collections::HashMap;
    let mut verified = 0usize;
    let mut mismatches = 0usize;
    let mut hit = 0usize;
    let mut total = 0usize;
    for (node, status, body) in recorded {
        if *status != 200 {
            mismatches += 1;
            continue;
        }
        // Full exact ranking of this node (k clamps to n - 1; the
        // oracle's LRU makes repeats cheap).
        let full = oracle
            .top_k_similar(*node, usize::MAX)
            .map_err(|e| e.to_string())?;
        let exact_bits: HashMap<usize, u64> = full
            .iter()
            .map(|nb| (nb.node, nb.score.to_bits()))
            .collect();
        let want_len = topk.min(full.len());
        let Some(neighbors) = body.get("neighbors").and_then(Value::as_array) else {
            mismatches += 1;
            continue;
        };
        let well_formed = neighbors.len() == want_len
            && neighbors.iter().all(|wire| {
                let id = wire.get("node").and_then(Value::as_usize);
                let score = wire.get("score").and_then(Value::as_f64);
                match (id, score) {
                    (Some(id), Some(score)) => exact_bits.get(&id) == Some(&score.to_bits()),
                    _ => false,
                }
            });
        if !well_formed {
            mismatches += 1;
            continue;
        }
        verified += 1;
        let returned: Vec<usize> = neighbors
            .iter()
            .filter_map(|wire| wire.get("node").and_then(Value::as_usize))
            .collect();
        total += want_len;
        hit += full
            .iter()
            .take(want_len)
            .filter(|nb| returned.contains(&nb.node))
            .count();
    }
    let recall = if total == 0 {
        0.0
    } else {
        hit as f64 / total as f64
    };
    Ok((verified, mismatches, recall))
}

fn summarize(
    mut latencies: Vec<u64>,
    wall_secs: f64,
    verified: usize,
    mismatches: usize,
) -> PhaseStats {
    latencies.sort_unstable();
    let total_queries = latencies.len();
    let mean_us = if total_queries == 0 {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / total_queries as f64
    };
    PhaseStats {
        total_queries,
        verified,
        mismatches,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        mean_us,
        max_us: latencies.last().copied().unwrap_or(0) as f64,
        qps: if wall_secs > 0.0 {
            total_queries as f64 / wall_secs
        } else {
            0.0
        },
        wall_secs,
    }
}

/// Runs the benchmark. On success every response matched its direct
/// library-call reference; any mismatch is an `Err`. With
/// `config.shards >= 2` a second phase replays the same load against a
/// shard router over the same artifact (still verified against the
/// monolithic engine).
///
/// # Errors
/// Training/serving failures, transport errors, or response
/// mismatches, rendered as strings for the CLI.
pub fn run(config: &ServeBenchConfig) -> Result<ServeBenchReport, String> {
    let mvag = mvag_data::toy_mvag(config.n, config.k, config.seed);
    let mut train_config = TrainConfig::default();
    train_config.sgla.seed = config.seed;
    train_config.embed.dim = config.dim;
    let train_started = Instant::now();
    let artifact = Artifact::train(&mvag, &train_config).map_err(|e| e.to_string())?;
    let train_secs = train_started.elapsed().as_secs_f64();

    let server_config = ServerConfig {
        addr: "127.0.0.1:0".parse().expect("static addr"),
        workers: config.workers,
        max_batch: config.max_batch,
        ..ServerConfig::default()
    };

    // Phase 1: monolithic engine.
    let engine = Arc::new(
        QueryEngine::new(artifact.clone(), EngineConfig::default()).map_err(|e| e.to_string())?,
    );
    let server = Server::start(Arc::clone(&engine), &server_config).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let (latencies, recorded, wall_secs) = drive_load(addr, config, "")?;
    // Snapshot server-side counters before the verification pass adds
    // its own direct calls to the engine's cache statistics.
    let (cache_hits, cache_misses) = engine.cache_stats();
    let server_stats = HttpClient::connect(addr)
        .and_then(|mut c| c.get("/stats"))
        .map(|r| r.body)
        .unwrap_or(Value::Null);
    server.shutdown();
    let (verified, mismatches) = verify_recorded(&recorded, &engine, config.topk)?;
    let mono = summarize(latencies, wall_secs, verified, mismatches);
    if mono.mismatches > 0 {
        return Err(format!(
            "{} of {} monolithic responses did not match direct library calls",
            mono.mismatches, mono.total_queries
        ));
    }

    // Phase 2 (optional): the same load against a shard router over a
    // sharded copy of the same artifact, verified against the same
    // monolithic engine — the router must be indistinguishable.
    let mut sharded: Option<PhaseStats> = None;
    let mut sharded_server_stats = Value::Null;
    if config.shards >= 2 {
        let dir = std::env::temp_dir().join(format!(
            "sgla-serve-bench-shards-{}-{}",
            config.shards,
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        artifact
            .save_sharded(&dir, config.shards)
            .map_err(|e| e.to_string())?;
        let router = ShardRouter::open(&dir, RouterConfig::default()).map_err(|e| e.to_string())?;
        let server =
            Server::start_backend(Arc::new(router), &server_config).map_err(|e| e.to_string())?;
        let addr = server.local_addr();
        let (latencies, recorded, wall_secs) = drive_load(addr, config, "")?;
        sharded_server_stats = HttpClient::connect(addr)
            .and_then(|mut c| c.get("/stats"))
            .map(|r| r.body)
            .unwrap_or(Value::Null);
        server.shutdown();
        let (verified, mismatches) = verify_recorded(&recorded, &engine, config.topk)?;
        let stats = summarize(latencies, wall_secs, verified, mismatches);
        std::fs::remove_dir_all(&dir).ok();
        if stats.mismatches > 0 {
            return Err(format!(
                "{} of {} sharded responses did not match the monolithic engine",
                stats.mismatches, stats.total_queries
            ));
        }
        sharded = Some(stats);
    }

    // Phase 3 (optional): the same load as mode=approx queries against
    // an IVF-indexed engine over the same artifact. The exact engine
    // is the oracle: recall@k is measured per response, every returned
    // score must bit-match the exact cosine of its pair, and the
    // index's own scan counters prove the probes were sublinear.
    let mut approx: Option<ApproxPhase> = None;
    let mut approx_server_stats = Value::Null;
    if config.index {
        let engine_approx = Arc::new(
            QueryEngine::new(
                artifact.clone(),
                EngineConfig {
                    index: Some(IvfConfig {
                        nlist: config.nlist,
                        seed: config.seed,
                    }),
                    ..EngineConfig::default()
                },
            )
            .map_err(|e| e.to_string())?,
        );
        let index = engine_approx.index().expect("index was configured");
        let nlist = index.nlist();
        let nprobe = if config.nprobe == 0 {
            index.default_nprobe()
        } else {
            config.nprobe.min(nlist)
        };
        let server =
            Server::start(Arc::clone(&engine_approx), &server_config).map_err(|e| e.to_string())?;
        let addr = server.local_addr();
        let suffix = format!("&mode=approx&nprobe={nprobe}");
        let (latencies, recorded, wall_secs) = drive_load(addr, config, &suffix)?;
        // Scan-work counters before verification touches anything.
        let index_stats = engine_approx.index_stats();
        approx_server_stats = HttpClient::connect(addr)
            .and_then(|mut c| c.get("/stats"))
            .map(|r| r.body)
            .unwrap_or(Value::Null);
        server.shutdown();
        let (verified, mismatches, recall) =
            verify_recorded_approx(&recorded, &engine, config.topk)?;
        let stats = summarize(latencies, wall_secs, verified, mismatches);
        if stats.mismatches > 0 {
            return Err(format!(
                "{} of {} approx responses were malformed or carried non-exact scores",
                stats.mismatches, stats.total_queries
            ));
        }
        if recall < MIN_RECALL {
            return Err(format!(
                "approx recall@{} = {recall:.3} below the {MIN_RECALL} floor \
                 (nlist = {nlist}, nprobe = {nprobe})",
                config.topk
            ));
        }
        let avg_rows_scanned =
            index_stats.rows_scanned as f64 / index_stats.approx_queries.max(1) as f64;
        let scan_fraction = avg_rows_scanned / (config.n.saturating_sub(1)) as f64;
        if scan_fraction > MAX_SCAN_FRACTION {
            return Err(format!(
                "approx queries scanned {:.0}% of the rows on average — not sublinear \
                 (nlist = {nlist}, nprobe = {nprobe})",
                scan_fraction * 100.0
            ));
        }
        approx = Some(ApproxPhase {
            stats,
            recall,
            nlist,
            nprobe,
            avg_rows_scanned,
            scan_fraction,
        });
    }

    let mut results = vec![
        ("config", {
            Value::object(vec![
                ("n", Value::from(config.n)),
                ("k", Value::from(config.k)),
                ("dim", Value::from(config.dim)),
                ("clients", Value::from(config.clients)),
                ("queries_per_client", Value::from(config.queries_per_client)),
                ("topk", Value::from(config.topk)),
                ("workers", Value::from(config.workers)),
                ("max_batch", Value::from(config.max_batch)),
                ("seed", Value::from(config.seed)),
                ("shards", Value::from(config.shards)),
                ("index", Value::Bool(config.index)),
                ("nlist", Value::from(config.nlist)),
                ("nprobe", Value::from(config.nprobe)),
            ])
        }),
        ("results", {
            let mut obj = mono.to_json();
            if let Value::Object(map) = &mut obj {
                map.insert("train_secs".into(), Value::from(train_secs));
                map.insert("cache_hits".into(), Value::from(cache_hits));
                map.insert("cache_misses".into(), Value::from(cache_misses));
            }
            obj
        }),
        ("server_stats", server_stats),
    ];
    if let Some(stats) = &sharded {
        results.push(("results_sharded", stats.to_json()));
        results.push((
            "sharded_vs_monolithic_p50",
            Value::from(if mono.p50_us > 0.0 {
                stats.p50_us / mono.p50_us
            } else {
                0.0
            }),
        ));
        results.push(("server_stats_sharded", sharded_server_stats));
    }
    if let Some(phase) = &approx {
        results.push(("results_approx", {
            let mut obj = phase.stats.to_json();
            if let Value::Object(map) = &mut obj {
                map.insert("recall_at_k".into(), Value::from(phase.recall));
                map.insert("nlist".into(), Value::from(phase.nlist));
                map.insert("nprobe".into(), Value::from(phase.nprobe));
                map.insert(
                    "avg_rows_scanned".into(),
                    Value::from(phase.avg_rows_scanned),
                );
                map.insert("scan_fraction".into(), Value::from(phase.scan_fraction));
            }
            obj
        }));
        results.push((
            "approx_vs_exact_p50",
            Value::from(if mono.p50_us > 0.0 {
                phase.stats.p50_us / mono.p50_us
            } else {
                0.0
            }),
        ));
        results.push(("server_stats_approx", approx_server_stats));
    }
    let json = Value::object(results);

    Ok(ServeBenchReport {
        total_queries: mono.total_queries,
        verified: mono.verified,
        mismatches: mono.mismatches,
        p50_us: mono.p50_us,
        p99_us: mono.p99_us,
        mean_us: mono.mean_us,
        max_us: mono.max_us,
        qps: mono.qps,
        wall_secs: mono.wall_secs,
        train_secs,
        cache_hits,
        cache_misses,
        sharded,
        approx,
        json,
    })
}

/// Runs the benchmark and writes the JSON report to `out`.
///
/// # Errors
/// See [`run`]; additionally I/O failures writing the report.
pub fn run_to_file(
    config: &ServeBenchConfig,
    out: &std::path::Path,
) -> Result<ServeBenchReport, String> {
    let report = run(config)?;
    std::fs::write(out, report.json.to_string_pretty())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_load_run_verifies_all_responses() {
        let config = ServeBenchConfig {
            n: 80,
            k: 2,
            dim: 8,
            clients: 4,
            queries_per_client: 10,
            topk: 5,
            workers: 4,
            ..Default::default()
        };
        let report = run(&config).unwrap();
        assert_eq!(report.total_queries, 40);
        assert_eq!(report.verified, 40);
        assert_eq!(report.mismatches, 0);
        assert!(report.p50_us > 0.0);
        assert!(report.p99_us >= report.p50_us);
        assert!(report.qps > 0.0);
        assert!(report.json.get("results").is_some());
        assert!(report.sharded.is_none());
        assert!(report.json.get("results_sharded").is_none());
        assert!(report.approx.is_none());
        assert!(report.json.get("results_approx").is_none());
    }

    #[test]
    fn approx_phase_measures_recall_and_sublinear_scans() {
        let config = ServeBenchConfig {
            n: 160,
            k: 2,
            dim: 8,
            clients: 4,
            queries_per_client: 10,
            topk: 5,
            workers: 4,
            index: true,
            nlist: 8,
            nprobe: 3,
            ..Default::default()
        };
        let report = run(&config).unwrap();
        let approx = report.approx.expect("approx phase ran");
        assert_eq!(approx.stats.total_queries, 40);
        assert_eq!(approx.stats.mismatches, 0);
        assert!(approx.recall >= MIN_RECALL, "recall {}", approx.recall);
        assert!(
            approx.scan_fraction <= MAX_SCAN_FRACTION,
            "scan fraction {}",
            approx.scan_fraction
        );
        assert_eq!(approx.nlist, 8);
        assert_eq!(approx.nprobe, 3);
        assert!(report.json.get("results_approx").is_some());
        assert!(report.json.get("approx_vs_exact_p50").is_some());
    }

    #[test]
    fn sharded_phase_verifies_against_monolithic() {
        let config = ServeBenchConfig {
            n: 80,
            k: 2,
            dim: 8,
            clients: 4,
            queries_per_client: 10,
            topk: 5,
            workers: 4,
            shards: 3,
            ..Default::default()
        };
        let report = run(&config).unwrap();
        let sharded = report.sharded.expect("sharded phase ran");
        assert_eq!(sharded.total_queries, 40);
        assert_eq!(sharded.verified, 40);
        assert_eq!(sharded.mismatches, 0);
        assert!(report.json.get("results_sharded").is_some());
        assert!(report.json.get("sharded_vs_monolithic_p50").is_some());
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 0.5), 5.0);
        assert_eq!(percentile(&v, 0.99), 10.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
    }
}

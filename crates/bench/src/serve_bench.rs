//! Load benchmark for the `sgla-serve` HTTP front end.
//!
//! Trains an artifact, serves it on a loopback socket, then drives it
//! with N concurrent keep-alive clients issuing top-k queries. Every
//! response is verified against a direct [`QueryEngine`] call (node
//! ids and bit-exact scores), so the benchmark doubles as a
//! correctness check under concurrency. With `shards >= 2` the same
//! load is replayed against a [`sgla_serve::ShardRouter`] over a
//! sharded copy of the same artifact — every sharded response is
//! verified bit-exactly against the *monolithic* engine, and the
//! report carries both latency profiles side by side. Reports
//! client-side p50/p99 latency and throughput plus the server's own
//! counters, and writes everything to a JSON report
//! (`BENCH_serve.json` by default).

use mvag_data::json::Value;
use sgla_serve::{
    Artifact, EngineConfig, HttpClient, QueryEngine, RouterConfig, Server, ServerConfig,
    ShardRouter, TrainConfig,
};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Nodes in the synthetic training MVAG.
    pub n: usize,
    /// Planted clusters.
    pub k: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Queries issued per client.
    pub queries_per_client: usize,
    /// `k` of each top-k query.
    pub topk: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Upper bound on micro-batched queries per kernel pass.
    pub max_batch: usize,
    /// RNG seed (training + query mix).
    pub seed: u64,
    /// Row-range shards for the sharded phase (`< 2` skips it).
    pub shards: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            n: 400,
            k: 3,
            dim: 32,
            clients: 32,
            queries_per_client: 40,
            topk: 10,
            workers: 8,
            max_batch: 64,
            seed: 42,
            shards: 0,
        }
    }
}

/// Latency/throughput summary of one load phase.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Total queries issued.
    pub total_queries: usize,
    /// Queries whose response matched the direct library call.
    pub verified: usize,
    /// Mismatches (must be 0 for a healthy run).
    pub mismatches: usize,
    /// Client-observed median latency in microseconds.
    pub p50_us: f64,
    /// 99th percentile latency in microseconds.
    pub p99_us: f64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Worst observed latency in microseconds.
    pub max_us: f64,
    /// Aggregate throughput over the loaded phase (queries/second).
    pub qps: f64,
    /// Wall-clock of the query phase in seconds.
    pub wall_secs: f64,
}

impl PhaseStats {
    fn to_json(&self) -> Value {
        Value::object(vec![
            ("total_queries", Value::from(self.total_queries)),
            ("verified", Value::from(self.verified)),
            ("mismatches", Value::from(self.mismatches)),
            ("p50_us", Value::from(self.p50_us)),
            ("p99_us", Value::from(self.p99_us)),
            ("mean_us", Value::from(self.mean_us)),
            ("max_us", Value::from(self.max_us)),
            ("qps", Value::from(self.qps)),
            ("wall_secs", Value::from(self.wall_secs)),
        ])
    }
}

/// Outcome of one benchmark run.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Total queries issued in the monolithic phase.
    pub total_queries: usize,
    /// Queries whose response matched the direct library call.
    pub verified: usize,
    /// Mismatches (must be 0 for a healthy run).
    pub mismatches: usize,
    /// Client-observed latency percentiles in microseconds.
    pub p50_us: f64,
    /// 99th percentile latency in microseconds.
    pub p99_us: f64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Worst observed latency in microseconds.
    pub max_us: f64,
    /// Aggregate throughput over the loaded phase (queries/second).
    pub qps: f64,
    /// Wall-clock of the query phase in seconds.
    pub wall_secs: f64,
    /// Seconds spent training the artifact.
    pub train_secs: f64,
    /// Top-k cache hits observed by the engine.
    pub cache_hits: u64,
    /// Top-k cache misses observed by the engine.
    pub cache_misses: u64,
    /// The sharded-phase profile, when `shards >= 2` was requested.
    /// Verified against the *monolithic* engine, bit-exactly.
    pub sharded: Option<PhaseStats>,
    /// The full JSON document written to the report file.
    pub json: Value,
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// `(node, status, response body)` of one recorded query.
type Recorded = (usize, u16, Value);

/// Drives the full client load against `addr`: each client thread owns
/// one keep-alive connection and a deterministic query mix. Responses
/// are only *recorded* here — verification happens after the timed
/// phase so the reported latencies/QPS measure the server, not the
/// benchmark harness's own direct-call scans.
fn drive_load(
    addr: SocketAddr,
    config: &ServeBenchConfig,
) -> Result<(Vec<u64>, Vec<Recorded>, f64), String> {
    let phase_started = Instant::now();
    let mut handles = Vec::new();
    for client_id in 0..config.clients {
        let config = config.clone();
        handles.push(std::thread::spawn(
            move || -> Result<(Vec<u64>, Vec<Recorded>), String> {
                let mut client =
                    HttpClient::connect(addr).map_err(|e| format!("client {client_id}: {e}"))?;
                let mut latencies = Vec::with_capacity(config.queries_per_client);
                let mut recorded = Vec::with_capacity(config.queries_per_client);
                // Simple per-client LCG over nodes: spread across the
                // space but with repeats, so the LRU cache sees hits.
                let mut state = config
                    .seed
                    .wrapping_add(client_id as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    | 1;
                for _ in 0..config.queries_per_client {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let node = (state >> 33) as usize % config.n;
                    let started = Instant::now();
                    let res = client
                        .get(&format!("/topk/{node}?k={}", config.topk))
                        .map_err(|e| format!("client {client_id}: {e}"))?;
                    latencies.push(started.elapsed().as_micros() as u64);
                    recorded.push((node, res.status, res.body));
                }
                Ok((latencies, recorded))
            },
        ));
    }
    let mut latencies: Vec<u64> = Vec::new();
    let mut recorded: Vec<Recorded> = Vec::new();
    for handle in handles {
        let (mut lat, mut rec) = handle
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        latencies.append(&mut lat);
        recorded.append(&mut rec);
    }
    Ok((latencies, recorded, phase_started.elapsed().as_secs_f64()))
}

/// Verification pass (untimed): every recorded response must match the
/// direct library call — node ids and bit-exact scores.
fn verify_recorded(
    recorded: &[Recorded],
    engine: &QueryEngine,
    topk: usize,
) -> Result<(usize, usize), String> {
    let mut verified = 0usize;
    let mut mismatches = 0usize;
    for (node, status, body) in recorded {
        if *status != 200 {
            mismatches += 1;
            continue;
        }
        let direct = engine
            .top_k_similar(*node, topk)
            .map_err(|e| e.to_string())?;
        let matches = body
            .get("neighbors")
            .and_then(Value::as_array)
            .is_some_and(|neighbors| {
                neighbors.len() == direct.len()
                    && neighbors.iter().zip(&direct).all(|(wire, want)| {
                        wire.get("node").and_then(Value::as_usize) == Some(want.node)
                            && wire
                                .get("score")
                                .and_then(Value::as_f64)
                                .is_some_and(|s| s.to_bits() == want.score.to_bits())
                    })
            });
        if matches {
            verified += 1;
        } else {
            mismatches += 1;
        }
    }
    Ok((verified, mismatches))
}

fn summarize(
    mut latencies: Vec<u64>,
    wall_secs: f64,
    verified: usize,
    mismatches: usize,
) -> PhaseStats {
    latencies.sort_unstable();
    let total_queries = latencies.len();
    let mean_us = if total_queries == 0 {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / total_queries as f64
    };
    PhaseStats {
        total_queries,
        verified,
        mismatches,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        mean_us,
        max_us: latencies.last().copied().unwrap_or(0) as f64,
        qps: if wall_secs > 0.0 {
            total_queries as f64 / wall_secs
        } else {
            0.0
        },
        wall_secs,
    }
}

/// Runs the benchmark. On success every response matched its direct
/// library-call reference; any mismatch is an `Err`. With
/// `config.shards >= 2` a second phase replays the same load against a
/// shard router over the same artifact (still verified against the
/// monolithic engine).
///
/// # Errors
/// Training/serving failures, transport errors, or response
/// mismatches, rendered as strings for the CLI.
pub fn run(config: &ServeBenchConfig) -> Result<ServeBenchReport, String> {
    let mvag = mvag_data::toy_mvag(config.n, config.k, config.seed);
    let mut train_config = TrainConfig::default();
    train_config.sgla.seed = config.seed;
    train_config.embed.dim = config.dim;
    let train_started = Instant::now();
    let artifact = Artifact::train(&mvag, &train_config).map_err(|e| e.to_string())?;
    let train_secs = train_started.elapsed().as_secs_f64();

    let server_config = ServerConfig {
        addr: "127.0.0.1:0".parse().expect("static addr"),
        workers: config.workers,
        max_batch: config.max_batch,
        ..ServerConfig::default()
    };

    // Phase 1: monolithic engine.
    let engine = Arc::new(
        QueryEngine::new(artifact.clone(), EngineConfig::default()).map_err(|e| e.to_string())?,
    );
    let server = Server::start(Arc::clone(&engine), &server_config).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let (latencies, recorded, wall_secs) = drive_load(addr, config)?;
    // Snapshot server-side counters before the verification pass adds
    // its own direct calls to the engine's cache statistics.
    let (cache_hits, cache_misses) = engine.cache_stats();
    let server_stats = HttpClient::connect(addr)
        .and_then(|mut c| c.get("/stats"))
        .map(|r| r.body)
        .unwrap_or(Value::Null);
    server.shutdown();
    let (verified, mismatches) = verify_recorded(&recorded, &engine, config.topk)?;
    let mono = summarize(latencies, wall_secs, verified, mismatches);
    if mono.mismatches > 0 {
        return Err(format!(
            "{} of {} monolithic responses did not match direct library calls",
            mono.mismatches, mono.total_queries
        ));
    }

    // Phase 2 (optional): the same load against a shard router over a
    // sharded copy of the same artifact, verified against the same
    // monolithic engine — the router must be indistinguishable.
    let mut sharded: Option<PhaseStats> = None;
    let mut sharded_server_stats = Value::Null;
    if config.shards >= 2 {
        let dir = std::env::temp_dir().join(format!(
            "sgla-serve-bench-shards-{}-{}",
            config.shards,
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        artifact
            .save_sharded(&dir, config.shards)
            .map_err(|e| e.to_string())?;
        let router = ShardRouter::open(&dir, RouterConfig::default()).map_err(|e| e.to_string())?;
        let server =
            Server::start_backend(Arc::new(router), &server_config).map_err(|e| e.to_string())?;
        let addr = server.local_addr();
        let (latencies, recorded, wall_secs) = drive_load(addr, config)?;
        sharded_server_stats = HttpClient::connect(addr)
            .and_then(|mut c| c.get("/stats"))
            .map(|r| r.body)
            .unwrap_or(Value::Null);
        server.shutdown();
        let (verified, mismatches) = verify_recorded(&recorded, &engine, config.topk)?;
        let stats = summarize(latencies, wall_secs, verified, mismatches);
        std::fs::remove_dir_all(&dir).ok();
        if stats.mismatches > 0 {
            return Err(format!(
                "{} of {} sharded responses did not match the monolithic engine",
                stats.mismatches, stats.total_queries
            ));
        }
        sharded = Some(stats);
    }

    let mut results = vec![
        ("config", {
            Value::object(vec![
                ("n", Value::from(config.n)),
                ("k", Value::from(config.k)),
                ("dim", Value::from(config.dim)),
                ("clients", Value::from(config.clients)),
                ("queries_per_client", Value::from(config.queries_per_client)),
                ("topk", Value::from(config.topk)),
                ("workers", Value::from(config.workers)),
                ("max_batch", Value::from(config.max_batch)),
                ("seed", Value::from(config.seed)),
                ("shards", Value::from(config.shards)),
            ])
        }),
        ("results", {
            let mut obj = mono.to_json();
            if let Value::Object(map) = &mut obj {
                map.insert("train_secs".into(), Value::from(train_secs));
                map.insert("cache_hits".into(), Value::from(cache_hits));
                map.insert("cache_misses".into(), Value::from(cache_misses));
            }
            obj
        }),
        ("server_stats", server_stats),
    ];
    if let Some(stats) = &sharded {
        results.push(("results_sharded", stats.to_json()));
        results.push((
            "sharded_vs_monolithic_p50",
            Value::from(if mono.p50_us > 0.0 {
                stats.p50_us / mono.p50_us
            } else {
                0.0
            }),
        ));
        results.push(("server_stats_sharded", sharded_server_stats));
    }
    let json = Value::object(results);

    Ok(ServeBenchReport {
        total_queries: mono.total_queries,
        verified: mono.verified,
        mismatches: mono.mismatches,
        p50_us: mono.p50_us,
        p99_us: mono.p99_us,
        mean_us: mono.mean_us,
        max_us: mono.max_us,
        qps: mono.qps,
        wall_secs: mono.wall_secs,
        train_secs,
        cache_hits,
        cache_misses,
        sharded,
        json,
    })
}

/// Runs the benchmark and writes the JSON report to `out`.
///
/// # Errors
/// See [`run`]; additionally I/O failures writing the report.
pub fn run_to_file(
    config: &ServeBenchConfig,
    out: &std::path::Path,
) -> Result<ServeBenchReport, String> {
    let report = run(config)?;
    std::fs::write(out, report.json.to_string_pretty())
        .map_err(|e| format!("writing {}: {e}", out.display()))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_load_run_verifies_all_responses() {
        let config = ServeBenchConfig {
            n: 80,
            k: 2,
            dim: 8,
            clients: 4,
            queries_per_client: 10,
            topk: 5,
            workers: 4,
            ..Default::default()
        };
        let report = run(&config).unwrap();
        assert_eq!(report.total_queries, 40);
        assert_eq!(report.verified, 40);
        assert_eq!(report.mismatches, 0);
        assert!(report.p50_us > 0.0);
        assert!(report.p99_us >= report.p50_us);
        assert!(report.qps > 0.0);
        assert!(report.json.get("results").is_some());
        assert!(report.sharded.is_none());
        assert!(report.json.get("results_sharded").is_none());
    }

    #[test]
    fn sharded_phase_verifies_against_monolithic() {
        let config = ServeBenchConfig {
            n: 80,
            k: 2,
            dim: 8,
            clients: 4,
            queries_per_client: 10,
            topk: 5,
            workers: 4,
            shards: 3,
            ..Default::default()
        };
        let report = run(&config).unwrap();
        let sharded = report.sharded.expect("sharded phase ran");
        assert_eq!(sharded.total_queries, 40);
        assert_eq!(sharded.verified, 40);
        assert_eq!(sharded.mismatches, 0);
        assert!(report.json.get("results_sharded").is_some());
        assert!(report.json.get("sharded_vs_monolithic_p50").is_some());
    }

    #[test]
    fn percentile_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 0.5), 5.0);
        assert_eq!(percentile(&v, 0.99), 10.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
    }
}

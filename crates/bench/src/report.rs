//! Table rendering and CSV artifacts for the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::Path;

/// A simple fixed-width text table that mirrors the paper's layout.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders to a fixed-width string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV under `dir/name.csv` (creating `dir`).
    ///
    /// # Errors
    /// I/O failures.
    pub fn write_csv(&self, dir: &str, name: &str) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(format!("{name}.csv"));
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Formats a metric value like the paper's tables (3 decimals, `-` for
/// unavailable).
pub fn fmt_metric(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "-".to_string(),
    }
}

/// Formats a duration in seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.01 {
        format!("{:.4}", s)
    } else if s < 10.0 {
        format!("{:.3}", s)
    } else {
        format!("{:.1}", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["method", "acc"]);
        t.row(vec!["sgla+".into(), "0.930".into()]);
        t.row(vec!["a-very-long-name".into(), "0.1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("method"));
        assert!(lines[1].starts_with("---"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn csv_output() {
        let dir = std::env::temp_dir().join("sgla-report-test");
        let dir_s = dir.to_str().unwrap().to_string();
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.write_csv(&dir_s, "test").unwrap();
        let content = fs::read_to_string(dir.join("test.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(fmt_metric(Some(0.93)), "0.930");
        assert_eq!(fmt_metric(None), "-");
        assert_eq!(fmt_secs(0.001), "0.0010");
        assert_eq!(fmt_secs(1.234), "1.234");
        assert_eq!(fmt_secs(123.4), "123.4");
    }
}

//! Dependency-free JSON: a document model, a strict parser, and
//! compact/pretty writers.
//!
//! Replaces `serde_json` for this workspace (the build environment has
//! no network access to crates.io). Numbers are stored as `f64` and
//! written with Rust's shortest-roundtrip formatting, so any finite
//! `f64` survives a write → parse cycle bit-exactly. Used by the MVAG
//! JSON persistence in [`crate::io`], the `sgla-serve` HTTP front end,
//! and the benchmark reports.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap) so output is deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member access for objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Compact one-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        write_value(&mut s, self, None, 0);
        s
    }

    /// Indented rendering (2-space indent).
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        write_value(&mut s, self, Some(2), 0);
        s
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(x)
    }
}
impl From<usize> for Value {
    fn from(x: usize) -> Self {
        Value::from(x as u64)
    }
}
impl From<u64> for Value {
    /// Values up to 2⁵³ become JSON numbers; larger ones (which an
    /// `f64`-backed number would silently round) become decimal
    /// strings so nothing is corrupted — e.g. a 64-bit training seed.
    fn from(x: u64) -> Self {
        if x <= (1 << 53) {
            Value::Number(x as f64)
        } else {
            Value::String(x.to_string())
        }
    }
}
impl From<bool> for Value {
    fn from(x: bool) -> Self {
        Value::Bool(x)
    }
}
impl From<&str> for Value {
    fn from(x: &str) -> Self {
        Value::String(x.to_string())
    }
}
impl From<String> for Value {
    fn from(x: String) -> Self {
        Value::String(x)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{}` on f64 is shortest-roundtrip, so parsing recovers the
        // exact bits of any finite value.
        out.push_str(&format!("{x}"));
    } else {
        // JSON has no Inf/NaN; degrade to null like serde_json does.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(x) => write_number(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_value(out, item, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

/// A JSON parse error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (rejects trailing garbage).
///
/// # Errors
/// [`ParseError`] on malformed input.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected '{word}')")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err(
                                            "high surrogate not followed by a low surrogate",
                                        ));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                    );
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).expect("valid utf8"));
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 >= self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for src in ["null", "true", "false", "0", "-1.5", "\"hi\"", "[]", "{}"] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.to_string_compact()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn f64_bit_exact_roundtrip() {
        for &x in &[
            0.1,
            -1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -0.0,
            12345.6789e-30,
        ] {
            let v = Value::Number(x);
            let back = parse(&v.to_string_compact()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn nested_structures() {
        let src = r#"{"a":[1,2,{"b":null}],"c":"x\ny\"z","d":{"e":true}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "x\ny\"z");
        assert_eq!(v.get("d").unwrap().get("e").unwrap().as_bool(), Some(true));
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
        // A valid surrogate pair decodes to the astral character.
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
    }

    #[test]
    fn bad_surrogates_rejected_not_panicking() {
        for src in [
            r#""\ud800\u0041""#, // high surrogate + BMP escape (the overflow case)
            r#""\ud800\ue000""#, // high surrogate + non-surrogate escape
            r#""\ud800""#,       // lone high surrogate
            r#""\ud800A""#,      // high surrogate + raw char
            r#""\udc00""#,       // lone low surrogate
            r#""\ud800\ud800""#, // two high surrogates
        ] {
            assert!(parse(src).is_err(), "accepted {src:?}");
        }
    }

    #[test]
    fn huge_u64_survives_as_string() {
        let v = Value::from(u64::MAX);
        assert_eq!(v.as_str(), Some("18446744073709551615"));
        // Values within f64's exact-integer range stay numeric.
        assert_eq!(Value::from(1u64 << 53).as_usize(), Some(1 << 53));
        assert_eq!(Value::from(42u64).as_f64(), Some(42.0));
    }

    #[test]
    fn rejects_malformed() {
        for src in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] extra",
            "{\"a\":1,}",
            "\u{1}",
        ] {
            assert!(parse(src).is_err(), "accepted {src:?}");
        }
    }

    #[test]
    fn deep_nesting_rejected_not_overflowed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn object_builder_and_accessors() {
        let v = Value::object(vec![
            ("n", Value::from(5usize)),
            ("name", Value::from("toy")),
            ("xs", Value::from(vec![1.0, 2.5])),
        ]);
        assert_eq!(v.get("n").unwrap().as_usize(), Some(5));
        assert_eq!(v.get("name").unwrap().as_str(), Some("toy"));
        assert!(v.get("missing").is_none());
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 2);
        assert!(Value::Number(1.5).as_usize().is_none());
    }
}

//! MVAG persistence: diffable JSON and a compact binary codec.
//!
//! JSON (via [`crate::json`]) is convenient for small fixtures and
//! experiment outputs; the binary codec (hand-rolled over `bytes`, with
//! a magic header, a format-version field, and overflow-safe bounds
//! checks) is ~6× smaller and much faster for the MAG-scale
//! simulations, which the experiment harness caches between runs.
//! Malformed input of either format surfaces as a typed
//! [`DataError`] — never a panic.

use crate::codec::{get_str, put_str};
use crate::json::{self, Value};
use crate::{DataError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mvag_graph::{Graph, Mvag, View};
use mvag_sparse::{CooMatrix, DenseMatrix};
use std::fs;
use std::path::Path;

/// Format tag embedded in the JSON representation.
const JSON_FORMAT: &str = "mvag-json/1";

/// Encodes an MVAG as a JSON document.
pub fn encode_json(mvag: &Mvag) -> String {
    let views: Vec<Value> = mvag
        .views()
        .iter()
        .map(|view| match view {
            View::Graph(g) => {
                let edges: Vec<Value> = g
                    .adjacency()
                    .iter()
                    .filter(|&(r, c, _)| c >= r)
                    .map(|(r, c, w)| {
                        Value::Array(vec![Value::from(r), Value::from(c), Value::from(w)])
                    })
                    .collect();
                Value::object(vec![
                    ("type", Value::from("graph")),
                    ("edges", Value::Array(edges)),
                ])
            }
            View::Attributes(x) => Value::object(vec![
                ("type", Value::from("attributes")),
                ("nrows", Value::from(x.nrows())),
                ("ncols", Value::from(x.ncols())),
                ("data", Value::from(x.data().to_vec())),
            ]),
        })
        .collect();
    let labels = match mvag.labels() {
        Some(l) => Value::from(l.to_vec()),
        None => Value::Null,
    };
    Value::object(vec![
        ("format", Value::from(JSON_FORMAT)),
        ("name", Value::from(mvag.name.as_str())),
        ("n", Value::from(mvag.n())),
        ("k", Value::from(mvag.k())),
        ("labels", labels),
        ("views", Value::Array(views)),
    ])
    .to_string_pretty()
}

/// Decodes an MVAG from its JSON representation.
///
/// # Errors
/// [`DataError::Serde`] on malformed input; graph validation errors.
pub fn decode_json(text: &str) -> Result<Mvag> {
    let fail = |msg: &str| DataError::Serde(format!("JSON MVAG: {msg}"));
    let doc = json::parse(text)?;
    match doc.get("format").and_then(Value::as_str) {
        Some(JSON_FORMAT) => {}
        Some(other) => return Err(fail(&format!("unsupported format '{other}'"))),
        None => return Err(fail("missing format tag")),
    }
    let name = doc
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| fail("missing name"))?;
    let n = doc
        .get("n")
        .and_then(Value::as_usize)
        .ok_or_else(|| fail("missing node count"))?;
    let k = doc
        .get("k")
        .and_then(Value::as_usize)
        .ok_or_else(|| fail("missing cluster count"))?;
    let labels = match doc.get("labels") {
        None | Some(Value::Null) => None,
        Some(v) => {
            let arr = v
                .as_array()
                .ok_or_else(|| fail("labels must be an array"))?;
            Some(
                arr.iter()
                    .map(|x| x.as_usize().ok_or_else(|| fail("bad label")))
                    .collect::<Result<Vec<_>>>()?,
            )
        }
    };
    let view_vals = doc
        .get("views")
        .and_then(Value::as_array)
        .ok_or_else(|| fail("missing views"))?;
    let mut views = Vec::with_capacity(view_vals.len());
    for vv in view_vals {
        match vv.get("type").and_then(Value::as_str) {
            Some("graph") => {
                let edges = vv
                    .get("edges")
                    .and_then(Value::as_array)
                    .ok_or_else(|| fail("graph view missing edges"))?;
                let mut coo = CooMatrix::with_capacity(n, n, edges.len() * 2);
                for e in edges {
                    let t = e.as_array().ok_or_else(|| fail("bad edge"))?;
                    if t.len() != 3 {
                        return Err(fail("edge must be [row, col, weight]"));
                    }
                    let r = t[0].as_usize().ok_or_else(|| fail("bad edge row"))?;
                    let c = t[1].as_usize().ok_or_else(|| fail("bad edge col"))?;
                    let w = t[2].as_f64().ok_or_else(|| fail("bad edge weight"))?;
                    coo.push_sym(r, c, w)
                        .map_err(|e| DataError::Serde(format!("bad edge: {e}")))?;
                }
                views.push(View::Graph(Graph::from_adjacency(coo.to_csr())?));
            }
            Some("attributes") => {
                let rows = vv
                    .get("nrows")
                    .and_then(Value::as_usize)
                    .ok_or_else(|| fail("attr view missing nrows"))?;
                let cols = vv
                    .get("ncols")
                    .and_then(Value::as_usize)
                    .ok_or_else(|| fail("attr view missing ncols"))?;
                let data_vals = vv
                    .get("data")
                    .and_then(Value::as_array)
                    .ok_or_else(|| fail("attr view missing data"))?;
                let data = data_vals
                    .iter()
                    .map(|x| x.as_f64().ok_or_else(|| fail("bad attr value")))
                    .collect::<Result<Vec<_>>>()?;
                if rows.checked_mul(cols) != Some(data.len()) {
                    return Err(fail("attr data length mismatch"));
                }
                let x = DenseMatrix::from_vec(rows, cols, data)
                    .map_err(|e| DataError::Serde(format!("bad attr shape: {e}")))?;
                views.push(View::Attributes(x));
            }
            _ => return Err(fail("view missing type tag")),
        }
    }
    Ok(Mvag::new(name, views, labels, k)?)
}

/// Saves an MVAG as pretty JSON.
///
/// # Errors
/// I/O and serialization failures.
pub fn save_json(mvag: &Mvag, path: &Path) -> Result<()> {
    fs::write(path, encode_json(mvag))?;
    Ok(())
}

/// Loads an MVAG from JSON.
///
/// # Errors
/// I/O and deserialization failures.
pub fn load_json(path: &Path) -> Result<Mvag> {
    let s = fs::read_to_string(path)?;
    decode_json(&s)
}

const MAGIC: u32 = 0x4d56_4147; // "MVAG"
const VERSION: u16 = 1;

/// Encodes an MVAG into the compact binary format.
pub fn encode_binary(mvag: &Mvag) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    put_str(&mut buf, &mvag.name);
    buf.put_u64(mvag.n() as u64);
    buf.put_u64(mvag.k() as u64);
    match mvag.labels() {
        Some(labels) => {
            buf.put_u8(1);
            for &l in labels {
                buf.put_u32(l as u32);
            }
        }
        None => buf.put_u8(0),
    }
    buf.put_u32(mvag.r() as u32);
    for view in mvag.views() {
        match view {
            View::Graph(g) => {
                buf.put_u8(0);
                let adj = g.adjacency();
                buf.put_u64(adj.nnz() as u64);
                for (r, c, v) in adj.iter() {
                    if c >= r {
                        buf.put_u64(r as u64);
                        buf.put_u64(c as u64);
                        buf.put_f64(v);
                    }
                }
            }
            View::Attributes(x) => {
                buf.put_u8(1);
                buf.put_u64(x.nrows() as u64);
                buf.put_u64(x.ncols() as u64);
                for v in x.data() {
                    buf.put_f64(*v);
                }
            }
        }
    }
    buf.freeze()
}

/// Decodes an MVAG from the compact binary format.
///
/// # Errors
/// [`DataError::Serde`] on malformed input; graph validation errors.
pub fn decode_binary(mut bytes: Bytes) -> Result<Mvag> {
    let fail = |msg: &str| DataError::Serde(format!("binary MVAG: {msg}"));
    if bytes.remaining() < 6 || bytes.get_u32() != MAGIC {
        return Err(fail("bad magic"));
    }
    if bytes.get_u16() != VERSION {
        return Err(fail("unsupported version"));
    }
    let name = get_str(&mut bytes).ok_or_else(|| fail("truncated name"))?;
    if bytes.remaining() < 17 {
        return Err(fail("truncated header"));
    }
    let n = bytes.get_u64() as usize;
    let k = bytes.get_u64() as usize;
    let has_labels = bytes.get_u8() == 1;
    let labels = if has_labels {
        // Overflow-safe: a hostile header can claim n up to 2^64.
        Some(crate::codec::get_u32s(&mut bytes, n).ok_or_else(|| fail("truncated labels"))?)
    } else {
        None
    };
    if bytes.remaining() < 4 {
        return Err(fail("truncated view count"));
    }
    let r = bytes.get_u32() as usize;
    let mut views = Vec::with_capacity(r);
    for _ in 0..r {
        if bytes.remaining() < 1 {
            return Err(fail("truncated view tag"));
        }
        match bytes.get_u8() {
            0 => {
                if bytes.remaining() < 8 {
                    return Err(fail("truncated edge count"));
                }
                let nnz = bytes.get_u64() as usize;
                let stored = nnz / 2 + nnz % 2; // upper-triangle entries (incl. diag, but graphs have none)
                                                // Overflow-safe pre-check before reserving capacity: a
                                                // hostile count must not trigger a huge allocation.
                if stored
                    .checked_mul(24)
                    .is_none_or(|need| bytes.remaining() < need)
                {
                    return Err(fail("truncated edges"));
                }
                let mut coo = CooMatrix::with_capacity(n, n, nnz);
                for _ in 0..stored {
                    if bytes.remaining() < 24 {
                        return Err(fail("truncated edge"));
                    }
                    let rr = bytes.get_u64() as usize;
                    let cc = bytes.get_u64() as usize;
                    let v = bytes.get_f64();
                    coo.push_sym(rr, cc, v)
                        .map_err(|e| DataError::Serde(format!("bad edge: {e}")))?;
                }
                let g = Graph::from_adjacency(coo.to_csr())?;
                views.push(View::Graph(g));
            }
            1 => {
                if bytes.remaining() < 16 {
                    return Err(fail("truncated attr header"));
                }
                let rows = bytes.get_u64() as usize;
                let cols = bytes.get_u64() as usize;
                // Overflow-safe: hostile headers can claim huge shapes.
                let count = rows.checked_mul(cols);
                if count
                    .and_then(|c| c.checked_mul(8))
                    .is_none_or(|need| bytes.remaining() < need)
                {
                    return Err(fail("truncated attr data"));
                }
                let data: Vec<f64> = (0..count.expect("checked above"))
                    .map(|_| bytes.get_f64())
                    .collect();
                let x = DenseMatrix::from_vec(rows, cols, data)
                    .map_err(|e| DataError::Serde(format!("bad attr shape: {e}")))?;
                views.push(View::Attributes(x));
            }
            t => return Err(fail(&format!("unknown view tag {t}"))),
        }
    }
    Ok(Mvag::new(name, views, labels, k)?)
}

/// Saves an MVAG in the compact binary format.
///
/// # Errors
/// I/O failures.
pub fn save_binary(mvag: &Mvag, path: &Path) -> Result<()> {
    fs::write(path, encode_binary(mvag))?;
    Ok(())
}

/// Loads an MVAG from the compact binary format.
///
/// # Errors
/// I/O and decoding failures.
pub fn load_binary(path: &Path) -> Result<Mvag> {
    let data = fs::read(path)?;
    decode_binary(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvag_graph::toy::{figure1_example, toy_mvag};

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("sgla-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.json");
        let mvag = figure1_example();
        save_json(&mvag, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(mvag, back);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let mvag = toy_mvag(80, 2, 5);
        let bytes = encode_binary(&mvag);
        let back = decode_binary(bytes).unwrap();
        assert_eq!(mvag, back);
    }

    #[test]
    fn binary_roundtrip_with_attributes() {
        let mvag = figure1_example();
        let back = decode_binary(encode_binary(&mvag)).unwrap();
        assert_eq!(mvag, back);
    }

    #[test]
    fn binary_file_roundtrip() {
        let dir = std::env::temp_dir().join("sgla-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.mvag");
        let mvag = toy_mvag(50, 2, 9);
        save_binary(&mvag, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(mvag, back);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn json_string_roundtrip() {
        let mvag = toy_mvag(60, 2, 3);
        let text = encode_json(&mvag);
        let back = decode_json(&text).unwrap();
        assert_eq!(mvag, back);
    }

    #[test]
    fn json_rejects_malformed() {
        for src in [
            "",
            "{}",
            "[1, 2]",
            r#"{"format":"mvag-json/99","name":"x","n":2,"k":2,"views":[]}"#,
            r#"{"format":"mvag-json/1","name":"x","n":2,"k":2,"views":[{"type":"widget"}]}"#,
        ] {
            assert!(decode_json(src).is_err(), "accepted {src:?}");
        }
    }

    #[test]
    fn binary_smaller_than_json() {
        let mvag = toy_mvag(150, 3, 1);
        let bin = encode_binary(&mvag).len();
        let json = encode_json(&mvag).len();
        assert!(bin < json, "binary {bin} vs json {json}");
    }

    #[test]
    fn corrupted_binary_rejected() {
        let mvag = toy_mvag(40, 2, 2);
        let bytes = encode_binary(&mvag);
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xff;
        assert!(decode_binary(Bytes::from(bad)).is_err());
        // Truncated.
        let short = bytes.slice(..bytes.len() / 2);
        assert!(decode_binary(short).is_err());
        // Empty.
        assert!(decode_binary(Bytes::new()).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mvag = toy_mvag(40, 2, 4);
        let mut raw = encode_binary(&mvag).to_vec();
        // The version field is the u16 immediately after the u32 magic.
        raw[4] = 0xff;
        raw[5] = 0xfe;
        let err = decode_binary(Bytes::from(raw)).unwrap_err();
        assert!(
            err.to_string().contains("version"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let mvag = figure1_example();
        let raw = encode_binary(&mvag).to_vec();
        for len in 0..raw.len() {
            let prefix = Bytes::from(raw[..len].to_vec());
            assert!(decode_binary(prefix).is_err(), "prefix of {len} decoded");
        }
    }

    #[test]
    fn hostile_counts_rejected_without_allocation() {
        // Valid magic + version, then a header claiming 2^62 nodes with
        // labels: must fail cleanly, not overflow or try to allocate.
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        put_str(&mut buf, "hostile");
        buf.put_u64(1u64 << 62); // n
        buf.put_u64(2); // k
        buf.put_u8(1); // has labels
        assert!(decode_binary(buf.freeze()).is_err());

        // Attribute view claiming a shape whose byte count overflows.
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        put_str(&mut buf, "hostile");
        buf.put_u64(4); // n
        buf.put_u64(2); // k
        buf.put_u8(0); // no labels
        buf.put_u32(2); // r
        buf.put_u8(1); // attributes view
        buf.put_u64(u64::MAX); // rows
        buf.put_u64(u64::MAX); // cols
        assert!(decode_binary(buf.freeze()).is_err());

        // Graph view claiming an absurd edge count.
        let mut buf = BytesMut::new();
        buf.put_u32(MAGIC);
        buf.put_u16(VERSION);
        put_str(&mut buf, "hostile");
        buf.put_u64(4); // n
        buf.put_u64(2); // k
        buf.put_u8(0); // no labels
        buf.put_u32(2); // r
        buf.put_u8(0); // graph view
        buf.put_u64(u64::MAX); // nnz
        assert!(decode_binary(buf.freeze()).is_err());
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_json(Path::new("/nonexistent/x.json")).is_err());
        assert!(load_binary(Path::new("/nonexistent/x.mvag")).is_err());
    }
}

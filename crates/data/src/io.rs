//! MVAG persistence: diffable JSON and a compact binary codec.
//!
//! JSON (via serde) is convenient for small fixtures and experiment
//! outputs; the binary codec (hand-rolled over `bytes`) is ~6× smaller and
//! much faster for the MAG-scale simulations, which the experiment harness
//! caches between runs.

use crate::{DataError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mvag_graph::{Graph, Mvag, View};
use mvag_sparse::{CooMatrix, DenseMatrix};
use std::fs;
use std::path::Path;

/// Saves an MVAG as pretty JSON.
///
/// # Errors
/// I/O and serialization failures.
pub fn save_json(mvag: &Mvag, path: &Path) -> Result<()> {
    let s = serde_json::to_string(mvag)?;
    fs::write(path, s)?;
    Ok(())
}

/// Loads an MVAG from JSON.
///
/// # Errors
/// I/O and deserialization failures.
pub fn load_json(path: &Path) -> Result<Mvag> {
    let s = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&s)?)
}

const MAGIC: u32 = 0x4d56_4147; // "MVAG"
const VERSION: u16 = 1;

/// Encodes an MVAG into the compact binary format.
pub fn encode_binary(mvag: &Mvag) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_u32(MAGIC);
    buf.put_u16(VERSION);
    put_str(&mut buf, &mvag.name);
    buf.put_u64(mvag.n() as u64);
    buf.put_u64(mvag.k() as u64);
    match mvag.labels() {
        Some(labels) => {
            buf.put_u8(1);
            for &l in labels {
                buf.put_u32(l as u32);
            }
        }
        None => buf.put_u8(0),
    }
    buf.put_u32(mvag.r() as u32);
    for view in mvag.views() {
        match view {
            View::Graph(g) => {
                buf.put_u8(0);
                let adj = g.adjacency();
                buf.put_u64(adj.nnz() as u64);
                for (r, c, v) in adj.iter() {
                    if c >= r {
                        buf.put_u64(r as u64);
                        buf.put_u64(c as u64);
                        buf.put_f64(v);
                    }
                }
            }
            View::Attributes(x) => {
                buf.put_u8(1);
                buf.put_u64(x.nrows() as u64);
                buf.put_u64(x.ncols() as u64);
                for v in x.data() {
                    buf.put_f64(*v);
                }
            }
        }
    }
    buf.freeze()
}

/// Decodes an MVAG from the compact binary format.
///
/// # Errors
/// [`DataError::Serde`] on malformed input; graph validation errors.
pub fn decode_binary(mut bytes: Bytes) -> Result<Mvag> {
    let fail = |msg: &str| DataError::Serde(format!("binary MVAG: {msg}"));
    if bytes.remaining() < 6 || bytes.get_u32() != MAGIC {
        return Err(fail("bad magic"));
    }
    if bytes.get_u16() != VERSION {
        return Err(fail("unsupported version"));
    }
    let name = get_str(&mut bytes).ok_or_else(|| fail("truncated name"))?;
    if bytes.remaining() < 17 {
        return Err(fail("truncated header"));
    }
    let n = bytes.get_u64() as usize;
    let k = bytes.get_u64() as usize;
    let has_labels = bytes.get_u8() == 1;
    let labels = if has_labels {
        if bytes.remaining() < 4 * n {
            return Err(fail("truncated labels"));
        }
        Some((0..n).map(|_| bytes.get_u32() as usize).collect::<Vec<_>>())
    } else {
        None
    };
    if bytes.remaining() < 4 {
        return Err(fail("truncated view count"));
    }
    let r = bytes.get_u32() as usize;
    let mut views = Vec::with_capacity(r);
    for _ in 0..r {
        if bytes.remaining() < 1 {
            return Err(fail("truncated view tag"));
        }
        match bytes.get_u8() {
            0 => {
                if bytes.remaining() < 8 {
                    return Err(fail("truncated edge count"));
                }
                let nnz = bytes.get_u64() as usize;
                let upper = nnz.div_ceil(2) + nnz % 2; // bound only
                let _ = upper;
                let mut coo = CooMatrix::with_capacity(n, n, nnz);
                let stored = nnz / 2 + nnz % 2; // upper-triangle entries (incl. diag, but graphs have none)
                for _ in 0..stored {
                    if bytes.remaining() < 24 {
                        return Err(fail("truncated edge"));
                    }
                    let rr = bytes.get_u64() as usize;
                    let cc = bytes.get_u64() as usize;
                    let v = bytes.get_f64();
                    coo.push_sym(rr, cc, v)
                        .map_err(|e| DataError::Serde(format!("bad edge: {e}")))?;
                }
                let g = Graph::from_adjacency(coo.to_csr())?;
                views.push(View::Graph(g));
            }
            1 => {
                if bytes.remaining() < 16 {
                    return Err(fail("truncated attr header"));
                }
                let rows = bytes.get_u64() as usize;
                let cols = bytes.get_u64() as usize;
                if bytes.remaining() < 8 * rows * cols {
                    return Err(fail("truncated attr data"));
                }
                let data: Vec<f64> = (0..rows * cols).map(|_| bytes.get_f64()).collect();
                let x = DenseMatrix::from_vec(rows, cols, data)
                    .map_err(|e| DataError::Serde(format!("bad attr shape: {e}")))?;
                views.push(View::Attributes(x));
            }
            t => return Err(fail(&format!("unknown view tag {t}"))),
        }
    }
    Ok(Mvag::new(name, views, labels, k)?)
}

/// Saves an MVAG in the compact binary format.
///
/// # Errors
/// I/O failures.
pub fn save_binary(mvag: &Mvag, path: &Path) -> Result<()> {
    fs::write(path, encode_binary(mvag))?;
    Ok(())
}

/// Loads an MVAG from the compact binary format.
///
/// # Errors
/// I/O and decoding failures.
pub fn load_binary(path: &Path) -> Result<Mvag> {
    let data = fs::read(path)?;
    decode_binary(Bytes::from(data))
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(bytes: &mut Bytes) -> Option<String> {
    if bytes.remaining() < 4 {
        return None;
    }
    let len = bytes.get_u32() as usize;
    if bytes.remaining() < len {
        return None;
    }
    let raw = bytes.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvag_graph::toy::{figure1_example, toy_mvag};

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("sgla-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.json");
        let mvag = figure1_example();
        save_json(&mvag, &path).unwrap();
        let back = load_json(&path).unwrap();
        assert_eq!(mvag, back);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let mvag = toy_mvag(80, 2, 5);
        let bytes = encode_binary(&mvag);
        let back = decode_binary(bytes).unwrap();
        assert_eq!(mvag, back);
    }

    #[test]
    fn binary_roundtrip_with_attributes() {
        let mvag = figure1_example();
        let back = decode_binary(encode_binary(&mvag)).unwrap();
        assert_eq!(mvag, back);
    }

    #[test]
    fn binary_file_roundtrip() {
        let dir = std::env::temp_dir().join("sgla-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.mvag");
        let mvag = toy_mvag(50, 2, 9);
        save_binary(&mvag, &path).unwrap();
        let back = load_binary(&path).unwrap();
        assert_eq!(mvag, back);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_smaller_than_json() {
        let mvag = toy_mvag(150, 3, 1);
        let bin = encode_binary(&mvag).len();
        let json = serde_json::to_string(&mvag).unwrap().len();
        assert!(bin < json, "binary {bin} vs json {json}");
    }

    #[test]
    fn corrupted_binary_rejected() {
        let mvag = toy_mvag(40, 2, 2);
        let bytes = encode_binary(&mvag);
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] ^= 0xff;
        assert!(decode_binary(Bytes::from(bad)).is_err());
        // Truncated.
        let short = bytes.slice(..bytes.len() / 2);
        assert!(decode_binary(short).is_err());
        // Empty.
        assert!(decode_binary(Bytes::new()).is_err());
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_json(Path::new("/nonexistent/x.json")).is_err());
        assert!(load_binary(Path::new("/nonexistent/x.mvag")).is_err());
    }
}

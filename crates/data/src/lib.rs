//! Synthetic dataset suite mirroring the paper's Table II, plus MVAG
//! persistence.
//!
//! The eight evaluation datasets (RM, Yelp, IMDB, DBLP, Amazon photos,
//! Amazon computers, MAG-eng, MAG-phy) are not redistributable; this crate
//! generates synthetic stand-ins that match each dataset's **shape** —
//! node count, number and kind of views, per-view edge density, attribute
//! dimensionality, cluster count — plus per-view informativeness imbalance
//! (see DESIGN.md §3 for the substitution rationale and the documented
//! scale-downs for the MAG-scale datasets).
//!
//! * [`registry`] — one [`registry::DatasetSpec`] per paper dataset, with
//!   the paper's statistics attached for reference, and a deterministic
//!   [`registry::DatasetSpec::generate`];
//! * [`io`] — JSON (diffable) and compact binary persistence for
//!   [`Mvag`](mvag_graph::Mvag);
//! * [`delta`] — binary persistence for
//!   [`MvagDelta`](mvag_graph::MvagDelta)s (appends, tombstone
//!   removals, edge/row edits), the replayable unit of the
//!   incremental artifact-update pipeline;
//! * [`manifest`] — the JSON shard manifest of the sharded (v2)
//!   artifact layout served by `sgla-serve`;
//! * [`idmap`] — the id-remap sidecar a compaction writes so
//!   unrewritten shard files can be rebased at load time;
//! * [`failpoint`] — the [`failpoint::LayoutWriter`] filesystem
//!   indirection that lets crash-consistency tests tear a layout
//!   rewrite at any byte boundary;
//! * [`toy_mvag`] — re-export of the small fixture generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod delta;
pub mod error;
pub mod failpoint;
pub mod idmap;
pub mod io;
pub mod json;
pub mod manifest;
pub mod registry;

pub use delta::{load_delta, save_delta};
pub use error::DataError;
pub use failpoint::{FailpointWriter, FsWriter, LayoutWriter};
pub use idmap::IdMap;
pub use manifest::{ShardEntry, ShardManifest};
pub use mvag_graph::toy::toy_mvag;
pub use registry::{by_name, full_registry, DatasetSpec};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;

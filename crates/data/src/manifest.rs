//! The shard manifest of a sharded (v2) artifact layout.
//!
//! A trained artifact too large for one host is split by contiguous
//! row ranges into shard files, and a small JSON manifest describes
//! the set: dataset metadata, the artifact format version the shards
//! were encoded with, and one entry per shard (file name, row range,
//! byte size, CRC-32 of the whole shard file). The manifest is the
//! single file a shard router has to read up front — shard files can
//! then be loaded lazily, verified against their recorded checksums.
//!
//! The manifest lives in `mvag-data` (not `sgla-serve`) because it is
//! pure format: a JSON document with strict, versioned decoding, no
//! serving behaviour. See `docs/ARCHITECTURE.md` for the full v1→v2
//! artifact format specification.
//!
//! ```
//! use mvag_data::manifest::{ShardEntry, ShardManifest};
//!
//! let manifest = ShardManifest {
//!     dataset: "toy".into(),
//!     n: 100,
//!     k: 3,
//!     dim: 16,
//!     seed: 42,
//!     artifact_format_version: 2,
//!     shards: vec![
//!         ShardEntry { file: "shard-00000.sgla".into(), row_start: 0, row_end: 50, ..Default::default() },
//!         ShardEntry { file: "shard-00001.sgla".into(), row_start: 50, row_end: 100, ..Default::default() },
//!     ],
//!     ..Default::default()
//! };
//! manifest.validate().unwrap();
//! let back = ShardManifest::from_json(&manifest.to_json()).unwrap();
//! assert_eq!(manifest, back);
//! assert_eq!(back.shard_of(73), Some(1));
//! ```

use crate::json::{self, Value};
use crate::{DataError, Result};
use std::fs;
use std::path::Path;

/// Format tag embedded in the JSON document; decoders reject others.
pub const MANIFEST_FORMAT: &str = "sgla-shard-manifest/1";

/// One shard of a row-range-sharded artifact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardEntry {
    /// Shard file name, relative to the manifest's directory.
    pub file: String,
    /// First global row (node id) covered by this shard, inclusive.
    pub row_start: usize,
    /// One past the last global row covered by this shard.
    pub row_end: usize,
    /// Size of the shard file in bytes (0 = unknown, skip the check).
    pub bytes: u64,
    /// CRC-32 (IEEE) of the entire shard file (0 = unknown, skip the
    /// check; the shard's own embedded body checksum still applies).
    pub crc32: u32,
    /// Row range baked into the shard *file*, when it differs from the
    /// manifest range — a compaction that purged rows from earlier
    /// shards shifts this shard's manifest range down without
    /// rewriting its (clean) file. The router verifies the file
    /// against these coordinates, then rebases to the manifest's.
    /// `None` means the file agrees with the manifest.
    pub file_row_start: Option<usize>,
    /// See [`ShardEntry::file_row_start`]; one past the file's last row.
    pub file_row_end: Option<usize>,
    /// Total node count baked into the shard file's metadata, when it
    /// differs from the manifest's `n` (stale after an in-place append
    /// or a compaction that did not rewrite this shard).
    pub file_n: Option<usize>,
    /// Number of tombstoned (deleted, unpurged) rows inside this
    /// shard's range. Lets `compact` pick dirty shards and the serve
    /// loader compute the tombstone fraction without loading shards.
    pub tombstones: usize,
}

impl ShardEntry {
    /// Rows covered by this shard.
    pub fn rows(&self) -> usize {
        self.row_end.saturating_sub(self.row_start)
    }

    /// True when the shard file's baked-in coordinates differ from the
    /// manifest's (the router must rebase after verifying the file).
    pub fn is_stale(&self) -> bool {
        self.file_row_start.is_some() || self.file_row_end.is_some() || self.file_n.is_some()
    }
}

/// The manifest of a sharded artifact: dataset metadata plus the
/// ordered, contiguous list of row-range shards.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardManifest {
    /// Name of the dataset the artifact was trained on.
    pub dataset: String,
    /// Total node count `n` across all shards.
    pub n: usize,
    /// Cluster count `k`.
    pub k: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Seed the training run used (provenance).
    pub seed: u64,
    /// Binary format version of the shard files (2 for sharded).
    pub artifact_format_version: u16,
    /// Number of deltas applied to this layout since training
    /// (mirrors the monolithic artifact's `update_count`; absent in
    /// old manifests, defaulting to 0).
    pub update_count: u64,
    /// Number of compactions this layout has been through (absent in
    /// old manifests, defaulting to 0).
    pub compaction_count: u64,
    /// File name of the id-map sidecar the latest compaction wrote
    /// (relative to the manifest's directory), when any shard entry is
    /// stale — the router needs it to remap cross-shard Laplacian
    /// column ids in unrewritten shard files.
    pub id_map: Option<String>,
    /// Shards in ascending row order, covering `0..n` contiguously.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// Structural checks: at least one shard, ranges non-empty, sorted,
    /// and covering `0..n` with no gap or overlap.
    ///
    /// # Errors
    /// [`DataError::Serde`] describing the first inconsistency.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(DataError::Serde(format!("shard manifest: {msg}")));
        if self.shards.is_empty() {
            return fail("no shards".into());
        }
        let mut expected_start = 0usize;
        for (i, s) in self.shards.iter().enumerate() {
            if s.row_start != expected_start {
                return fail(format!(
                    "shard {i} starts at row {} (expected {expected_start})",
                    s.row_start
                ));
            }
            if s.row_end <= s.row_start {
                return fail(format!(
                    "shard {i} has empty range {}..{}",
                    s.row_start, s.row_end
                ));
            }
            if s.file.is_empty() {
                return fail(format!("shard {i} has no file name"));
            }
            if s.tombstones > s.rows() {
                return fail(format!(
                    "shard {i} claims {} tombstones in {} rows",
                    s.tombstones,
                    s.rows()
                ));
            }
            // Stale file coordinates must describe the same row count:
            // compaction only shifts unrewritten shards, never resizes
            // them.
            if let (Some(fs), Some(fe)) = (s.file_row_start, s.file_row_end) {
                if fe.saturating_sub(fs) != s.rows() {
                    return fail(format!(
                        "shard {i}: file range {fs}..{fe} covers {} rows, manifest range {}..{} \
                         covers {}",
                        fe.saturating_sub(fs),
                        s.row_start,
                        s.row_end,
                        s.rows()
                    ));
                }
            } else if s.file_row_start.is_some() != s.file_row_end.is_some() {
                return fail(format!(
                    "shard {i}: only one of file_row_start/file_row_end set"
                ));
            }
            expected_start = s.row_end;
        }
        if expected_start != self.n {
            return fail(format!("shards cover 0..{expected_start}, n = {}", self.n));
        }
        // Shifted rows (compaction) need the id-map sidecar to remap
        // cross-shard Laplacian ids; a bare `file_n` (in-place append
        // grew the layout) rebases with the identity map.
        if self.shards.iter().any(|s| s.file_row_start.is_some()) && self.id_map.is_none() {
            return fail("shifted shard entries but no id_map sidecar".into());
        }
        Ok(())
    }

    /// Index of the shard owning global row `node`, if in range.
    pub fn shard_of(&self, node: usize) -> Option<usize> {
        if node >= self.n {
            return None;
        }
        // Ranges are sorted and contiguous: binary search on row_start.
        let idx = self
            .shards
            .partition_point(|s| s.row_end <= node)
            .min(self.shards.len().saturating_sub(1));
        let s = &self.shards[idx];
        (s.row_start <= node && node < s.row_end).then_some(idx)
    }

    /// Renders the manifest as a pretty JSON document.
    pub fn to_json(&self) -> String {
        let shards: Vec<Value> = self
            .shards
            .iter()
            .map(|s| {
                let mut fields = vec![
                    ("file", Value::from(s.file.as_str())),
                    ("row_start", Value::from(s.row_start)),
                    ("row_end", Value::from(s.row_end)),
                    ("bytes", Value::from(s.bytes)),
                    ("crc32", Value::from(s.crc32 as u64)),
                ];
                // Optional fields are emitted only when meaningful, so
                // a never-compacted layout's manifest stays in the
                // shape older readers know.
                if let Some(v) = s.file_row_start {
                    fields.push(("file_row_start", Value::from(v)));
                }
                if let Some(v) = s.file_row_end {
                    fields.push(("file_row_end", Value::from(v)));
                }
                if let Some(v) = s.file_n {
                    fields.push(("file_n", Value::from(v)));
                }
                if s.tombstones > 0 {
                    fields.push(("tombstones", Value::from(s.tombstones)));
                }
                Value::object(fields)
            })
            .collect();
        let mut fields = vec![
            ("format", Value::from(MANIFEST_FORMAT)),
            ("dataset", Value::from(self.dataset.as_str())),
            ("n", Value::from(self.n)),
            ("k", Value::from(self.k)),
            ("dim", Value::from(self.dim)),
            ("seed", Value::from(self.seed)),
            (
                "artifact_format_version",
                Value::from(self.artifact_format_version as usize),
            ),
        ];
        if self.update_count > 0 {
            fields.push(("update_count", Value::from(self.update_count)));
        }
        if self.compaction_count > 0 {
            fields.push(("compaction_count", Value::from(self.compaction_count)));
        }
        if let Some(m) = &self.id_map {
            fields.push(("id_map", Value::from(m.as_str())));
        }
        fields.push(("shards", Value::Array(shards)));
        Value::object(fields).to_string_pretty()
    }

    /// Parses and validates a manifest from its JSON text.
    ///
    /// # Errors
    /// [`DataError::Serde`] on malformed JSON, a wrong/missing format
    /// tag, missing fields, or inconsistent shard ranges.
    pub fn from_json(text: &str) -> Result<ShardManifest> {
        let fail = |msg: &str| DataError::Serde(format!("shard manifest: {msg}"));
        let doc = json::parse(text).map_err(|e| fail(&format!("not JSON: {e}")))?;
        match doc.get("format").and_then(Value::as_str) {
            Some(MANIFEST_FORMAT) => {}
            Some(other) => return Err(fail(&format!("unsupported format '{other}'"))),
            None => return Err(fail("missing format tag")),
        }
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| fail(&format!("missing {key}")))
        };
        let num_field = |key: &str| {
            doc.get(key)
                .and_then(Value::as_usize)
                .ok_or_else(|| fail(&format!("missing {key}")))
        };
        // `Value::from(u64)` renders values above 2⁵³ as decimal
        // strings (an f64-backed number would silently round them), so
        // u64 fields must accept both encodings on the way back in.
        let u64_field = |key: &str| {
            let v = doc
                .get(key)
                .ok_or_else(|| fail(&format!("missing {key}")))?;
            as_u64(v).ok_or_else(|| fail(&format!("bad {key}")))
        };
        let shard_vals = doc
            .get("shards")
            .and_then(Value::as_array)
            .ok_or_else(|| fail("missing shards array"))?;
        let mut shards = Vec::with_capacity(shard_vals.len());
        for (i, sv) in shard_vals.iter().enumerate() {
            let sfail = |msg: &str| fail(&format!("shard {i}: {msg}"));
            let snum = |key: &str| {
                sv.get(key)
                    .and_then(Value::as_usize)
                    .ok_or_else(|| sfail(&format!("missing {key}")))
            };
            // Optional per-shard fields: absent in pre-compaction
            // manifests, so absence is a default, not an error — but a
            // present field with a non-numeric value is still corrupt.
            let opt_num = |key: &str| match sv.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_usize()
                    .map(Some)
                    .ok_or_else(|| sfail(&format!("bad {key}"))),
            };
            shards.push(ShardEntry {
                file: sv
                    .get("file")
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| sfail("missing file"))?,
                row_start: snum("row_start")?,
                row_end: snum("row_end")?,
                bytes: sv
                    .get("bytes")
                    .and_then(as_u64)
                    .ok_or_else(|| sfail("missing bytes"))?,
                crc32: u32::try_from(snum("crc32")?).map_err(|_| sfail("crc32 out of range"))?,
                file_row_start: opt_num("file_row_start")?,
                file_row_end: opt_num("file_row_end")?,
                file_n: opt_num("file_n")?,
                tombstones: opt_num("tombstones")?.unwrap_or(0),
            });
        }
        let opt_u64 = |key: &str| match doc.get(key) {
            None => Ok(0u64),
            Some(v) => as_u64(v).ok_or_else(|| fail(&format!("bad {key}"))),
        };
        let manifest = ShardManifest {
            dataset: str_field("dataset")?,
            n: num_field("n")?,
            k: num_field("k")?,
            dim: num_field("dim")?,
            seed: u64_field("seed")?,
            artifact_format_version: u16::try_from(num_field("artifact_format_version")?)
                .map_err(|_| fail("artifact_format_version out of range"))?,
            update_count: opt_u64("update_count")?,
            compaction_count: opt_u64("compaction_count")?,
            id_map: doc
                .get("id_map")
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| fail("bad id_map"))
                })
                .transpose()?,
            shards,
        };
        manifest.validate()?;
        Ok(manifest)
    }

    /// Saves the manifest as pretty JSON.
    ///
    /// # Errors
    /// I/O failures.
    pub fn save(&self, path: &Path) -> Result<()> {
        fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Loads and validates a manifest from `path`.
    ///
    /// # Errors
    /// I/O failures and [`DataError::Serde`] on malformed content.
    pub fn load(path: &Path) -> Result<ShardManifest> {
        let text = fs::read_to_string(path)?;
        ShardManifest::from_json(&text)
    }
}

/// Reads a `u64` from either JSON encoding `Value::from(u64)` emits: a
/// number (values ≤ 2⁵³) or a decimal string (values above, which an
/// f64-backed number would round).
fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Number(_) => v.as_usize().map(|x| x as u64),
        Value::String(s) => s.parse::<u64>().ok(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ShardManifest {
        ShardManifest {
            dataset: "toy".into(),
            n: 100,
            k: 3,
            dim: 16,
            seed: 7,
            artifact_format_version: 2,
            shards: vec![
                ShardEntry {
                    file: "shard-00000.sgla".into(),
                    row_start: 0,
                    row_end: 34,
                    bytes: 1234,
                    crc32: 0xDEAD_BEEF,
                    ..Default::default()
                },
                ShardEntry {
                    file: "shard-00001.sgla".into(),
                    row_start: 34,
                    row_end: 67,
                    bytes: 1200,
                    crc32: 0x0BAD_F00D,
                    ..Default::default()
                },
                ShardEntry {
                    file: "shard-00002.sgla".into(),
                    row_start: 67,
                    row_end: 100,
                    bytes: 1190,
                    crc32: 42,
                    ..Default::default()
                },
            ],
            ..Default::default()
        }
    }

    /// A post-compaction manifest: shard 1 was rewritten (file agrees
    /// with the manifest), shards 0 and 2 are clean-but-shifted with
    /// stale file coordinates and live tombstone counts.
    fn stale_sample() -> ShardManifest {
        let mut m = sample();
        m.update_count = 3;
        m.compaction_count = 1;
        m.id_map = Some("idmap-001.json".into());
        m.shards[0].tombstones = 2;
        m.shards[2].file_row_start = Some(70);
        m.shards[2].file_row_end = Some(103);
        m.shards[2].file_n = Some(103);
        m
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let m = sample();
        let back = ShardManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("sgla-manifest-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        let m = sample();
        m.save(&path).unwrap();
        assert_eq!(ShardManifest::load(&path).unwrap(), m);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_of_routes_every_row() {
        let m = sample();
        for node in 0..m.n {
            let s = m.shard_of(node).unwrap();
            assert!(m.shards[s].row_start <= node && node < m.shards[s].row_end);
        }
        assert_eq!(m.shard_of(0), Some(0));
        assert_eq!(m.shard_of(33), Some(0));
        assert_eq!(m.shard_of(34), Some(1));
        assert_eq!(m.shard_of(99), Some(2));
        assert_eq!(m.shard_of(100), None);
        assert_eq!(m.shard_of(usize::MAX), None);
    }

    #[test]
    fn u64_fields_above_2_pow_53_roundtrip() {
        // Value::from(u64) stringifies values > 2⁵³ to avoid f64
        // rounding; the parser must accept them back.
        let mut m = sample();
        m.seed = u64::MAX - 1;
        m.shards[0].bytes = (1u64 << 53) + 7;
        let back = ShardManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.seed, u64::MAX - 1);
        assert_eq!(back.shards[0].bytes, (1u64 << 53) + 7);
    }

    #[test]
    fn stale_coordinates_and_counts_roundtrip() {
        let m = stale_sample();
        m.validate().unwrap();
        assert!(m.shards[2].is_stale());
        assert!(!m.shards[0].is_stale());
        let back = ShardManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
        // Plain manifests omit the new fields entirely — their JSON
        // keeps the pre-compaction shape.
        let plain = sample().to_json();
        for key in [
            "file_row_start",
            "file_n",
            "tombstones",
            "id_map",
            "compaction_count",
        ] {
            assert!(!plain.contains(key), "plain manifest leaked {key}");
        }
    }

    #[test]
    fn old_manifests_parse_with_defaults() {
        // A manifest written before the CRUD fields existed.
        let back = ShardManifest::from_json(&sample().to_json()).unwrap();
        assert_eq!(back.update_count, 0);
        assert_eq!(back.compaction_count, 0);
        assert_eq!(back.id_map, None);
        assert!(back
            .shards
            .iter()
            .all(|s| !s.is_stale() && s.tombstones == 0));
    }

    #[test]
    fn stale_structural_problems_rejected() {
        // Tombstone count exceeding the shard's rows.
        let mut m = sample();
        m.shards[1].tombstones = m.shards[1].rows() + 1;
        assert!(m.validate().is_err());
        // File range with a different row count than the manifest range.
        let mut m = stale_sample();
        m.shards[2].file_row_end = Some(99);
        assert!(m.validate().is_err());
        // Only one end of the file range.
        let mut m = stale_sample();
        m.shards[2].file_row_end = None;
        assert!(m.validate().is_err());
        // Shifted rows without an id-map sidecar.
        let mut m = stale_sample();
        m.id_map = None;
        assert!(m.validate().is_err());
        // A bare file_n (in-place append) is fine without an id map.
        let mut m = sample();
        m.shards[0].file_n = Some(97);
        m.validate().unwrap();
    }

    #[test]
    fn wrong_format_tag_rejected() {
        let text = sample()
            .to_json()
            .replace(MANIFEST_FORMAT, "sgla-shard-manifest/99");
        let err = ShardManifest::from_json(&text).unwrap_err();
        assert!(err.to_string().contains("unsupported format"), "{err}");
    }

    #[test]
    fn truncated_json_rejected() {
        let text = sample().to_json();
        // Every strict prefix must fail cleanly (JSON parse error or a
        // missing-field error), never panic or yield a manifest.
        for len in (0..text.len()).step_by(7) {
            assert!(
                ShardManifest::from_json(&text[..len]).is_err(),
                "prefix of {len} decoded"
            );
        }
    }

    #[test]
    fn structural_problems_rejected() {
        // Gap between shards.
        let mut m = sample();
        m.shards[1].row_start = 40;
        assert!(m.validate().is_err());
        // Overlap.
        let mut m = sample();
        m.shards[1].row_start = 30;
        assert!(m.validate().is_err());
        // Empty range.
        let mut m = sample();
        m.shards[2].row_end = m.shards[2].row_start;
        assert!(m.validate().is_err());
        // Doesn't reach n.
        let mut m = sample();
        m.n = 120;
        assert!(m.validate().is_err());
        // No shards at all.
        let mut m = sample();
        m.shards.clear();
        assert!(m.validate().is_err());
        // Missing fields in the JSON.
        for key in ["\"n\"", "\"dataset\"", "\"shards\"", "\"row_end\""] {
            let text = sample().to_json().replacen(key, "\"nope\"", 1);
            assert!(ShardManifest::from_json(&text).is_err(), "dropped {key}");
        }
    }
}

//! The eight-dataset registry mirroring the paper's Table II.
//!
//! Every [`DatasetSpec`] records (a) the *paper's* statistics for
//! reference and reporting, and (b) the *simulation* parameters used to
//! generate a synthetic MVAG with the same shape. Densities are expressed
//! as average degrees so that scaling `n` preserves sparsity structure.
//!
//! Documented deviations (cf. DESIGN.md §3):
//! * MAG-eng / MAG-phy are scaled ~150× down in `n` (1.8M → 12k,
//!   2.35M → 15k) with per-view average degrees preserved, and their
//!   cluster counts reduced proportionally (55 → 12, 22 → 10) so clusters
//!   keep realistic sizes;
//! * 1000–7487-dimensional attribute views are simulated at 128–512
//!   dimensions (cosine-KNN behaviour is dimension-stable well below
//!   that);
//! * per-view informativeness is heterogeneous — some views carry most of
//!   the community signal, others are mostly noise — which is the regime
//!   in which view weighting matters (the paper's Fig. 2 motivation).

use crate::{DataError, Result};
use mvag_graph::generators::{
    balanced_labels, binary_attributes, gaussian_attributes, sbm, BinaryAttrConfig,
    GaussianAttrConfig, SbmConfig,
};
use mvag_graph::{Mvag, View};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Kind and parameters of a simulated attribute view.
#[derive(Debug, Clone)]
pub enum AttrKind {
    /// Numerical attributes: Gaussian mixture per cluster.
    Gaussian {
        /// Cluster-centre scale relative to unit noise.
        separation: f64,
        /// Per-coordinate noise standard deviation.
        noise: f64,
    },
    /// Categorical/binary attributes: Bernoulli profiles per cluster.
    Binary {
        /// Fraction of dimensions characteristic per cluster.
        active_fraction: f64,
        /// On-probability for characteristic dimensions.
        p_on: f64,
        /// On-probability elsewhere (noise floor).
        p_noise: f64,
    },
}

/// A simulated graph view's parameters.
#[derive(Debug, Clone)]
pub struct GraphViewSpec {
    /// Target average (weighted) degree.
    pub avg_degree: f64,
    /// Fraction of in-cluster edge mass (0.5 = structureless).
    pub assortativity: f64,
    /// Fraction of nodes whose community this view observes.
    pub informative_fraction: f64,
    /// Degree-correction spread (1.0 = regular SBM).
    pub degree_spread: f64,
}

/// A simulated attribute view's parameters.
#[derive(Debug, Clone)]
pub struct AttrViewSpec {
    /// Attribute dimensionality in the simulation.
    pub dim: usize,
    /// Distribution family.
    pub kind: AttrKind,
    /// Fraction of nodes whose attributes reflect their community.
    pub informative_fraction: f64,
}

/// Paper-reported statistics (Table II), kept for reporting.
#[derive(Debug, Clone)]
pub struct PaperStats {
    /// Number of nodes in the real dataset.
    pub n: usize,
    /// Number of views.
    pub r: usize,
    /// Edge count per graph view.
    pub edges: Vec<usize>,
    /// Dimension per attribute view.
    pub dims: Vec<usize>,
    /// Ground-truth classes.
    pub k: usize,
}

/// A complete dataset specification.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (lower-case, as used by the experiment harness).
    pub name: &'static str,
    /// Simulated node count at scale 1.0.
    pub n: usize,
    /// Simulated cluster count.
    pub k: usize,
    /// Graph views.
    pub graph_views: Vec<GraphViewSpec>,
    /// Attribute views.
    pub attr_views: Vec<AttrViewSpec>,
    /// KNN neighbourhood size for attribute views (the paper uses 10,
    /// with 200 for Yelp and 500 for IMDB).
    pub knn_k: usize,
    /// The paper's statistics for this dataset.
    pub paper: PaperStats,
}

impl DatasetSpec {
    /// Generates the synthetic MVAG at the given scale (`1.0` = the
    /// spec's default size; smaller values shrink `n` proportionally,
    /// never below `4k` nodes). Deterministic in `seed`.
    ///
    /// # Errors
    /// Propagates generator failures (cannot occur for registry specs at
    /// sane scales).
    pub fn generate(&self, scale: f64, seed: u64) -> Result<Mvag> {
        if scale <= 0.0 || !scale.is_finite() {
            return Err(DataError::InvalidArgument(format!(
                "scale must be positive and finite, got {scale}"
            )));
        }
        let n = ((self.n as f64 * scale).round() as usize).max(4 * self.k);
        let k = self.k;
        // Shuffled planted labels.
        let mut labels = balanced_labels(n, k)?;
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            labels.swap(i, j);
        }
        let mut views = Vec::with_capacity(self.graph_views.len() + self.attr_views.len());
        for (vi, gv) in self.graph_views.iter().enumerate() {
            let s = n as f64 / k as f64; // average cluster size
            let d_in = gv.assortativity * gv.avg_degree;
            let d_out = (1.0 - gv.assortativity) * gv.avg_degree;
            let p_in = (d_in / (s - 1.0).max(1.0)).min(1.0);
            let p_out = (d_out / (n as f64 - s).max(1.0)).min(1.0);
            let g = sbm(
                &labels,
                &SbmConfig {
                    p_in,
                    p_out,
                    informative_fraction: gv.informative_fraction,
                    degree_spread: gv.degree_spread,
                },
                seed.wrapping_add(1000 + vi as u64),
            )?;
            views.push(View::Graph(g));
        }
        for (vi, av) in self.attr_views.iter().enumerate() {
            let x = match av.kind {
                AttrKind::Gaussian { separation, noise } => gaussian_attributes(
                    &labels,
                    &GaussianAttrConfig {
                        dim: av.dim,
                        separation,
                        noise,
                        informative_fraction: av.informative_fraction,
                    },
                    seed.wrapping_add(2000 + vi as u64),
                )?,
                AttrKind::Binary {
                    active_fraction,
                    p_on,
                    p_noise,
                } => binary_attributes(
                    &labels,
                    &BinaryAttrConfig {
                        dim: av.dim,
                        active_fraction,
                        p_on,
                        p_noise,
                        informative_fraction: av.informative_fraction,
                    },
                    seed.wrapping_add(2000 + vi as u64),
                )?,
            };
            views.push(View::Attributes(x));
        }
        Ok(Mvag::new(self.name, views, Some(labels), k)?)
    }

    /// The KNN `K` to use at a given node count (never ≥ n).
    pub fn effective_knn(&self, n: usize) -> usize {
        self.knn_k.min(n / 4).max(2)
    }

    /// Total number of views `r`.
    pub fn r(&self) -> usize {
        self.graph_views.len() + self.attr_views.len()
    }
}

fn gv(avg_degree: f64, assortativity: f64, informative: f64, spread: f64) -> GraphViewSpec {
    GraphViewSpec {
        avg_degree,
        assortativity,
        informative_fraction: informative,
        degree_spread: spread,
    }
}

fn gauss(dim: usize, separation: f64, noise: f64, informative: f64) -> AttrViewSpec {
    AttrViewSpec {
        dim,
        kind: AttrKind::Gaussian { separation, noise },
        informative_fraction: informative,
    }
}

fn binary(dim: usize, informative: f64) -> AttrViewSpec {
    AttrViewSpec {
        dim,
        kind: AttrKind::Binary {
            active_fraction: 0.2,
            p_on: 0.55,
            p_noise: 0.05,
        },
        informative_fraction: informative,
    }
}

/// All eight dataset specs, in the paper's Table II order.
pub fn full_registry() -> Vec<DatasetSpec> {
    vec![
        // RM (Reality Mining): 10 proximity graph views of very different
        // quality over two classes, one numerical attribute view.
        DatasetSpec {
            name: "rm",
            n: 91,
            k: 2,
            graph_views: vec![
                gv(5.9, 0.78, 0.90, 1.0),
                gv(8.9, 0.72, 0.15, 1.0),
                gv(6.5, 0.72, 0.10, 1.0),
                gv(7.0, 0.75, 0.80, 1.0),
                gv(3.6, 0.70, 0.10, 1.0),
                gv(20.0, 0.78, 0.85, 1.5),
                gv(21.0, 0.72, 0.30, 1.5),
                gv(24.0, 0.80, 0.90, 1.5),
                gv(20.0, 0.72, 0.15, 1.5),
                gv(14.0, 0.72, 0.25, 1.5),
            ],
            attr_views: vec![gauss(32, 1.2, 1.0, 0.75)],
            knn_k: 10,
            paper: PaperStats {
                n: 91,
                r: 11,
                edges: vec![267, 404, 298, 317, 163, 1595, 1683, 1910, 1565, 1044],
                dims: vec![32],
                k: 2,
            },
        },
        // Yelp: two dense business-interaction views + binary categories.
        DatasetSpec {
            name: "yelp",
            n: 2614,
            k: 3,
            graph_views: vec![gv(100.0, 0.72, 0.95, 2.0), gv(300.0, 0.70, 0.10, 2.0)],
            attr_views: vec![binary(82, 0.9)],
            knn_k: 200,
            paper: PaperStats {
                n: 2614,
                r: 3,
                edges: vec![262_859, 1_237_554],
                dims: vec![82],
                k: 3,
            },
        },
        // IMDB: sparse co-actor/co-director views + high-dim plot keywords
        // (2000 dims in the paper, 256 simulated).
        DatasetSpec {
            name: "imdb",
            n: 3550,
            k: 3,
            graph_views: vec![gv(2.9, 0.70, 0.50, 1.0), gv(17.7, 0.70, 0.15, 1.5)],
            attr_views: vec![binary(256, 0.85)],
            knn_k: 500,
            paper: PaperStats {
                n: 3550,
                r: 3,
                edges: vec![5119, 31_439],
                dims: vec![2000],
                k: 3,
            },
        },
        // DBLP: one sparse co-author view, two very dense co-term /
        // co-venue views, bag-of-words attributes.
        DatasetSpec {
            name: "dblp",
            n: 4057,
            k: 4,
            graph_views: vec![
                gv(1.7, 0.90, 0.95, 1.0),
                gv(400.0, 0.68, 0.85, 2.0),
                gv(500.0, 0.70, 0.08, 2.0),
            ],
            attr_views: vec![binary(334, 0.8)],
            knn_k: 10,
            paper: PaperStats {
                n: 4057,
                r: 4,
                edges: vec![3528, 2_498_219, 3_386_139],
                dims: vec![334],
                k: 4,
            },
        },
        // Amazon photos: one co-purchase view + two attribute views
        // (745-dim features and a 7487-dim one-hot-ish view → 256/512 sim).
        DatasetSpec {
            name: "amazon-photos",
            n: 7487,
            k: 8,
            graph_views: vec![gv(31.8, 0.75, 0.85, 2.0)],
            attr_views: vec![gauss(256, 1.8, 1.0, 0.85), binary(512, 0.15)],
            knn_k: 10,
            paper: PaperStats {
                n: 7487,
                r: 3,
                edges: vec![119_043],
                dims: vec![745, 7487],
                k: 8,
            },
        },
        // Amazon computers.
        DatasetSpec {
            name: "amazon-computers",
            n: 13_381,
            k: 10,
            graph_views: vec![gv(36.7, 0.72, 0.85, 2.0)],
            attr_views: vec![gauss(256, 1.6, 1.0, 0.8), binary(512, 0.10)],
            knn_k: 10,
            paper: PaperStats {
                n: 13_381,
                r: 3,
                edges: vec![245_778],
                dims: vec![767, 13_381],
                k: 10,
            },
        },
        // MAG-eng: citation + co-authorship views, two 1000-dim attribute
        // views (128 sim). n scaled 1.8M → 20k, k 55 → 15.
        DatasetSpec {
            name: "mag-eng",
            n: 12_000,
            k: 12,
            graph_views: vec![gv(24.2, 0.75, 0.9, 3.0), gv(5.6, 0.70, 0.15, 2.0)],
            attr_views: vec![gauss(128, 1.5, 1.0, 0.8), gauss(128, 1.2, 1.0, 0.2)],
            knn_k: 10,
            paper: PaperStats {
                n: 1_798_717,
                r: 4,
                edges: vec![43_519_012, 10_112_848],
                dims: vec![1000, 1000],
                k: 55,
            },
        },
        // MAG-phy: n scaled 2.35M → 25k, k 22 → 12.
        DatasetSpec {
            name: "mag-phy",
            n: 15_000,
            k: 10,
            graph_views: vec![gv(109.6, 0.72, 0.85, 3.0), gv(7.7, 0.70, 0.10, 2.0)],
            attr_views: vec![gauss(128, 1.5, 1.0, 0.8), gauss(128, 1.2, 1.0, 0.2)],
            knn_k: 10,
            paper: PaperStats {
                n: 2_353_996,
                r: 4,
                edges: vec![257_706_767, 18_055_930],
                dims: vec![1000, 1000],
                k: 22,
            },
        },
    ]
}

/// Looks up a dataset spec by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    let lower = name.to_ascii_lowercase();
    full_registry().into_iter().find(|s| s.name == lower)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eight_table2_rows() {
        let reg = full_registry();
        assert_eq!(reg.len(), 8);
        let names: Vec<&str> = reg.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "rm",
                "yelp",
                "imdb",
                "dblp",
                "amazon-photos",
                "amazon-computers",
                "mag-eng",
                "mag-phy"
            ]
        );
        // r matches the paper for every dataset.
        for spec in &reg {
            assert_eq!(spec.r(), spec.paper.r, "{}", spec.name);
            assert_eq!(
                spec.graph_views.len(),
                spec.paper.edges.len(),
                "{}",
                spec.name
            );
            assert_eq!(
                spec.attr_views.len(),
                spec.paper.dims.len(),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("yelp").is_some());
        assert!(by_name("YELP").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn generate_small_scale_all() {
        for spec in full_registry() {
            let scale = (200.0 / spec.n as f64).min(1.0);
            let mvag = spec.generate(scale, 3).unwrap();
            assert_eq!(mvag.r(), spec.r(), "{}", spec.name);
            assert_eq!(mvag.k(), spec.k, "{}", spec.name);
            assert!(mvag.n() >= 4 * spec.k, "{}", spec.name);
            assert!(mvag.labels().is_some());
            assert!(mvag.total_edges() > 0, "{}", spec.name);
        }
    }

    #[test]
    fn rm_generates_at_full_scale() {
        let spec = by_name("rm").unwrap();
        let mvag = spec.generate(1.0, 7).unwrap();
        assert_eq!(mvag.n(), 91);
        assert_eq!(mvag.r(), 11);
        // Edge densities within a loose factor of target (paper shape).
        let degrees_target: Vec<f64> = spec.graph_views.iter().map(|g| g.avg_degree).collect();
        let mut idx = 0;
        for view in mvag.views() {
            if let mvag_graph::View::Graph(g) = view {
                let actual = 2.0 * g.num_edges() as f64 / g.n() as f64;
                let target = degrees_target[idx];
                assert!(
                    actual > target * 0.4 && actual < target * 2.5,
                    "view {idx}: avg degree {actual} vs target {target}"
                );
                idx += 1;
            }
        }
    }

    #[test]
    fn generation_deterministic() {
        let spec = by_name("imdb").unwrap();
        let a = spec.generate(0.05, 11).unwrap();
        let b = spec.generate(0.05, 11).unwrap();
        assert_eq!(a, b);
        let c = spec.generate(0.05, 12).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_scale_rejected() {
        let spec = by_name("rm").unwrap();
        assert!(spec.generate(0.0, 1).is_err());
        assert!(spec.generate(f64::NAN, 1).is_err());
        assert!(spec.generate(-1.0, 1).is_err());
    }

    #[test]
    fn effective_knn_clamps() {
        let spec = by_name("imdb").unwrap(); // knn_k = 500
        assert_eq!(spec.effective_knn(3550), 500);
        assert_eq!(spec.effective_knn(100), 25);
        assert_eq!(spec.effective_knn(8), 2);
    }
}

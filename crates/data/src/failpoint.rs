//! Filesystem indirection for crash-consistency testing.
//!
//! Every multi-file layout mutation in the workspace (sharded
//! compaction, in-place shard append) funnels its filesystem effects
//! through the [`LayoutWriter`] trait so tests can substitute a
//! [`FailpointWriter`] that dies — with a torn, truncated final write —
//! at any chosen byte boundary. The crash-consistency harness sweeps
//! the budget over every boundary of a rewrite and asserts the layout
//! on disk is always either the complete old state or the complete
//! new state, never a mix.
//!
//! Production code uses [`FsWriter`], a zero-cost passthrough to
//! `std::fs`. The protocol that makes torn writes safe is the caller's
//! job (write new generational files, then commit with one atomic
//! rename); this module only makes the failure points injectable.

use std::fs;
use std::io;
use std::path::Path;

/// The filesystem surface a layout rewrite is allowed to use.
///
/// Implementations may fail any call; callers must sequence their
/// writes so that an arbitrary failure prefix leaves a loadable
/// layout (all-old or all-new).
pub trait LayoutWriter {
    /// Writes `bytes` to `path`, replacing any existing file.
    ///
    /// # Errors
    /// Propagates I/O failures; a failing implementation may leave a
    /// truncated file behind (a torn write), as a real crash would.
    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` onto `to` (the commit point).
    ///
    /// # Errors
    /// Propagates I/O failures. Implementations never tear a rename:
    /// it either fully happens or not at all, matching POSIX rename.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes `path`. Callers treat failures as best-effort cleanup
    /// (stale files are harmless; the manifest names the live set).
    ///
    /// # Errors
    /// Propagates I/O failures.
    fn remove_file(&mut self, path: &Path) -> io::Result<()>;
}

/// The production writer: a passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsWriter;

impl LayoutWriter for FsWriter {
    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        fs::write(path, bytes)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

/// A writer that simulates a crash partway through a layout rewrite.
///
/// It carries a byte budget. Each `write_file` spends the file's
/// length; the write that would exceed the remaining budget is *torn*
/// — only the affordable prefix reaches the disk — and fails. Renames
/// and removals spend one unit each and, being atomic, either happen
/// (budget available) or don't. Once the budget is exhausted every
/// subsequent call fails, like a process that is gone.
///
/// Sweeping the initial budget from 0 to the total cost of a rewrite
/// exercises a kill at every byte boundary of every file plus every
/// metadata operation.
#[derive(Debug)]
pub struct FailpointWriter {
    budget: usize,
    dead: bool,
}

impl FailpointWriter {
    /// A writer that dies after `budget` bytes (metadata ops cost 1).
    pub fn new(budget: usize) -> FailpointWriter {
        FailpointWriter {
            budget,
            dead: false,
        }
    }

    /// True once a call has failed; everything after is refused.
    pub fn died(&self) -> bool {
        self.dead
    }

    /// Budget not yet spent. A crash-consistency sweep runs once with
    /// a huge budget to measure a rewrite's total cost
    /// (`initial - remaining`), then replays it at every budget below.
    pub fn remaining(&self) -> usize {
        self.budget
    }

    fn crash(&mut self) -> io::Error {
        self.dead = true;
        io::Error::other("failpoint: simulated crash")
    }
}

impl LayoutWriter for FailpointWriter {
    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.dead {
            return Err(self.crash());
        }
        if bytes.len() > self.budget {
            // Torn write: the affordable prefix lands, then the crash.
            let torn = &bytes[..self.budget];
            self.budget = 0;
            fs::write(path, torn)?;
            return Err(self.crash());
        }
        self.budget -= bytes.len();
        fs::write(path, bytes)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        if self.dead || self.budget == 0 {
            return Err(self.crash());
        }
        self.budget -= 1;
        fs::rename(from, to)
    }

    fn remove_file(&mut self, path: &Path) -> io::Result<()> {
        if self.dead || self.budget == 0 {
            return Err(self.crash());
        }
        self.budget -= 1;
        fs::remove_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sgla-failpoint-{}-{name}", std::process::id()))
    }

    #[test]
    fn fs_writer_roundtrips() {
        let a = tmp("a");
        let b = tmp("b");
        let mut w = FsWriter;
        w.write_file(&a, b"hello").unwrap();
        w.rename(&a, &b).unwrap();
        assert_eq!(fs::read(&b).unwrap(), b"hello");
        w.remove_file(&b).unwrap();
        assert!(!b.exists());
    }

    #[test]
    fn failpoint_tears_the_overbudget_write() {
        let path = tmp("torn");
        let mut w = FailpointWriter::new(3);
        let err = w.write_file(&path, b"hello").unwrap_err();
        assert!(err.to_string().contains("failpoint"));
        assert_eq!(fs::read(&path).unwrap(), b"hel");
        assert!(w.died());
        // Everything after the crash fails without touching the disk.
        assert!(w.write_file(&path, b"x").is_err());
        assert_eq!(fs::read(&path).unwrap(), b"hel");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn failpoint_full_budget_behaves_like_fs() {
        let a = tmp("full-a");
        let b = tmp("full-b");
        let mut w = FailpointWriter::new(5 + 1 + 1);
        w.write_file(&a, b"hello").unwrap();
        w.rename(&a, &b).unwrap();
        assert_eq!(fs::read(&b).unwrap(), b"hello");
        w.remove_file(&b).unwrap();
        assert!(!w.died());
        // Budget is now exactly zero: the next metadata op crashes and
        // the rename never happens.
        let c = tmp("full-c");
        fs::write(&c, b"x").unwrap();
        assert!(w.rename(&c, &a).is_err());
        assert!(c.exists() && !a.exists());
        fs::remove_file(&c).ok();
    }
}

//! Shared helpers for the hand-rolled binary codecs.
//!
//! Used by the MVAG persistence in [`crate::io`] and by the
//! `sgla-serve` artifact store, so the length-prefixed string framing
//! and the overflow-safe count-prefixed readers exist exactly once.
//! Every reader bounds-checks against `remaining()` with checked
//! arithmetic before allocating — a hostile length field must produce
//! a `None`, never a panic or a huge allocation.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// CRC-32 (IEEE 802.3), bitwise-reflected, no lookup table — codec
/// bodies are read once at startup, so simplicity beats throughput.
/// Shared by the `sgla-serve` artifact store and the `mvag-index`
/// inverted-file index, so both formats checksum identically.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends a u32-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Reads a u32-length-prefixed UTF-8 string; `None` on truncation or
/// invalid UTF-8.
pub fn get_str(bytes: &mut Bytes) -> Option<String> {
    if bytes.remaining() < 4 {
        return None;
    }
    let len = bytes.get_u32() as usize;
    if bytes.remaining() < len {
        return None;
    }
    String::from_utf8(bytes.copy_to_bytes(len).to_vec()).ok()
}

/// Reads `count` big-endian `f64`s; `None` if fewer bytes remain
/// (overflow-safe for hostile counts).
pub fn get_f64s(bytes: &mut Bytes, count: usize) -> Option<Vec<f64>> {
    if count
        .checked_mul(8)
        .is_none_or(|need| bytes.remaining() < need)
    {
        return None;
    }
    Some((0..count).map(|_| bytes.get_f64()).collect())
}

/// Reads `count` big-endian `u64`s as `usize`; `None` if fewer bytes
/// remain (overflow-safe for hostile counts).
pub fn get_u64s(bytes: &mut Bytes, count: usize) -> Option<Vec<usize>> {
    if count
        .checked_mul(8)
        .is_none_or(|need| bytes.remaining() < need)
    {
        return None;
    }
    Some((0..count).map(|_| bytes.get_u64() as usize).collect())
}

/// Reads `count` big-endian `u32`s as `usize`; `None` if fewer bytes
/// remain (overflow-safe for hostile counts).
pub fn get_u32s(bytes: &mut Bytes, count: usize) -> Option<Vec<usize>> {
    if count
        .checked_mul(4)
        .is_none_or(|need| bytes.remaining() < need)
    {
        return None;
    }
    Some((0..count).map(|_| bytes.get_u32() as usize).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn str_roundtrip_and_truncation() {
        let mut buf = BytesMut::new();
        put_str(&mut buf, "héllo");
        let full = buf.freeze();
        let mut b = full.clone();
        assert_eq!(get_str(&mut b).as_deref(), Some("héllo"));
        for len in 0..full.len() {
            let mut prefix = full.slice(..len);
            assert!(get_str(&mut prefix).is_none(), "prefix {len} decoded");
        }
    }

    #[test]
    fn hostile_counts_return_none() {
        let mut b = Bytes::from(vec![0u8; 16]);
        assert!(get_f64s(&mut b.clone(), usize::MAX).is_none());
        assert!(get_u64s(&mut b.clone(), usize::MAX / 4).is_none());
        assert!(get_u32s(&mut b.clone(), usize::MAX / 2).is_none());
        assert_eq!(get_f64s(&mut b, 2).map(|v| v.len()), Some(2));
    }
}

//! Shared helpers for the hand-rolled binary codecs.
//!
//! Used by the MVAG persistence in [`crate::io`] and by the
//! `sgla-serve` artifact store, so the length-prefixed string framing
//! and the overflow-safe count-prefixed readers exist exactly once.
//! Every reader bounds-checks against `remaining()` with checked
//! arithmetic before allocating — a hostile length field must produce
//! a `None`, never a panic or a huge allocation.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// CRC-32 (IEEE 802.3), bitwise-reflected, no lookup table — codec
/// bodies are read once at startup, so simplicity beats throughput.
/// Shared by the `sgla-serve` artifact store and the `mvag-index`
/// inverted-file index, so both formats checksum identically.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends a u32-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Reads a u32-length-prefixed UTF-8 string; `None` on truncation or
/// invalid UTF-8.
pub fn get_str(bytes: &mut Bytes) -> Option<String> {
    if bytes.remaining() < 4 {
        return None;
    }
    let len = bytes.get_u32() as usize;
    if bytes.remaining() < len {
        return None;
    }
    String::from_utf8(bytes.copy_to_bytes(len).to_vec()).ok()
}

/// Reads `count` big-endian `f64`s; `None` if fewer bytes remain
/// (overflow-safe for hostile counts).
pub fn get_f64s(bytes: &mut Bytes, count: usize) -> Option<Vec<f64>> {
    if count
        .checked_mul(8)
        .is_none_or(|need| bytes.remaining() < need)
    {
        return None;
    }
    Some((0..count).map(|_| bytes.get_f64()).collect())
}

/// Reads `count` big-endian `u64`s as `usize`; `None` if fewer bytes
/// remain (overflow-safe for hostile counts).
pub fn get_u64s(bytes: &mut Bytes, count: usize) -> Option<Vec<usize>> {
    if count
        .checked_mul(8)
        .is_none_or(|need| bytes.remaining() < need)
    {
        return None;
    }
    Some((0..count).map(|_| bytes.get_u64() as usize).collect())
}

/// Reads `count` big-endian `u32`s as `usize`; `None` if fewer bytes
/// remain (overflow-safe for hostile counts).
pub fn get_u32s(bytes: &mut Bytes, count: usize) -> Option<Vec<usize>> {
    if count
        .checked_mul(4)
        .is_none_or(|need| bytes.remaining() < need)
    {
        return None;
    }
    Some((0..count).map(|_| bytes.get_u32() as usize).collect())
}

/// Alignment (bytes) of zero-copy sections in the v5 artifact layout.
///
/// 64 covers a cache line and every SIMD lane width we may ever emit,
/// and any 64-aligned file offset is trivially 8-aligned, so an `f64`
/// row can be borrowed straight out of a page-cache mapping.
pub const SECTION_ALIGN: usize = 64;

/// Smallest multiple of `align` that is `>= off`. `align` must be a
/// power of two; `None` on overflow.
pub fn align_up(off: usize, align: usize) -> Option<usize> {
    debug_assert!(align.is_power_of_two());
    off.checked_add(align - 1).map(|v| v & !(align - 1))
}

/// Pads `buf` with zero bytes until `base + buf.len()` is a multiple
/// of [`SECTION_ALIGN`]. `base` is the absolute file offset at which
/// `buf` will land (the fixed header length, for artifact bodies).
pub fn pad_to_section_align(buf: &mut BytesMut, base: usize) {
    let pos = base + buf.len();
    let target = align_up(pos, SECTION_ALIGN).expect("alignment overflow");
    for _ in pos..target {
        buf.put_u8(0);
    }
}

/// Appends `vals` as raw little-endian `f64`s (the zero-copy section
/// encoding: matches in-memory layout on little-endian targets, so a
/// mapped section can be borrowed as `&[f64]` without a byte swap).
pub fn put_f64s_le(buf: &mut BytesMut, vals: &[f64]) {
    for &v in vals {
        buf.put_slice(&v.to_le_bytes());
    }
}

/// Decodes a raw little-endian `f64` section into an owned vector;
/// `None` unless `bytes.len() == count * 8` exactly.
pub fn f64s_from_le(bytes: &[u8], count: usize) -> Option<Vec<f64>> {
    if count.checked_mul(8) != Some(bytes.len()) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn str_roundtrip_and_truncation() {
        let mut buf = BytesMut::new();
        put_str(&mut buf, "héllo");
        let full = buf.freeze();
        let mut b = full.clone();
        assert_eq!(get_str(&mut b).as_deref(), Some("héllo"));
        for len in 0..full.len() {
            let mut prefix = full.slice(..len);
            assert!(get_str(&mut prefix).is_none(), "prefix {len} decoded");
        }
    }

    #[test]
    fn align_up_properties() {
        assert_eq!(align_up(0, 64), Some(0));
        assert_eq!(align_up(1, 64), Some(64));
        assert_eq!(align_up(64, 64), Some(64));
        assert_eq!(align_up(65, 64), Some(128));
        assert_eq!(align_up(usize::MAX, 64), None);
    }

    #[test]
    fn padding_lands_sections_on_alignment() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"hello");
        pad_to_section_align(&mut buf, 18);
        assert_eq!((18 + buf.len()) % SECTION_ALIGN, 0);
        let before = buf.len();
        pad_to_section_align(&mut buf, 18);
        assert_eq!(buf.len(), before, "already aligned: no-op");
    }

    #[test]
    fn le_f64_roundtrip_and_framing() {
        let vals = [1.5f64, -0.0, f64::MIN_POSITIVE, 1e300];
        let mut buf = BytesMut::new();
        put_f64s_le(&mut buf, &vals);
        let raw = buf.freeze().to_vec();
        let back = f64s_from_le(&raw, vals.len()).unwrap();
        assert_eq!(
            back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            vals.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert!(f64s_from_le(&raw, vals.len() - 1).is_none());
        assert!(f64s_from_le(&raw[..raw.len() - 1], vals.len()).is_none());
    }

    #[test]
    fn hostile_counts_return_none() {
        let mut b = Bytes::from(vec![0u8; 16]);
        assert!(get_f64s(&mut b.clone(), usize::MAX).is_none());
        assert!(get_u64s(&mut b.clone(), usize::MAX / 4).is_none());
        assert!(get_u32s(&mut b.clone(), usize::MAX / 2).is_none());
        assert_eq!(get_f64s(&mut b, 2).map(|v| v.len()), Some(2));
    }
}

//! The id-map sidecar a compaction writes next to a sharded layout.
//!
//! Compaction purges tombstoned rows, so every surviving node's global
//! id shifts down by the number of purged ids below it. Shard files
//! the compaction did *not* rewrite still carry pre-compaction ids in
//! their row-ranged Laplacians (cross-shard edges reference global
//! column ids); the router rebases them at load time using this map.
//! The map is tiny — old/new totals plus the sorted purged-id list —
//! and is persisted as JSON with the same strict, versioned decoding
//! as the shard manifest.
//!
//! ```
//! use mvag_data::idmap::IdMap;
//!
//! let map = IdMap::new(10, vec![2, 5]).unwrap();
//! assert_eq!(map.new_n, 8);
//! assert_eq!(map.map(0), Some(0));
//! assert_eq!(map.map(2), None); // purged
//! assert_eq!(map.map(3), Some(2));
//! assert_eq!(map.map(9), Some(7));
//! let back = IdMap::from_json(&map.to_json()).unwrap();
//! assert_eq!(map, back);
//! ```

use crate::json::{self, Value};
use crate::{DataError, Result};
use std::fs;
use std::path::Path;

/// Format tag embedded in the JSON document; decoders reject others.
pub const IDMAP_FORMAT: &str = "sgla-idmap/1";

/// Monotone id remap from a pre-compaction id space to the compacted
/// one: `map(old) = old - |{p in purged : p < old}|`, undefined for
/// purged ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IdMap {
    /// Node count before compaction.
    pub old_n: usize,
    /// Node count after compaction (`old_n - purged.len()`).
    pub new_n: usize,
    /// Purged (tombstoned, now removed) old ids, strictly increasing.
    pub purged: Vec<usize>,
}

impl IdMap {
    /// Builds and validates a map purging `purged` from `0..old_n`.
    ///
    /// # Errors
    /// [`DataError::InvalidArgument`] if `purged` is not strictly
    /// increasing or reaches `old_n`.
    pub fn new(old_n: usize, purged: Vec<usize>) -> Result<IdMap> {
        let map = IdMap {
            old_n,
            new_n: old_n.saturating_sub(purged.len()),
            purged,
        };
        map.validate()?;
        Ok(map)
    }

    /// Structural checks; see [`IdMap::new`].
    ///
    /// # Errors
    /// [`DataError::InvalidArgument`] on the first inconsistency.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(DataError::InvalidArgument(format!("id map: {msg}")));
        for pair in self.purged.windows(2) {
            if pair[0] >= pair[1] {
                return fail(format!(
                    "purged ids not strictly increasing ({} then {})",
                    pair[0], pair[1]
                ));
            }
        }
        if let Some(&last) = self.purged.last() {
            if last >= self.old_n {
                return fail(format!(
                    "purged id {last} out of range (old_n = {})",
                    self.old_n
                ));
            }
        }
        if self.new_n != self.old_n - self.purged.len() {
            return fail(format!(
                "new_n = {} but old_n - purged = {}",
                self.new_n,
                self.old_n - self.purged.len()
            ));
        }
        Ok(())
    }

    /// New id of old id `old`; `None` if purged or out of range.
    pub fn map(&self, old: usize) -> Option<usize> {
        if old >= self.old_n {
            return None;
        }
        let below = self.purged.partition_point(|&p| p < old);
        if self.purged.get(below) == Some(&old) {
            return None;
        }
        Some(old - below)
    }

    /// Renders the map as a pretty JSON document.
    pub fn to_json(&self) -> String {
        Value::object(vec![
            ("format", Value::from(IDMAP_FORMAT)),
            ("old_n", Value::from(self.old_n)),
            ("new_n", Value::from(self.new_n)),
            (
                "purged",
                Value::Array(self.purged.iter().map(|&p| Value::from(p)).collect()),
            ),
        ])
        .to_string_pretty()
    }

    /// Parses and validates a map from its JSON text.
    ///
    /// # Errors
    /// [`DataError::Serde`] on malformed JSON or a wrong format tag;
    /// [`DataError::InvalidArgument`] on structural inconsistency.
    pub fn from_json(text: &str) -> Result<IdMap> {
        let fail = |msg: &str| DataError::Serde(format!("id map: {msg}"));
        let doc = json::parse(text).map_err(|e| fail(&format!("not JSON: {e}")))?;
        match doc.get("format").and_then(Value::as_str) {
            Some(IDMAP_FORMAT) => {}
            Some(other) => return Err(fail(&format!("unsupported format '{other}'"))),
            None => return Err(fail("missing format tag")),
        }
        let num = |key: &str| {
            doc.get(key)
                .and_then(Value::as_usize)
                .ok_or_else(|| fail(&format!("missing {key}")))
        };
        let purged = doc
            .get("purged")
            .and_then(Value::as_array)
            .ok_or_else(|| fail("missing purged array"))?
            .iter()
            .enumerate()
            .map(|(i, v)| {
                v.as_usize()
                    .ok_or_else(|| fail(&format!("bad purged id at {i}")))
            })
            .collect::<Result<Vec<usize>>>()?;
        let map = IdMap {
            old_n: num("old_n")?,
            new_n: num("new_n")?,
            purged,
        };
        map.validate()?;
        Ok(map)
    }

    /// Saves the map as pretty JSON.
    ///
    /// # Errors
    /// I/O failures.
    pub fn save(&self, path: &Path) -> Result<()> {
        fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Loads and validates a map from `path`.
    ///
    /// # Errors
    /// I/O failures and [`DataError::Serde`] on malformed content.
    pub fn load(path: &Path) -> Result<IdMap> {
        IdMap::from_json(&fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_around_purged_ids() {
        let map = IdMap::new(8, vec![0, 3, 7]).unwrap();
        assert_eq!(map.new_n, 5);
        let mapped: Vec<Option<usize>> = (0..9).map(|i| map.map(i)).collect();
        assert_eq!(
            mapped,
            vec![
                None,
                Some(0),
                Some(1),
                None,
                Some(2),
                Some(3),
                Some(4),
                None,
                None // out of range
            ]
        );
        // Surviving ids map densely onto 0..new_n in order.
        let survivors: Vec<usize> = (0..8).filter_map(|i| map.map(i)).collect();
        assert_eq!(survivors, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn empty_purge_is_identity() {
        let map = IdMap::new(5, vec![]).unwrap();
        for i in 0..5 {
            assert_eq!(map.map(i), Some(i));
        }
        assert_eq!(map.map(5), None);
    }

    #[test]
    fn json_and_file_roundtrip() {
        let map = IdMap::new(100, vec![4, 17, 99]).unwrap();
        assert_eq!(IdMap::from_json(&map.to_json()).unwrap(), map);
        let path =
            std::env::temp_dir().join(format!("sgla-idmap-test-{}.json", std::process::id()));
        map.save(&path).unwrap();
        let back = IdMap::load(&path).unwrap();
        fs::remove_file(&path).ok();
        assert_eq!(back, map);
    }

    #[test]
    fn invalid_maps_rejected() {
        assert!(IdMap::new(8, vec![3, 3]).is_err()); // duplicate
        assert!(IdMap::new(8, vec![5, 2]).is_err()); // unsorted
        assert!(IdMap::new(8, vec![8]).is_err()); // out of range
        let bad = IdMap {
            old_n: 8,
            new_n: 8,
            purged: vec![1],
        };
        assert!(bad.validate().is_err()); // inconsistent new_n
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(IdMap::from_json("not json").is_err());
        let good = IdMap::new(4, vec![1]).unwrap().to_json();
        assert!(IdMap::from_json(&good.replace(IDMAP_FORMAT, "sgla-idmap/9")).is_err());
        for len in (0..good.len()).step_by(5) {
            assert!(IdMap::from_json(&good[..len]).is_err(), "prefix of {len}");
        }
        // Structural validation also runs on the parsed document.
        let unsorted = r#"{"format": "sgla-idmap/1", "old_n": 4, "new_n": 2, "purged": [3, 1]}"#;
        assert!(IdMap::from_json(unsorted).is_err());
    }
}

//! Error type for the dataset suite.

use mvag_graph::GraphError;
use std::fmt;

/// Errors raised by dataset generation and persistence.
#[derive(Debug)]
pub enum DataError {
    /// Graph/MVAG construction failed.
    Graph(GraphError),
    /// Filesystem I/O failed.
    Io(std::io::Error),
    /// (De)serialization failed.
    Serde(String),
    /// A persisted file failed framing or checksum verification —
    /// truncated, bit-flipped, mis-versioned, or otherwise not the
    /// bytes that were written. Distinct from [`DataError::Serde`] so
    /// storage-engine callers can treat corruption as a first-class,
    /// retryable-from-backup condition.
    Corrupt(String),
    /// Structurally invalid input.
    InvalidArgument(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Graph(e) => write!(f, "graph error: {e}"),
            DataError::Io(e) => write!(f, "io error: {e}"),
            DataError::Serde(msg) => write!(f, "serialization error: {msg}"),
            DataError::Corrupt(msg) => write!(f, "corrupt file: {msg}"),
            DataError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Graph(e) => Some(e),
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for DataError {
    fn from(e: GraphError) -> Self {
        DataError::Graph(e)
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<crate::json::ParseError> for DataError {
    fn from(e: crate::json::ParseError) -> Self {
        DataError::Serde(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(DataError::InvalidArgument("x".into())
            .to_string()
            .contains("invalid"));
        assert!(DataError::Serde("bad".into())
            .to_string()
            .contains("serialization"));
        assert!(DataError::Corrupt("crc".into())
            .to_string()
            .contains("corrupt"));
        let io: DataError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(io.to_string().contains("io error"));
    }
}

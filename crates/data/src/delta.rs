//! Binary persistence for MVAG deltas.
//!
//! An [`MvagDelta`] is the unit of change the incremental
//! artifact-update pipeline consumes (`Artifact::update`,
//! `sgla-serve update`): new nodes, per-view new edges / attribute
//! rows, the appended nodes' planted labels — and, since format v2,
//! tombstone removals and in-place edge/attribute edits. Persisting
//! deltas makes updates *replayable* — an operator can generate a
//! delta once, apply it to a serving artifact, and keep the file as
//! the update's provenance record.
//!
//! Same container conventions as every other codec in the workspace:
//! magic + format version + body length + CRC-32 of the body, all
//! integers big-endian, every body read bounds-checked so truncated or
//! hostile input yields a typed [`DataError::Corrupt`], never a panic.
//!
//! ## Versions
//!
//! * **v1** — append-only: `added_nodes`, per-view edges/rows, labels.
//!   Still decodes; a v1 file becomes a pure append (empty
//!   `removed_nodes`/`edits`).
//! * **v2** (current) — v1's sections plus a strictly-increasing
//!   tombstone list after `added_nodes` and a tagged edits section
//!   (edge-weight sets, attribute-row overwrites, in apply order)
//!   before the label flag. See `docs/ARCHITECTURE.md` for the
//!   byte-level spec.

use crate::codec::{crc32, get_f64s, get_u64s};
use crate::{DataError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mvag_graph::{DeltaEdit, MvagDelta, ViewDelta};
use mvag_sparse::DenseMatrix;
use std::fs;
use std::path::Path;

/// `"SGLD"` in ASCII (SGLa Delta).
const MAGIC: u32 = 0x5347_4C44;
/// Current delta file format version (tombstones + edits).
pub const DELTA_FORMAT_VERSION: u16 = 2;
/// The append-only v1 format, still decodable.
pub const DELTA_FORMAT_VERSION_V1: u16 = 1;

/// Per-view kind tags on the wire.
const KIND_EDGES: u8 = 0;
const KIND_ROWS: u8 = 1;

/// Edit kind tags on the wire (v2 edits section).
const EDIT_EDGE: u8 = 0;
const EDIT_ROW: u8 = 1;

/// Encodes a delta into the versioned, checksummed binary format
/// (always the current version, v2).
pub fn encode_delta(delta: &MvagDelta) -> Bytes {
    let mut body = BytesMut::with_capacity(1 << 12);
    body.put_u64(delta.added_nodes as u64);
    body.put_u64(delta.removed_nodes.len() as u64);
    for &r in &delta.removed_nodes {
        body.put_u64(r as u64);
    }
    body.put_u64(delta.views.len() as u64);
    for view in &delta.views {
        match view {
            ViewDelta::Edges(edges) => {
                body.put_u8(KIND_EDGES);
                body.put_u64(edges.len() as u64);
                for &(u, v, w) in edges {
                    body.put_u64(u as u64);
                    body.put_u64(v as u64);
                    body.put_f64(w);
                }
            }
            ViewDelta::Rows(rows) => {
                body.put_u8(KIND_ROWS);
                body.put_u64(rows.nrows() as u64);
                body.put_u64(rows.ncols() as u64);
                for &v in rows.data() {
                    body.put_f64(v);
                }
            }
        }
    }
    // One tagged edits section, in delta order, so apply order
    // survives the round-trip bit-exactly.
    body.put_u64(delta.edits.len() as u64);
    for edit in &delta.edits {
        match edit {
            DeltaEdit::EdgeWeight { view, u, v, w } => {
                body.put_u8(EDIT_EDGE);
                body.put_u64(*view as u64);
                body.put_u64(*u as u64);
                body.put_u64(*v as u64);
                body.put_f64(*w);
            }
            DeltaEdit::AttrRow { view, node, row } => {
                body.put_u8(EDIT_ROW);
                body.put_u64(*view as u64);
                body.put_u64(*node as u64);
                body.put_u64(row.len() as u64);
                for &v in row {
                    body.put_f64(v);
                }
            }
        }
    }
    match &delta.added_labels {
        Some(labels) => {
            body.put_u8(1);
            body.put_u64(labels.len() as u64);
            for &l in labels {
                body.put_u64(l as u64);
            }
        }
        None => body.put_u8(0),
    }
    let body = body.freeze();
    let mut out = BytesMut::with_capacity(body.len() + 18);
    out.put_u32(MAGIC);
    out.put_u16(DELTA_FORMAT_VERSION);
    out.put_u64(body.len() as u64);
    out.put_u32(crc32(body.as_ref()));
    out.put_slice(body.as_ref());
    out.freeze()
}

/// Decodes a delta, verifying magic, version, length, and checksum
/// before touching the payload. v1 files decode as pure appends.
/// Structural validation against a concrete MVAG (view count/kinds,
/// label ranges, edit targets) happens later, in
/// [`Mvag::apply_delta`](mvag_graph::Mvag::apply_delta).
///
/// # Errors
/// [`DataError::Corrupt`] on any framing, checksum, or structural
/// problem — truncation and byte flips always yield this typed error,
/// never a panic or a mis-framed decode.
pub fn decode_delta(mut bytes: Bytes) -> Result<MvagDelta> {
    let fail = |msg: &str| DataError::Corrupt(format!("MVAG delta: {msg}"));
    if bytes.remaining() < 18 {
        return Err(fail("shorter than the fixed header"));
    }
    if bytes.get_u32() != MAGIC {
        return Err(fail("bad magic (not an SGLA delta)"));
    }
    let version = bytes.get_u16();
    if version != DELTA_FORMAT_VERSION && version != DELTA_FORMAT_VERSION_V1 {
        return Err(fail(&format!(
            "unsupported format version {version} (expected {DELTA_FORMAT_VERSION_V1} or \
             {DELTA_FORMAT_VERSION})"
        )));
    }
    let body_len = bytes.get_u64();
    let expect_crc = bytes.get_u32();
    if bytes.remaining() as u64 != body_len {
        return Err(fail(&format!(
            "body length mismatch: header says {body_len}, got {}",
            bytes.remaining()
        )));
    }
    if crc32(bytes.as_ref()) != expect_crc {
        return Err(fail("checksum mismatch (delta bytes were altered)"));
    }
    if bytes.remaining() < 8 {
        return Err(fail("truncated counts"));
    }
    let added_nodes = bytes.get_u64() as usize;

    // v2: tombstone section directly after added_nodes.
    let removed_nodes = if version >= 2 {
        if bytes.remaining() < 8 {
            return Err(fail("truncated removal count"));
        }
        let count = bytes.get_u64() as usize;
        let removed =
            get_u64s(&mut bytes, count).ok_or_else(|| fail("truncated removed node ids"))?;
        for pair in removed.windows(2) {
            if pair[0] >= pair[1] {
                return Err(fail("removed node ids not strictly increasing"));
            }
        }
        removed
    } else {
        Vec::new()
    };

    if bytes.remaining() < 8 {
        return Err(fail("truncated view count"));
    }
    let num_views = bytes.get_u64() as usize;
    // A view entry is at least 9 bytes; an absurd count cannot demand
    // a huge allocation.
    if num_views > bytes.remaining() / 9 + 1 {
        return Err(fail("view count exceeds the body"));
    }
    let mut views = Vec::with_capacity(num_views);
    for i in 0..num_views {
        if bytes.remaining() < 9 {
            return Err(fail(&format!("truncated view entry {i}")));
        }
        match bytes.get_u8() {
            KIND_EDGES => {
                let count = bytes.get_u64() as usize;
                if count > bytes.remaining() / 24 {
                    return Err(fail(&format!("view {i}: edge count exceeds the body")));
                }
                let mut edges = Vec::with_capacity(count);
                for _ in 0..count {
                    let u = bytes.get_u64() as usize;
                    let v = bytes.get_u64() as usize;
                    let w = bytes.get_f64();
                    edges.push((u, v, w));
                }
                views.push(ViewDelta::Edges(edges));
            }
            KIND_ROWS => {
                if bytes.remaining() < 16 {
                    return Err(fail(&format!("view {i}: truncated row header")));
                }
                let nrows = bytes.get_u64() as usize;
                let ncols = bytes.get_u64() as usize;
                let count = nrows
                    .checked_mul(ncols)
                    .ok_or_else(|| fail(&format!("view {i}: row shape overflow")))?;
                let data = get_f64s(&mut bytes, count)
                    .ok_or_else(|| fail(&format!("view {i}: truncated row data")))?;
                let rows = DenseMatrix::from_vec(nrows, ncols, data)
                    .map_err(|e| fail(&format!("view {i}: bad row shape: {e}")))?;
                views.push(ViewDelta::Rows(rows));
            }
            other => return Err(fail(&format!("view {i}: unknown kind tag {other}"))),
        }
    }

    // v2: the tagged edits section between views and labels.
    let mut edits = Vec::new();
    if version >= 2 {
        if bytes.remaining() < 8 {
            return Err(fail("truncated edit count"));
        }
        let count = bytes.get_u64() as usize;
        // The smallest edit (a zero-width row overwrite) is 25 bytes.
        if count > bytes.remaining() / 25 {
            return Err(fail("edit count exceeds the body"));
        }
        edits.reserve(count);
        for i in 0..count {
            if bytes.remaining() < 25 {
                return Err(fail(&format!("truncated edit {i}")));
            }
            match bytes.get_u8() {
                EDIT_EDGE => {
                    if bytes.remaining() < 32 {
                        return Err(fail(&format!("truncated edge edit {i}")));
                    }
                    let view = bytes.get_u64() as usize;
                    let u = bytes.get_u64() as usize;
                    let v = bytes.get_u64() as usize;
                    let w = bytes.get_f64();
                    edits.push(DeltaEdit::EdgeWeight { view, u, v, w });
                }
                EDIT_ROW => {
                    let view = bytes.get_u64() as usize;
                    let node = bytes.get_u64() as usize;
                    let width = bytes.get_u64() as usize;
                    let row = get_f64s(&mut bytes, width)
                        .ok_or_else(|| fail(&format!("truncated row edit {i}")))?;
                    edits.push(DeltaEdit::AttrRow { view, node, row });
                }
                other => return Err(fail(&format!("edit {i}: unknown kind tag {other}"))),
            }
        }
    }

    if bytes.remaining() < 1 {
        return Err(fail("truncated label flag"));
    }
    let added_labels = match bytes.get_u8() {
        0 => None,
        1 => {
            if bytes.remaining() < 8 {
                return Err(fail("truncated label count"));
            }
            let count = bytes.get_u64() as usize;
            Some(get_u64s(&mut bytes, count).ok_or_else(|| fail("truncated labels"))?)
        }
        other => return Err(fail(&format!("bad label flag {other}"))),
    };
    if bytes.remaining() != 0 {
        return Err(fail("trailing bytes after payload"));
    }
    Ok(MvagDelta {
        added_nodes,
        views,
        added_labels,
        removed_nodes,
        edits,
    })
}

/// Saves a delta to `path`.
///
/// # Errors
/// I/O failures.
pub fn save_delta(delta: &MvagDelta, path: &Path) -> Result<()> {
    fs::write(path, encode_delta(delta))?;
    Ok(())
}

/// Loads and verifies a delta from `path`.
///
/// # Errors
/// I/O failures and [`DataError::Corrupt`] for malformed content.
pub fn load_delta(path: &Path) -> Result<MvagDelta> {
    decode_delta(Bytes::from(fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvag_graph::generators::{
        random_append_delta, random_crud_delta, AppendConfig, CrudConfig,
    };

    fn sample_delta() -> MvagDelta {
        let mvag = crate::toy_mvag(40, 2, 9);
        random_append_delta(
            &mvag,
            &AppendConfig {
                added_nodes: 4,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn sample_crud_delta(seed: u64) -> MvagDelta {
        let mvag = crate::toy_mvag(40, 2, 9);
        random_crud_delta(
            &mvag,
            &CrudConfig {
                append: AppendConfig {
                    added_nodes: 3,
                    seed,
                    ..Default::default()
                },
                removed_nodes: 4,
                edge_edits: 3,
                row_edits: 2,
            },
        )
        .unwrap()
    }

    /// Byte-replica of the retired v1 encoder — the backward-compat
    /// oracle for "v1 files decode as pure appends".
    fn encode_v1(delta: &MvagDelta) -> Bytes {
        assert!(delta.is_append_only(), "v1 cannot carry removals/edits");
        let mut body = BytesMut::with_capacity(1 << 12);
        body.put_u64(delta.added_nodes as u64);
        body.put_u64(delta.views.len() as u64);
        for view in &delta.views {
            match view {
                ViewDelta::Edges(edges) => {
                    body.put_u8(KIND_EDGES);
                    body.put_u64(edges.len() as u64);
                    for &(u, v, w) in edges {
                        body.put_u64(u as u64);
                        body.put_u64(v as u64);
                        body.put_f64(w);
                    }
                }
                ViewDelta::Rows(rows) => {
                    body.put_u8(KIND_ROWS);
                    body.put_u64(rows.nrows() as u64);
                    body.put_u64(rows.ncols() as u64);
                    for &v in rows.data() {
                        body.put_f64(v);
                    }
                }
            }
        }
        match &delta.added_labels {
            Some(labels) => {
                body.put_u8(1);
                body.put_u64(labels.len() as u64);
                for &l in labels {
                    body.put_u64(l as u64);
                }
            }
            None => body.put_u8(0),
        }
        let body = body.freeze();
        let mut out = BytesMut::with_capacity(body.len() + 18);
        out.put_u32(MAGIC);
        out.put_u16(DELTA_FORMAT_VERSION_V1);
        out.put_u64(body.len() as u64);
        out.put_u32(crc32(body.as_ref()));
        out.put_slice(body.as_ref());
        out.freeze()
    }

    #[test]
    fn roundtrip_bit_exact() {
        let delta = sample_delta();
        let back = decode_delta(encode_delta(&delta)).unwrap();
        assert_eq!(delta, back);
        // Label-less deltas round-trip too.
        let unlabeled = MvagDelta {
            added_labels: None,
            ..delta
        };
        assert_eq!(unlabeled, decode_delta(encode_delta(&unlabeled)).unwrap());
    }

    #[test]
    fn crud_roundtrip_bit_exact() {
        let delta = sample_crud_delta(7);
        assert!(!delta.removed_nodes.is_empty());
        assert!(!delta.edits.is_empty());
        let encoded = encode_delta(&delta);
        let back = decode_delta(encoded.clone()).unwrap();
        assert_eq!(delta, back);
        // Re-encoding the decode is byte-identical.
        assert_eq!(encoded, encode_delta(&back));
    }

    #[test]
    fn v1_files_decode_as_pure_appends() {
        let delta = sample_delta();
        let v1 = encode_v1(&delta);
        let back = decode_delta(v1).unwrap();
        assert_eq!(back, delta);
        assert!(back.is_append_only());
        assert!(back.removed_nodes.is_empty() && back.edits.is_empty());
    }

    #[test]
    fn file_roundtrip_and_apply() {
        let mvag = crate::toy_mvag(40, 2, 9);
        let delta = sample_delta();
        let path = std::env::temp_dir().join(format!("sgla-delta-test-{}.mvd", std::process::id()));
        save_delta(&delta, &path).unwrap();
        let back = load_delta(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let updated = mvag.apply_delta(&back).unwrap();
        assert_eq!(updated.n(), 44);
    }

    #[test]
    fn crud_file_roundtrip_and_apply() {
        let mvag = crate::toy_mvag(40, 2, 9);
        let delta = sample_crud_delta(11);
        let path =
            std::env::temp_dir().join(format!("sgla-crud-delta-test-{}.mvd", std::process::id()));
        save_delta(&delta, &path).unwrap();
        let back = load_delta(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let updated = mvag.apply_delta(&back).unwrap();
        assert_eq!(updated.n(), 43);
    }

    #[test]
    fn corrupt_and_truncated_input_errors() {
        let raw = encode_delta(&sample_crud_delta(3)).to_vec();
        // Bad magic, bad version, flipped body byte.
        for (pos, flip) in [(0usize, 0xffu8), (5, 0x7f), (raw.len() - 1, 0x01)] {
            let mut bad = raw.clone();
            bad[pos] ^= flip;
            let err = decode_delta(Bytes::from(bad)).unwrap_err();
            assert!(
                matches!(err, DataError::Corrupt(_)),
                "pos {pos}: wrong error class {err}"
            );
        }
        // Every strided truncation errors, never panics.
        for len in (0..raw.len()).step_by(13).chain(0..24) {
            let err = decode_delta(Bytes::from(raw[..len].to_vec())).unwrap_err();
            assert!(matches!(err, DataError::Corrupt(_)), "prefix of {len}");
        }
        // Unsorted tombstones are rejected even under a valid CRC.
        let delta = MvagDelta {
            removed_nodes: vec![3, 1],
            ..MvagDelta::default()
        };
        let err = decode_delta(encode_delta(&delta)).unwrap_err();
        assert!(matches!(err, DataError::Corrupt(_)));
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        /// Builds an arbitrary structurally-encodable delta from a seed:
        /// random appends, strictly-increasing tombstones, edge/row
        /// edits in random interleaving, optional labels. Semantic
        /// validity against a concrete MVAG is *not* required — the
        /// codec round-trips structure, `apply_delta` validates later.
        fn arbitrary_delta(seed: u64) -> MvagDelta {
            let mut rng = StdRng::seed_from_u64(seed);
            let added_nodes = rng.gen_range(0..5usize);
            let num_views = rng.gen_range(0..4usize);
            let views = (0..num_views)
                .map(|_| {
                    if rng.gen::<f64>() < 0.5 {
                        let edges = (0..rng.gen_range(0..6usize))
                            .map(|_| {
                                (
                                    rng.gen_range(0..64usize),
                                    rng.gen_range(0..64usize),
                                    rng.gen::<f64>() * 4.0,
                                )
                            })
                            .collect();
                        ViewDelta::Edges(edges)
                    } else {
                        let nrows = rng.gen_range(0..4usize);
                        let ncols = rng.gen_range(1..5usize);
                        let data = (0..nrows * ncols).map(|_| rng.gen::<f64>() - 0.5).collect();
                        ViewDelta::Rows(DenseMatrix::from_vec(nrows, ncols, data).unwrap())
                    }
                })
                .collect();
            let mut removed: Vec<usize> = (0..rng.gen_range(0..5usize))
                .map(|_| rng.gen_range(0..64))
                .collect();
            removed.sort_unstable();
            removed.dedup();
            let edits = (0..rng.gen_range(0..5usize))
                .map(|_| {
                    if rng.gen::<f64>() < 0.5 {
                        DeltaEdit::EdgeWeight {
                            view: rng.gen_range(0..4),
                            u: rng.gen_range(0..64),
                            v: rng.gen_range(0..64),
                            w: rng.gen::<f64>() * 2.0,
                        }
                    } else {
                        let width = rng.gen_range(1..5usize);
                        DeltaEdit::AttrRow {
                            view: rng.gen_range(0..4),
                            node: rng.gen_range(0..64),
                            row: (0..width).map(|_| rng.gen::<f64>()).collect(),
                        }
                    }
                })
                .collect();
            let added_labels = if rng.gen::<f64>() < 0.5 {
                Some((0..added_nodes).map(|_| rng.gen_range(0..4)).collect())
            } else {
                None
            };
            MvagDelta {
                added_nodes,
                views,
                added_labels,
                removed_nodes: removed,
                edits,
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(96))]

            /// Random CRUD deltas round-trip bit-exactly: decode
            /// inverts encode, and re-encoding the decode reproduces
            /// the original bytes.
            #[test]
            fn roundtrip_is_bit_exact(seed in 0u64..1 << 48) {
                let delta = arbitrary_delta(seed);
                let encoded = encode_delta(&delta);
                let back = decode_delta(encoded.clone()).unwrap();
                prop_assert_eq!(&back, &delta);
                prop_assert_eq!(encode_delta(&back), encoded);
            }

            /// Any single byte flip yields a typed `Corrupt` error —
            /// never a panic, never a silently mis-framed decode.
            #[test]
            fn byte_flip_is_typed_corrupt(seed in 0u64..1 << 48, poke in 0u64..1 << 32) {
                let raw = encode_delta(&arbitrary_delta(seed)).to_vec();
                let pos = (poke as usize) % raw.len();
                let mut bad = raw.clone();
                bad[pos] ^= 1u8 << (seed % 8);
                let err = decode_delta(Bytes::from(bad)).unwrap_err();
                prop_assert!(
                    matches!(err, DataError::Corrupt(_)),
                    "flip at {} gave {}", pos, err
                );
            }

            /// Any strict-prefix truncation yields a typed `Corrupt`
            /// error.
            #[test]
            fn truncation_is_typed_corrupt(seed in 0u64..1 << 48, cut in 0u64..1 << 32) {
                let raw = encode_delta(&arbitrary_delta(seed)).to_vec();
                let len = (cut as usize) % raw.len();
                let err = decode_delta(Bytes::from(raw[..len].to_vec())).unwrap_err();
                prop_assert!(
                    matches!(err, DataError::Corrupt(_)),
                    "prefix {} gave {}", len, err
                );
            }

            /// v1 files (byte-oracle encoder) decode as pure appends,
            /// equal to the original append-only delta.
            #[test]
            fn v1_decodes_as_pure_append(seed in 0u64..1 << 48) {
                let delta = MvagDelta {
                    removed_nodes: Vec::new(),
                    edits: Vec::new(),
                    ..arbitrary_delta(seed)
                };
                let back = decode_delta(encode_v1(&delta)).unwrap();
                prop_assert!(back.is_append_only());
                prop_assert_eq!(back, delta);
            }
        }
    }
}

//! Binary persistence for append-only MVAG deltas.
//!
//! An [`MvagDelta`] is the unit of change the incremental
//! artifact-update pipeline consumes (`Artifact::update`,
//! `sgla-serve update`): new nodes, per-view new edges / attribute
//! rows, and the appended nodes' planted labels. Persisting deltas
//! makes updates *replayable* — an operator can generate a delta once,
//! apply it to a serving artifact, and keep the file as the update's
//! provenance record.
//!
//! Same container conventions as every other codec in the workspace:
//! magic + format version + body length + CRC-32 of the body, all
//! integers big-endian, every body read bounds-checked so truncated or
//! hostile input yields a typed [`DataError`], never a panic.

use crate::codec::{crc32, get_f64s, get_u64s};
use crate::{DataError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use mvag_graph::{MvagDelta, ViewDelta};
use mvag_sparse::DenseMatrix;
use std::fs;
use std::path::Path;

/// `"SGLD"` in ASCII (SGLa Delta).
const MAGIC: u32 = 0x5347_4C44;
/// Current delta file format version.
pub const DELTA_FORMAT_VERSION: u16 = 1;

/// Per-view kind tags on the wire.
const KIND_EDGES: u8 = 0;
const KIND_ROWS: u8 = 1;

/// Encodes a delta into the versioned, checksummed binary format.
pub fn encode_delta(delta: &MvagDelta) -> Bytes {
    let mut body = BytesMut::with_capacity(1 << 12);
    body.put_u64(delta.added_nodes as u64);
    body.put_u64(delta.views.len() as u64);
    for view in &delta.views {
        match view {
            ViewDelta::Edges(edges) => {
                body.put_u8(KIND_EDGES);
                body.put_u64(edges.len() as u64);
                for &(u, v, w) in edges {
                    body.put_u64(u as u64);
                    body.put_u64(v as u64);
                    body.put_f64(w);
                }
            }
            ViewDelta::Rows(rows) => {
                body.put_u8(KIND_ROWS);
                body.put_u64(rows.nrows() as u64);
                body.put_u64(rows.ncols() as u64);
                for &v in rows.data() {
                    body.put_f64(v);
                }
            }
        }
    }
    match &delta.added_labels {
        Some(labels) => {
            body.put_u8(1);
            body.put_u64(labels.len() as u64);
            for &l in labels {
                body.put_u64(l as u64);
            }
        }
        None => body.put_u8(0),
    }
    let body = body.freeze();
    let mut out = BytesMut::with_capacity(body.len() + 18);
    out.put_u32(MAGIC);
    out.put_u16(DELTA_FORMAT_VERSION);
    out.put_u64(body.len() as u64);
    out.put_u32(crc32(body.as_ref()));
    out.put_slice(body.as_ref());
    out.freeze()
}

/// Decodes a delta, verifying magic, version, length, and checksum
/// before touching the payload. Structural validation against a
/// concrete MVAG (view count/kinds, label ranges) happens later, in
/// [`Mvag::apply_delta`](mvag_graph::Mvag::apply_delta).
///
/// # Errors
/// [`DataError::Serde`] on any structural problem.
pub fn decode_delta(mut bytes: Bytes) -> Result<MvagDelta> {
    let fail = |msg: &str| DataError::Serde(format!("MVAG delta: {msg}"));
    if bytes.remaining() < 18 {
        return Err(fail("shorter than the fixed header"));
    }
    if bytes.get_u32() != MAGIC {
        return Err(fail("bad magic (not an SGLA delta)"));
    }
    let version = bytes.get_u16();
    if version != DELTA_FORMAT_VERSION {
        return Err(fail(&format!(
            "unsupported format version {version} (expected {DELTA_FORMAT_VERSION})"
        )));
    }
    let body_len = bytes.get_u64();
    let expect_crc = bytes.get_u32();
    if bytes.remaining() as u64 != body_len {
        return Err(fail(&format!(
            "body length mismatch: header says {body_len}, got {}",
            bytes.remaining()
        )));
    }
    if crc32(bytes.as_ref()) != expect_crc {
        return Err(fail("checksum mismatch (delta bytes were altered)"));
    }
    if bytes.remaining() < 16 {
        return Err(fail("truncated counts"));
    }
    let added_nodes = bytes.get_u64() as usize;
    let num_views = bytes.get_u64() as usize;
    // A view entry is at least 9 bytes; an absurd count cannot demand
    // a huge allocation.
    if num_views > bytes.remaining() / 9 + 1 {
        return Err(fail("view count exceeds the body"));
    }
    let mut views = Vec::with_capacity(num_views);
    for i in 0..num_views {
        if bytes.remaining() < 9 {
            return Err(fail(&format!("truncated view entry {i}")));
        }
        match bytes.get_u8() {
            KIND_EDGES => {
                let count = bytes.get_u64() as usize;
                if count > bytes.remaining() / 24 {
                    return Err(fail(&format!("view {i}: edge count exceeds the body")));
                }
                let mut edges = Vec::with_capacity(count);
                for _ in 0..count {
                    let u = bytes.get_u64() as usize;
                    let v = bytes.get_u64() as usize;
                    let w = bytes.get_f64();
                    edges.push((u, v, w));
                }
                views.push(ViewDelta::Edges(edges));
            }
            KIND_ROWS => {
                if bytes.remaining() < 16 {
                    return Err(fail(&format!("view {i}: truncated row header")));
                }
                let nrows = bytes.get_u64() as usize;
                let ncols = bytes.get_u64() as usize;
                let count = nrows
                    .checked_mul(ncols)
                    .ok_or_else(|| fail(&format!("view {i}: row shape overflow")))?;
                let data = get_f64s(&mut bytes, count)
                    .ok_or_else(|| fail(&format!("view {i}: truncated row data")))?;
                let rows = DenseMatrix::from_vec(nrows, ncols, data)
                    .map_err(|e| fail(&format!("view {i}: bad row shape: {e}")))?;
                views.push(ViewDelta::Rows(rows));
            }
            other => return Err(fail(&format!("view {i}: unknown kind tag {other}"))),
        }
    }
    if bytes.remaining() < 1 {
        return Err(fail("truncated label flag"));
    }
    let added_labels = match bytes.get_u8() {
        0 => None,
        1 => {
            if bytes.remaining() < 8 {
                return Err(fail("truncated label count"));
            }
            let count = bytes.get_u64() as usize;
            Some(get_u64s(&mut bytes, count).ok_or_else(|| fail("truncated labels"))?)
        }
        other => return Err(fail(&format!("bad label flag {other}"))),
    };
    if bytes.remaining() != 0 {
        return Err(fail("trailing bytes after payload"));
    }
    Ok(MvagDelta {
        added_nodes,
        views,
        added_labels,
    })
}

/// Saves a delta to `path`.
///
/// # Errors
/// I/O failures.
pub fn save_delta(delta: &MvagDelta, path: &Path) -> Result<()> {
    fs::write(path, encode_delta(delta))?;
    Ok(())
}

/// Loads and verifies a delta from `path`.
///
/// # Errors
/// I/O failures and [`DataError::Serde`] for malformed content.
pub fn load_delta(path: &Path) -> Result<MvagDelta> {
    decode_delta(Bytes::from(fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvag_graph::generators::{random_append_delta, AppendConfig};

    fn sample_delta() -> MvagDelta {
        let mvag = crate::toy_mvag(40, 2, 9);
        random_append_delta(
            &mvag,
            &AppendConfig {
                added_nodes: 4,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_bit_exact() {
        let delta = sample_delta();
        let back = decode_delta(encode_delta(&delta)).unwrap();
        assert_eq!(delta, back);
        // Label-less deltas round-trip too.
        let unlabeled = MvagDelta {
            added_labels: None,
            ..delta
        };
        assert_eq!(unlabeled, decode_delta(encode_delta(&unlabeled)).unwrap());
    }

    #[test]
    fn file_roundtrip_and_apply() {
        let mvag = crate::toy_mvag(40, 2, 9);
        let delta = sample_delta();
        let path = std::env::temp_dir().join(format!("sgla-delta-test-{}.mvd", std::process::id()));
        save_delta(&delta, &path).unwrap();
        let back = load_delta(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let updated = mvag.apply_delta(&back).unwrap();
        assert_eq!(updated.n(), 44);
    }

    #[test]
    fn corrupt_and_truncated_input_errors() {
        let raw = encode_delta(&sample_delta()).to_vec();
        // Bad magic, bad version, flipped body byte.
        for (pos, flip) in [(0usize, 0xffu8), (5, 0x7f), (raw.len() - 1, 0x01)] {
            let mut bad = raw.clone();
            bad[pos] ^= flip;
            assert!(decode_delta(Bytes::from(bad)).is_err(), "pos {pos}");
        }
        // Every strided truncation errors, never panics.
        for len in (0..raw.len()).step_by(13).chain(0..24) {
            assert!(
                decode_delta(Bytes::from(raw[..len].to_vec())).is_err(),
                "prefix of {len} decoded"
            );
        }
    }
}

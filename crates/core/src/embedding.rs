//! Node embedding from the MVAG Laplacian (Section III-B downstream).
//!
//! The paper plugs `L` into matrix-factorization network embedding: NetMF
//! \[33\] on small/medium graphs and SketchNE \[34\] on the million-scale
//! ones. Here:
//!
//! * [`EmbedBackend::NetMf`] — a faithful NetMF-small: the integrated
//!   graph's random-walk similarity `S = (1/T) Σ_t P̃ᵗ` is densified, the
//!   pointwise log `max(·, 1)` transform applied, and the result factorized
//!   by randomized SVD; embedding = `U_d Σ_d^{1/2}`. `O(T·nnz·n + n²)` —
//!   exactly the regime NetMF targets.
//! * [`EmbedBackend::Spectral`] — the scalable substitute for SketchNE
//!   (whose sparse-sign sketching we do not reproduce): the bottom
//!   eigenpairs of `L` scaled by the DeepWalk spectral filter
//!   `f(λ) = (1/T) Σ_t (1−λ)ᵗ`. This keeps the same spectral content as
//!   NetMF's similarity but skips the elementwise log (DESIGN.md §3
//!   documents the substitution). `O(dim · nnz)` per Lanczos pass.
//!
//! The integrated graph is recovered from `L` as `Â = −offdiag(L)`, which
//! for an aggregation of normalized Laplacians is exactly the weighted sum
//! of the views' normalized adjacencies.

use crate::{Result, SglaError};
use mvag_sparse::eigen::{
    smallest_eigenpairs, smallest_eigenpairs_subspace, EigOptions, SubspaceOptions,
};
use mvag_sparse::svd::{rsvd, RsvdOptions};
use mvag_sparse::{CooMatrix, CsrMatrix, DenseMatrix};

/// Embedding backend selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmbedBackend {
    /// Pick NetMF below `netmf_threshold` nodes, spectral above.
    #[default]
    Auto,
    /// Dense NetMF factorization (exact small-window NetMF).
    NetMf,
    /// Filtered spectral embedding (SketchNE substitute).
    Spectral,
}

/// Parameters for [`embed`].
#[derive(Debug, Clone)]
pub struct EmbedParams {
    /// Embedding dimension (the paper fixes 64).
    pub dim: usize,
    /// Random-walk window `T` (NetMF default 5).
    pub window: usize,
    /// Negative-sampling parameter `b` (NetMF default 1).
    pub negative: f64,
    /// Above this node count, `Auto` switches to the spectral backend
    /// (default 4096 — the dense `n × n` NetMF matrix is the limiter).
    pub netmf_threshold: usize,
    /// Backend override.
    pub backend: EmbedBackend,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for dense kernels.
    pub threads: usize,
}

impl Default for EmbedParams {
    fn default() -> Self {
        EmbedParams {
            dim: 64,
            window: 5,
            negative: 1.0,
            netmf_threshold: 4096,
            backend: EmbedBackend::Auto,
            seed: 31,
            threads: mvag_sparse::parallel::default_threads(),
        }
    }
}

/// Embeds the nodes of the integrated graph represented by the MVAG
/// Laplacian `l` into `params.dim` dimensions.
///
/// # Errors
/// [`SglaError::InvalidArgument`] for non-square input or
/// `dim >= n`; propagates eigensolver/SVD failures.
pub fn embed(l: &CsrMatrix, params: &EmbedParams) -> Result<DenseMatrix> {
    embed_warm(l, params, None)
}

/// [`embed`] with an optional warm start: `warm` is an `n × c` block
/// whose column span approximates the sought embedding subspace —
/// typically the previous embedding of a slightly perturbed graph,
/// padded with an approximate row per appended node. Only the
/// [`EmbedBackend::Spectral`] path can exploit it (its eigensolvers
/// accept initial blocks and stop early once warm Ritz values settle);
/// NetMF is a dense factorization with no iterative state and ignores
/// the guess. Results differ from a cold [`embed`] only within the
/// eigensolver's embedding-grade tolerance.
///
/// # Errors
/// As [`embed`], plus [`SglaError::InvalidArgument`] when `warm` has
/// the wrong row count.
pub fn embed_warm(
    l: &CsrMatrix,
    params: &EmbedParams,
    warm: Option<&DenseMatrix>,
) -> Result<DenseMatrix> {
    let n = l.nrows();
    if let Some(w) = warm {
        if w.nrows() != n {
            return Err(SglaError::InvalidArgument(format!(
                "warm-start block has {} rows for n = {n}",
                w.nrows()
            )));
        }
    }
    if l.ncols() != n {
        return Err(SglaError::InvalidArgument(format!(
            "laplacian is {}x{}, must be square",
            l.nrows(),
            l.ncols()
        )));
    }
    if params.dim == 0 || params.dim + 1 >= n {
        return Err(SglaError::InvalidArgument(format!(
            "embedding dim {} invalid for n = {n}",
            params.dim
        )));
    }
    if params.window == 0 {
        return Err(SglaError::InvalidArgument(
            "window must be at least 1".into(),
        ));
    }
    let backend = match params.backend {
        EmbedBackend::Auto => {
            if n <= params.netmf_threshold {
                EmbedBackend::NetMf
            } else {
                EmbedBackend::Spectral
            }
        }
        b => b,
    };
    let mut span = mvag_obs::span("train.embed");
    span.counter("dim", params.dim as u64);
    match backend {
        EmbedBackend::NetMf => netmf_small(l, params),
        EmbedBackend::Spectral => spectral_embed(l, params, warm),
        EmbedBackend::Auto => unreachable!("resolved above"),
    }
}

/// Recovers the integrated weighted adjacency `Â = −offdiag(L)` (entries
/// clamped at 0 — exact for convex combinations of normalized Laplacians).
pub fn adjacency_from_laplacian(l: &CsrMatrix) -> CsrMatrix {
    let n = l.nrows();
    let mut coo = CooMatrix::with_capacity(n, n, l.nnz());
    for (r, c, v) in l.iter() {
        if r != c && v < 0.0 {
            coo.push(r, c, -v).expect("indices from valid matrix");
        }
    }
    coo.to_csr()
}

fn netmf_small(l: &CsrMatrix, params: &EmbedParams) -> Result<DenseMatrix> {
    let n = l.nrows();
    let adj = adjacency_from_laplacian(l);
    let deg = adj.row_sums();
    let vol: f64 = deg.iter().sum();
    if vol <= 0.0 {
        return Err(SglaError::InvalidArgument(
            "integrated graph has no edges; cannot embed".into(),
        ));
    }
    let p_tilde = adj.sym_normalized();
    // S_dense = (1/T) Σ_{t=1..T} P̃ᵗ, accumulated via sparse × dense.
    let mut power = DenseMatrix::identity(n);
    let mut s_acc = DenseMatrix::zeros(n, n);
    for _t in 0..params.window {
        power = spmm_par(&p_tilde, &power, params.threads);
        s_acc.add_scaled(1.0 / params.window as f64, &power)?;
    }
    // M = (vol / b) · D^{-1/2} S D^{-1/2}, then log(max(M, 1)).
    let inv_sqrt: Vec<f64> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let scale = vol / params.negative;
    for i in 0..n {
        let row = s_acc.row_mut(i);
        let isi = inv_sqrt[i];
        for (j, v) in row.iter_mut().enumerate() {
            *v = (*v * isi * inv_sqrt[j] * scale).max(1.0).ln();
        }
    }
    // Rank-d randomized SVD; embedding = U √Σ.
    let svd = rsvd(
        &s_acc,
        params.dim,
        &RsvdOptions {
            seed: params.seed,
            threads: params.threads,
            ..Default::default()
        },
    )?;
    let mut emb = svd.u;
    for j in 0..params.dim {
        let s = svd.s[j].max(0.0).sqrt();
        for i in 0..n {
            emb[(i, j)] *= s;
        }
    }
    Ok(emb)
}

/// Sparse × dense product for the NetMF power accumulation: one pooled
/// traversal of each CSR row updates the whole dense block
/// ([`CsrMatrix::matvec_block`] — the same fused kernel the block
/// subspace eigensolver uses).
fn spmm_par(a: &CsrMatrix, b: &DenseMatrix, threads: usize) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(a.nrows(), b.ncols());
    a.matvec_block(b, &mut out, threads);
    out
}

fn spectral_embed(
    l: &CsrMatrix,
    params: &EmbedParams,
    warm: Option<&DenseMatrix>,
) -> Result<DenseMatrix> {
    let n = l.nrows();
    // The eigensolver seed block: the (near-)trivial λ ≈ 0 direction
    // up front — cheap and always right for a normalized Laplacian —
    // followed by the caller's warm columns (previous embedding
    // directions).
    let init = warm.map(|w| {
        let c = w.ncols().min(params.dim);
        let mut block = DenseMatrix::zeros(n, c + 1);
        let flat = 1.0 / (n as f64).sqrt();
        for i in 0..n {
            block[(i, 0)] = flat;
        }
        for j in 0..c {
            block.set_col(j + 1, &w.col(j));
        }
        block
    });
    // dim + 1 pairs: the first (trivial, λ ≈ 0) carries no discriminative
    // signal and is dropped. For the many-eigenpair regime (embeddings)
    // block subspace iteration is far cheaper than Lanczos with full
    // reorthogonalization; for small dims Lanczos is more accurate.
    let pairs = if params.dim + 1 > 24 {
        smallest_eigenpairs_subspace(
            l,
            params.dim + 1,
            &SubspaceOptions {
                seed: params.seed,
                threads: params.threads,
                // Warm runs may stop sweeping once Ritz values settle
                // to embedding grade; cold runs keep the historical
                // fixed sweep count.
                tol: if init.is_some() { 1e-3 } else { 0.0 },
                init: init.clone(),
                ..Default::default()
            },
        )?
    } else {
        let mut eig_opts = EigOptions::default();
        eig_opts.seed = params.seed;
        eig_opts.threads = params.threads;
        eig_opts.init = init;
        smallest_eigenpairs(l, params.dim + 1, &eig_opts)?
    };
    let mut emb = DenseMatrix::zeros(n, params.dim);
    for j in 0..params.dim {
        let lambda = pairs.values[j + 1];
        let mu = (1.0 - lambda).clamp(-1.0, 1.0);
        // DeepWalk filter f(μ) = (1/T) Σ_{t=1..T} μᵗ, clamped at 0.
        let mut f = 0.0;
        let mut mu_t = 1.0;
        for _ in 0..params.window {
            mu_t *= mu;
            f += mu_t;
        }
        f = (f / params.window as f64).max(0.0);
        let w = f.sqrt();
        for i in 0..n {
            emb[(i, j)] = pairs.vectors[(i, j + 1)] * w;
        }
    }
    Ok(emb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::{KnnParams, ViewLaplacians};
    use mvag_graph::generators::{balanced_labels, sbm, SbmConfig};
    use mvag_graph::toy::toy_mvag;
    use mvag_sparse::vecops;

    fn planted_laplacian(n: usize, seed: u64) -> (CsrMatrix, Vec<usize>) {
        let labels = balanced_labels(n, 2).unwrap();
        let g = sbm(
            &labels,
            &SbmConfig {
                p_in: 0.25,
                p_out: 0.01,
                ..Default::default()
            },
            seed,
        )
        .unwrap();
        (g.normalized_laplacian(), labels)
    }

    /// Mean cosine similarity within vs across ground-truth clusters.
    fn separation(emb: &DenseMatrix, labels: &[usize]) -> (f64, f64) {
        let n = emb.nrows();
        let (mut within, mut across) = (0.0, 0.0);
        let (mut cw, mut ca) = (0usize, 0usize);
        for i in (0..n).step_by(3) {
            for j in ((i + 1)..n).step_by(3) {
                let c = vecops::cosine(emb.row(i), emb.row(j));
                if labels[i] == labels[j] {
                    within += c;
                    cw += 1;
                } else {
                    across += c;
                    ca += 1;
                }
            }
        }
        (within / cw.max(1) as f64, across / ca.max(1) as f64)
    }

    #[test]
    fn netmf_separates_planted_clusters() {
        let (l, labels) = planted_laplacian(150, 3);
        let params = EmbedParams {
            dim: 16,
            backend: EmbedBackend::NetMf,
            ..Default::default()
        };
        let emb = embed(&l, &params).unwrap();
        assert_eq!(emb.nrows(), 150);
        assert_eq!(emb.ncols(), 16);
        let (within, across) = separation(&emb, &labels);
        assert!(within > across + 0.2, "within {within} vs across {across}");
    }

    #[test]
    fn spectral_separates_planted_clusters() {
        let (l, labels) = planted_laplacian(150, 5);
        let params = EmbedParams {
            dim: 16,
            backend: EmbedBackend::Spectral,
            ..Default::default()
        };
        let emb = embed(&l, &params).unwrap();
        let (within, across) = separation(&emb, &labels);
        assert!(within > across + 0.2, "within {within} vs across {across}");
    }

    #[test]
    fn auto_backend_switches() {
        let (l, _) = planted_laplacian(120, 7);
        let small = EmbedParams {
            dim: 8,
            netmf_threshold: 200,
            ..Default::default()
        };
        let large = EmbedParams {
            dim: 8,
            netmf_threshold: 50,
            ..Default::default()
        };
        // Both must run; NetMF and spectral give different matrices.
        let e1 = embed(&l, &small).unwrap();
        let e2 = embed(&l, &large).unwrap();
        assert_eq!(e1.nrows(), e2.nrows());
        let diff: f64 = e1
            .data()
            .iter()
            .zip(e2.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "backends should differ");
    }

    #[test]
    fn warm_embed_agrees_with_cold_subspace() {
        let (l, labels) = planted_laplacian(400, 21);
        // dim 26 > 24 routes through block subspace iteration (the
        // warm-exploiting path).
        let params = EmbedParams {
            dim: 26,
            backend: EmbedBackend::Spectral,
            ..Default::default()
        };
        let cold = embed(&l, &params).unwrap();
        let warm = embed_warm(&l, &params, Some(&cold)).unwrap();
        assert_eq!(warm.nrows(), 400);
        assert_eq!(warm.ncols(), 26);
        // Same cluster separation quality as the cold run.
        let (cw, ca) = separation(&cold, &labels);
        let (ww, wa) = separation(&warm, &labels);
        assert!(ww > wa + 0.2, "warm within {ww} vs across {wa}");
        assert!((cw - ww).abs() < 0.1 && (ca - wa).abs() < 0.1);
        // Wrong-sized warm blocks are rejected.
        assert!(embed_warm(&l, &params, Some(&DenseMatrix::zeros(3, 2))).is_err());
        // The Lanczos path (small dim) accepts a warm block too.
        let small = EmbedParams {
            dim: 6,
            backend: EmbedBackend::Spectral,
            ..Default::default()
        };
        let cold_small = embed(&l, &small).unwrap();
        let warm_small = embed_warm(&l, &small, Some(&cold_small)).unwrap();
        let (sw, sa) = separation(&warm_small, &labels);
        assert!(sw > sa + 0.2, "warm lanczos within {sw} vs across {sa}");
    }

    #[test]
    fn adjacency_roundtrip_from_laplacian() {
        let mvag = toy_mvag(60, 2, 1);
        let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        let l = views.aggregate(&[0.5, 0.3, 0.2]).unwrap();
        let adj = adjacency_from_laplacian(&l);
        assert!(adj.is_symmetric(1e-10));
        assert!(adj.values().iter().all(|&v| v >= 0.0));
        assert!(adj.diag().iter().all(|&d| d == 0.0));
    }

    #[test]
    fn validates_input() {
        let (l, _) = planted_laplacian(50, 9);
        let bad_dim = EmbedParams {
            dim: 0,
            ..Default::default()
        };
        assert!(embed(&l, &bad_dim).is_err());
        let too_big = EmbedParams {
            dim: 50,
            ..Default::default()
        };
        assert!(embed(&l, &too_big).is_err());
        let no_window = EmbedParams {
            dim: 4,
            window: 0,
            ..Default::default()
        };
        assert!(embed(&l, &no_window).is_err());
        assert!(embed(&CsrMatrix::zeros(3, 4), &EmbedParams::default()).is_err());
    }

    #[test]
    fn edgeless_graph_rejected_by_netmf() {
        let l = CsrMatrix::identity(60); // Laplacian of an edgeless graph
        let params = EmbedParams {
            dim: 4,
            backend: EmbedBackend::NetMf,
            ..Default::default()
        };
        assert!(embed(&l, &params).is_err());
    }

    #[test]
    fn deterministic() {
        let (l, _) = planted_laplacian(100, 11);
        let params = EmbedParams {
            dim: 8,
            ..Default::default()
        };
        let a = embed(&l, &params).unwrap();
        let b = embed(&l, &params).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn spmm_matches_sequential_matvec() {
        let (l, _) = planted_laplacian(80, 13);
        let b = DenseMatrix::identity(80);
        let prod = spmm_par(&l, &b, 4);
        // l × I = l.
        for (r, c, v) in l.iter() {
            assert!((prod[(r, c)] - v).abs() < 1e-12);
        }
    }
}

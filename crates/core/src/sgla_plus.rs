//! SGLA+ — Algorithm 2 of the paper.
//!
//! The expensive part of SGLA is that *every* optimizer step costs one
//! eigenvalue solve. SGLA+ caps that cost at exactly `r + 1` solves:
//!
//! 1. **Sampling** — evaluate `h` at the uniform vector `w₀ = (1/r, …)`
//!    and at the midpoints `w_ℓ = (w₀ + 1_ℓ)/2` towards each one-hot
//!    vertex (each emphasizing one view);
//! 2. **Regression** — fit the quadratic surrogate `h_Θ*` through those
//!    observations via the ridge-regularized least-squares of Eq. (9);
//! 3. **Surrogate optimization** — minimize `h_Θ*` over the simplex with
//!    the same COBYLA-style optimizer; surrogate evaluations cost `O(r²)`
//!    instead of an eigensolve.
//!
//! Total: `O(r(m + qnK))` — the optimization loop no longer touches the
//! graph at all (the paper's Section V-B complexity argument).

use crate::objective::SglaObjective;
use crate::sgla::{SglaOutcome, SglaParams, TracePoint};
use crate::views::ViewLaplacians;
use crate::{Result, SglaError};
use mvag_optim::cobyla::{cobyla, CobylaParams};
use mvag_optim::simplex::{expand_weights, project_simplex, reduced_simplex_constraints};
use mvag_optim::QuadraticSurrogate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Algorithm 2: surrogate-accelerated spectrum-guided optimization.
#[derive(Debug, Clone)]
pub struct SglaPlus {
    params: SglaParams,
}

impl SglaPlus {
    /// Creates the algorithm with the given parameters.
    pub fn new(params: SglaParams) -> Self {
        SglaPlus { params }
    }

    /// Access to the parameters.
    pub fn params(&self) -> &SglaParams {
        &self.params
    }

    /// The canonical `r + 1` weight-vector samples (Algorithm 2, lines
    /// 1–3), adjusted by `extra_samples` (Δs of Fig. 10): negatives drop
    /// random non-uniform samples, positives append random simplex points.
    pub fn sample_weights(&self, r: usize) -> Vec<Vec<f64>> {
        let mut samples: Vec<Vec<f64>> = Vec::with_capacity(r + 1);
        let w0 = vec![1.0 / r as f64; r];
        samples.push(w0.clone());
        for l in 0..r {
            let mut w = w0.clone();
            for (i, slot) in w.iter_mut().enumerate() {
                let onehot = if i == l { 1.0 } else { 0.0 };
                *slot = (*slot + onehot) / 2.0;
            }
            samples.push(w);
        }
        let mut rng = StdRng::seed_from_u64(self.params.seed ^ 0x5151_5151);
        match self.params.extra_samples {
            d if d < 0 => {
                let remove = (-d) as usize;
                for _ in 0..remove {
                    if samples.len() <= 2 {
                        break;
                    }
                    // Keep the uniform sample (index 0); drop a random other.
                    let idx = 1 + rng.gen_range(0..samples.len() - 1);
                    samples.remove(idx);
                }
            }
            d if d > 0 => {
                for _ in 0..d as usize {
                    // Random point on the simplex via exponential spacings.
                    let mut w: Vec<f64> = (0..r)
                        .map(|_| -(rng.gen::<f64>().max(1e-300)).ln())
                        .collect();
                    let s: f64 = w.iter().sum();
                    for x in w.iter_mut() {
                        *x /= s;
                    }
                    samples.push(w);
                }
            }
            _ => {}
        }
        samples
    }

    /// Integrates the views into an MVAG Laplacian for `k` clusters.
    ///
    /// # Errors
    /// Propagates objective, regression, and optimizer failures.
    pub fn integrate(&self, views: &ViewLaplacians, k: usize) -> Result<SglaOutcome> {
        let _phase = mvag_obs::span("train.integrate");
        let obj = SglaObjective::new(views, k, self.params.gamma, self.params.mode, {
            let mut eig = self.params.eig.clone();
            eig.seed = self.params.seed;
            eig
        })?;
        let r = views.r();
        let p = r - 1;

        // Lines 1–6: sample and evaluate the expensive objective.
        let samples = self.sample_weights(r);
        let mut values = Vec::with_capacity(samples.len());
        let mut trace = Vec::with_capacity(samples.len());
        for (i, w) in samples.iter().enumerate() {
            let val = obj.evaluate(w)?;
            values.push(val.h);
            trace.push(TracePoint {
                eval: i + 1,
                weights: w.clone(),
                h: val.h,
            });
        }

        // Line 7: regression for Θ*.
        let mut surrogate_span = mvag_obs::span("train.surrogate");
        let surrogate = QuadraticSurrogate::fit(&samples, &values, self.params.alpha_r)?;

        // Lines 8–14: optimize the cheap surrogate.
        let v0 = vec![1.0 / r as f64; p];
        let constraints = reduced_simplex_constraints(p);
        let res = cobyla(
            |v| surrogate.eval_reduced(v),
            &constraints,
            &v0,
            &CobylaParams {
                rho_start: 0.15,
                rho_end: self.params.epsilon.max(1e-9),
                // Surrogate evaluations are O(r²): afford a generous budget
                // so the surrogate optimum is located accurately.
                max_evals: (self.params.t_max * 20).max(400),
            },
        )?;
        let mut weights = expand_weights(&res.x);
        project_simplex(&mut weights);
        surrogate_span.counter("surrogate_evals", res.evals as u64);
        drop(surrogate_span);

        // Line 15: materialize L at w†.
        let _agg = mvag_obs::span("train.aggregate");
        let laplacian = views.aggregate(&weights)?;
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(SglaError::InvalidArgument(
                "surrogate optimization produced non-finite weights".into(),
            ));
        }
        Ok(SglaOutcome {
            weights,
            laplacian,
            objective: res.fx,
            evaluations: obj.evaluations(),
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveMode;
    use crate::sgla::Sgla;
    use crate::views::KnnParams;
    use mvag_graph::toy::{figure2_example, toy_mvag};
    use mvag_optim::simplex::is_on_simplex;
    use mvag_sparse::eigen::EigOptions;

    #[test]
    fn canonical_sampling_scheme_matches_paper_example4() {
        // r = 3 → w₀ = (1/3, 1/3, 1/3), w₁ = (2/3, 1/6, 1/6), etc.
        let plus = SglaPlus::new(SglaParams::default());
        let s = plus.sample_weights(3);
        assert_eq!(s.len(), 4);
        for w in &s {
            assert!(is_on_simplex(w, 1e-12), "{w:?}");
        }
        assert!((s[0][0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((s[1][0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((s[1][1] - 1.0 / 6.0).abs() < 1e-12);
        assert!((s[2][1] - 2.0 / 3.0).abs() < 1e-12);
        assert!((s[3][2] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn extra_samples_adjustment() {
        let mk = |d: i64| {
            SglaPlus::new(SglaParams {
                extra_samples: d,
                ..Default::default()
            })
            .sample_weights(4)
        };
        assert_eq!(mk(0).len(), 5);
        assert_eq!(mk(2).len(), 7);
        assert_eq!(mk(-2).len(), 3);
        assert_eq!(mk(-10).len(), 2, "never drops below 2 samples");
        for w in mk(3) {
            assert!(is_on_simplex(&w, 1e-9), "{w:?}");
        }
    }

    #[test]
    fn uses_exactly_r_plus_one_evaluations() {
        let views = ViewLaplacians::build(&figure2_example(), &KnnParams::default()).unwrap();
        let out = SglaPlus::new(SglaParams::default())
            .integrate(&views, 2)
            .unwrap();
        assert_eq!(out.evaluations, 3); // r = 2 → r + 1 = 3
        assert_eq!(out.trace.len(), 3);
        assert!(is_on_simplex(&out.weights, 1e-9));
    }

    #[test]
    fn fewer_evaluations_than_sgla() {
        let mvag = toy_mvag(150, 3, 77);
        let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        let plus = SglaPlus::new(SglaParams::default())
            .integrate(&views, 3)
            .unwrap();
        let base = Sgla::new(SglaParams::default())
            .integrate(&views, 3)
            .unwrap();
        assert!(
            plus.evaluations < base.evaluations,
            "SGLA+ {} vs SGLA {}",
            plus.evaluations,
            base.evaluations
        );
        assert_eq!(plus.evaluations, 4); // r = 3
    }

    #[test]
    fn surrogate_optimum_close_to_direct_optimum() {
        // The paper's Fig. 3 observation: h_Θ*'s minimizer is close to h's.
        // Verify through the true objective: h(w†) should be within a
        // modest margin of h(w*).
        let mvag = toy_mvag(120, 2, 9);
        let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        let base = Sgla::new(SglaParams::default())
            .integrate(&views, 2)
            .unwrap();
        let plus = SglaPlus::new(SglaParams::default())
            .integrate(&views, 2)
            .unwrap();
        let obj =
            SglaObjective::new(&views, 2, 0.5, ObjectiveMode::Full, EigOptions::default()).unwrap();
        let h_star = obj.evaluate(&base.weights).unwrap().h;
        let h_dagger = obj.evaluate(&plus.weights).unwrap().h;
        assert!(
            h_dagger <= h_star + 0.15 * (1.0 + h_star.abs()),
            "h(w†) = {h_dagger} vs h(w*) = {h_star}"
        );
    }

    #[test]
    fn deterministic() {
        let views = ViewLaplacians::build(&figure2_example(), &KnnParams::default()).unwrap();
        let a = SglaPlus::new(SglaParams::default())
            .integrate(&views, 2)
            .unwrap();
        let b = SglaPlus::new(SglaParams::default())
            .integrate(&views, 2)
            .unwrap();
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn invalid_k_rejected() {
        let views = ViewLaplacians::build(&figure2_example(), &KnnParams::default()).unwrap();
        assert!(SglaPlus::new(SglaParams::default())
            .integrate(&views, 1)
            .is_err());
    }
}

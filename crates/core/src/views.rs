//! View-Laplacian construction (Section III-B of the paper).
//!
//! Each of the `r` views of an MVAG contributes one normalized Laplacian
//! `Lᵢ`:
//!
//! * a graph view `Gᵢ` contributes `L(Gᵢ) = I − D^{-1/2} Aᵢ D^{-1/2}`;
//! * an attribute view `Xⱼ` contributes `L(G_K(Xⱼ))` — the normalized
//!   Laplacian of its similarity-weighted KNN graph.
//!
//! The resulting [`ViewLaplacians`] is the immutable input shared by SGLA,
//! SGLA+, and all the baseline integrations; building it is a one-time
//! preprocessing cost that the experiment harness includes in every
//! reported total runtime (as the paper does in Figs. 5–6).

use crate::{Result, SglaError};
use mvag_graph::knn::{knn_graph, KnnConfig};
use mvag_graph::{Mvag, View};
use mvag_sparse::linop::ScaledSumOp;
use mvag_sparse::{CsrMatrix, FusedSumOp};

/// KNN construction parameters for attribute views.
#[derive(Debug, Clone)]
pub struct KnnParams {
    /// Default number of neighbours `K` (the paper uses 10).
    pub k: usize,
    /// Per-attribute-view overrides, keyed by the view's position among
    /// attribute views (0-based). The paper uses K = 200 for Yelp and
    /// K = 500 for IMDB whose attribute views are more informative.
    pub overrides: Vec<(usize, usize)>,
    /// Worker threads for the KNN search.
    pub threads: usize,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams {
            k: 10,
            overrides: Vec::new(),
            threads: mvag_sparse::parallel::default_threads(),
        }
    }
}

impl KnnParams {
    /// The `K` to use for the `idx`-th attribute view.
    fn k_for(&self, idx: usize) -> usize {
        self.overrides
            .iter()
            .find_map(|&(i, k)| (i == idx).then_some(k))
            .unwrap_or(self.k)
    }
}

/// The `r` view Laplacians of an MVAG, ready for weighted aggregation.
#[derive(Debug, Clone)]
pub struct ViewLaplacians {
    laplacians: Vec<CsrMatrix>,
    n: usize,
    /// Which original views are graph views (true) vs attribute views.
    is_graph: Vec<bool>,
}

impl ViewLaplacians {
    /// Builds all view Laplacians from an MVAG.
    ///
    /// # Errors
    /// Propagates KNN-construction failures (e.g. `K ≥ n`).
    pub fn build(mvag: &Mvag, knn: &KnnParams) -> Result<Self> {
        let _phase = mvag_obs::span("train.views");
        let mut laplacians = Vec::with_capacity(mvag.r());
        let mut is_graph = Vec::with_capacity(mvag.r());
        let mut attr_idx = 0usize;
        for (view_idx, view) in mvag.views().iter().enumerate() {
            let mut span = mvag_obs::span("train.view_laplacian");
            span.counter("view", view_idx as u64);
            match view {
                View::Graph(g) => {
                    laplacians.push(g.normalized_laplacian());
                    is_graph.push(true);
                }
                View::Attributes(x) => {
                    let k = knn.k_for(attr_idx).min(x.nrows().saturating_sub(1)).max(1);
                    span.counter("knn_k", k as u64);
                    let g = knn_graph(
                        x,
                        &KnnConfig {
                            k,
                            threads: knn.threads,
                        },
                    )?;
                    laplacians.push(g.normalized_laplacian());
                    is_graph.push(false);
                    attr_idx += 1;
                }
            }
        }
        Ok(ViewLaplacians {
            laplacians,
            n: mvag.n(),
            is_graph,
        })
    }

    /// Incrementally refreshes these view Laplacians for an updated
    /// MVAG (same views, `updated.n() >= self.n()` after an
    /// append-only delta): views flagged in `changed` are rebuilt from
    /// `updated` exactly as [`ViewLaplacians::build`] would, while
    /// unchanged views reuse their existing Laplacian, extended with
    /// identity rows for the appended (necessarily isolated) nodes —
    /// which is *bit-identical* to rebuilding them, at `O(nnz)` copy
    /// cost instead of a KNN search or Laplacian recomputation.
    ///
    /// Callers derive `changed` from
    /// [`MvagDelta::changed_views`](mvag_graph::MvagDelta::changed_views):
    /// a graph view changes only when it gains edges; an attribute
    /// view changes whenever rows are appended.
    ///
    /// # Errors
    /// [`SglaError::InvalidArgument`] if `updated` does not line up
    /// with these views (count, kind, shrunken node count); propagates
    /// KNN-construction failures for rebuilt attribute views.
    pub fn update(
        &self,
        updated: &Mvag,
        knn: &KnnParams,
        changed: &[bool],
    ) -> Result<ViewLaplacians> {
        if updated.r() != self.r() || changed.len() != self.r() {
            return Err(SglaError::InvalidArgument(format!(
                "update: {} views / {} changed flags for {} existing Laplacians",
                updated.r(),
                changed.len(),
                self.r()
            )));
        }
        if updated.n() < self.n {
            return Err(SglaError::InvalidArgument(format!(
                "update: node count shrank from {} to {} (deltas are append-only)",
                self.n,
                updated.n()
            )));
        }
        let _phase = mvag_obs::span("train.views");
        let n_new = updated.n();
        let mut laplacians = Vec::with_capacity(self.r());
        let mut is_graph = Vec::with_capacity(self.r());
        let mut attr_idx = 0usize;
        for (i, view) in updated.views().iter().enumerate() {
            match view {
                View::Graph(g) => {
                    if !self.is_graph[i] {
                        return Err(SglaError::InvalidArgument(format!(
                            "update: view {i} changed kind (was an attribute view)"
                        )));
                    }
                    if changed[i] {
                        laplacians.push(g.normalized_laplacian());
                    } else {
                        laplacians.push(extend_laplacian(&self.laplacians[i], n_new)?);
                    }
                    is_graph.push(true);
                }
                View::Attributes(x) => {
                    if self.is_graph[i] {
                        return Err(SglaError::InvalidArgument(format!(
                            "update: view {i} changed kind (was a graph view)"
                        )));
                    }
                    if changed[i] {
                        let k = knn.k_for(attr_idx).min(x.nrows().saturating_sub(1)).max(1);
                        let g = knn_graph(
                            x,
                            &KnnConfig {
                                k,
                                threads: knn.threads,
                            },
                        )?;
                        laplacians.push(g.normalized_laplacian());
                    } else {
                        laplacians.push(extend_laplacian(&self.laplacians[i], n_new)?);
                    }
                    is_graph.push(false);
                    attr_idx += 1;
                }
            }
        }
        Ok(ViewLaplacians {
            laplacians,
            n: n_new,
            is_graph,
        })
    }

    /// Wraps pre-built Laplacians (all `n × n`, symmetric).
    ///
    /// # Errors
    /// [`SglaError::InvalidArgument`] on shape inconsistencies or fewer
    /// than 2 views.
    pub fn from_laplacians(laplacians: Vec<CsrMatrix>) -> Result<Self> {
        if laplacians.len() < 2 {
            return Err(SglaError::InvalidArgument(format!(
                "need r >= 2 view Laplacians, got {}",
                laplacians.len()
            )));
        }
        let n = laplacians[0].nrows();
        for (i, l) in laplacians.iter().enumerate() {
            if l.nrows() != n || l.ncols() != n {
                return Err(SglaError::InvalidArgument(format!(
                    "view Laplacian {i} is {}x{}, expected {n}x{n}",
                    l.nrows(),
                    l.ncols()
                )));
            }
        }
        let r = laplacians.len();
        Ok(ViewLaplacians {
            laplacians,
            n,
            is_graph: vec![true; r],
        })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of views `r`.
    pub fn r(&self) -> usize {
        self.laplacians.len()
    }

    /// The individual Laplacians.
    pub fn laplacians(&self) -> &[CsrMatrix] {
        &self.laplacians
    }

    /// Whether view `i` originated from a graph view.
    pub fn is_graph_view(&self, i: usize) -> bool {
        self.is_graph[i]
    }

    /// A lazy aggregation operator `L(w) = Σ wᵢ Lᵢ` (Eq. 1) for the given
    /// weights — no materialization, `O(Σ nnz)` per matvec.
    ///
    /// # Errors
    /// [`SglaError::InvalidArgument`] on weight-length mismatch.
    pub fn aggregate_op(&self, weights: &[f64]) -> Result<ScaledSumOp<'_>> {
        self.check_weights(weights)?;
        Ok(ScaledSumOp::new(
            self.laplacians.iter().collect(),
            weights.to_vec(),
        ))
    }

    /// A fused aggregation operator: pattern analysis runs once here,
    /// then [`FusedSumOp::set_weights`] refreshes the scratch CSR in
    /// `O(Σ nnz)` per weight vector while every matvec streams a single
    /// matrix instead of `r`. This is what the objective's inner
    /// eigensolves use — weights are fixed for the duration of a solve,
    /// so the refresh amortizes over hundreds of matvecs.
    ///
    /// # Errors
    /// [`SglaError::InvalidArgument`] on weight-length mismatch.
    pub fn fused_op(&self, weights: &[f64]) -> Result<FusedSumOp<'_>> {
        self.check_weights(weights)?;
        Ok(FusedSumOp::new(
            self.laplacians.iter().collect(),
            weights.to_vec(),
        )?)
    }

    /// Validates a candidate weight vector against these views (length
    /// and finiteness) without constructing anything.
    ///
    /// # Errors
    /// [`SglaError::InvalidArgument`] on mismatch or non-finite entries.
    pub fn validate_weights(&self, weights: &[f64]) -> Result<()> {
        self.check_weights(weights)
    }

    /// Materializes the MVAG Laplacian `L = Σ wᵢ Lᵢ` (Eq. 1).
    ///
    /// # Errors
    /// [`SglaError::InvalidArgument`] on weight-length mismatch.
    pub fn aggregate(&self, weights: &[f64]) -> Result<CsrMatrix> {
        self.check_weights(weights)?;
        let refs: Vec<&CsrMatrix> = self.laplacians.iter().collect();
        Ok(CsrMatrix::linear_combination(&refs, weights)?)
    }

    /// The `r` changed-flags of a no-op refresh (rebuild everything).
    pub fn all_changed(&self) -> Vec<bool> {
        vec![true; self.r()]
    }

    fn check_weights(&self, weights: &[f64]) -> Result<()> {
        if weights.len() != self.r() {
            return Err(SglaError::InvalidArgument(format!(
                "{} weights for {} views",
                weights.len(),
                self.r()
            )));
        }
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(SglaError::InvalidArgument("non-finite view weight".into()));
        }
        Ok(())
    }
}

/// Extends an `n × n` normalized Laplacian to `n_new × n_new` by
/// adding identity rows/columns for appended isolated nodes — exactly
/// what `L(G) = I − D^{-1/2} A D^{-1/2}` yields for a graph whose new
/// nodes have no edges (the existing block is untouched because no
/// existing degree changes).
fn extend_laplacian(l: &CsrMatrix, n_new: usize) -> Result<CsrMatrix> {
    let n_old = l.nrows();
    if n_new == n_old {
        return Ok(l.clone());
    }
    let added = n_new - n_old;
    let nnz_old = l.nnz();
    let mut indptr = Vec::with_capacity(n_new + 1);
    indptr.extend_from_slice(l.indptr());
    let mut cols = Vec::with_capacity(nnz_old + added);
    cols.extend_from_slice(l.column_indices());
    let mut vals = Vec::with_capacity(nnz_old + added);
    vals.extend_from_slice(l.values());
    for i in n_old..n_new {
        cols.push(i);
        vals.push(1.0);
        indptr.push(cols.len());
    }
    CsrMatrix::from_raw_parts(n_new, n_new, indptr, cols, vals)
        .map_err(|e| SglaError::InvalidArgument(format!("extending Laplacian: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvag_graph::toy::{figure1_example, figure2_example};

    #[test]
    fn build_from_graph_views() {
        let mvag = figure2_example();
        let v = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        assert_eq!(v.r(), 2);
        assert_eq!(v.n(), 8);
        assert!(v.is_graph_view(0) && v.is_graph_view(1));
        for l in v.laplacians() {
            assert!(l.is_symmetric(1e-12));
            assert_eq!(l.nrows(), 8);
        }
    }

    #[test]
    fn build_with_attribute_views() {
        let mvag = figure1_example();
        let v = ViewLaplacians::build(
            &mvag,
            &KnnParams {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(v.r(), 4);
        assert!(!v.is_graph_view(2));
        assert!(!v.is_graph_view(3));
        // Attribute Laplacians are valid normalized Laplacians: symmetric,
        // diagonal entries in [0, 1].
        for l in &v.laplacians()[2..] {
            assert!(l.is_symmetric(1e-12));
            for d in l.diag() {
                assert!((0.0..=1.0 + 1e-12).contains(&d));
            }
        }
    }

    #[test]
    fn knn_override_applies() {
        let p = KnnParams {
            k: 10,
            overrides: vec![(1, 3)],
            threads: 1,
        };
        assert_eq!(p.k_for(0), 10);
        assert_eq!(p.k_for(1), 3);
    }

    #[test]
    fn incremental_update_is_bit_identical_to_full_rebuild() {
        use mvag_graph::generators::{random_append_delta, AppendConfig};
        let base = mvag_graph::toy::toy_mvag(60, 3, 11);
        let knn = KnnParams::default();
        let views = ViewLaplacians::build(&base, &knn).unwrap();

        // Append delta touching every view.
        let delta = random_append_delta(
            &base,
            &AppendConfig {
                added_nodes: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let updated = base.apply_delta(&delta).unwrap();
        let changed = delta.changed_views(&base).unwrap();
        let incremental = views.update(&updated, &knn, &changed).unwrap();
        let fresh = ViewLaplacians::build(&updated, &knn).unwrap();
        assert_eq!(incremental.n(), 65);
        for (a, b) in incremental.laplacians().iter().zip(fresh.laplacians()) {
            assert_eq!(a, b, "incremental Laplacian diverged from rebuild");
        }

        // Edge-only delta: only the touched graph view is rebuilt; the
        // untouched views are reused (and still match a full rebuild).
        let edges_only = mvag_graph::MvagDelta::append(
            0,
            vec![
                mvag_graph::ViewDelta::Edges(vec![(0, 59, 1.0)]),
                mvag_graph::ViewDelta::Edges(vec![]),
                mvag_graph::ViewDelta::Rows(mvag_sparse::DenseMatrix::zeros(0, 0)),
            ],
            Some(vec![]),
        );
        let changed = edges_only.changed_views(&base).unwrap();
        assert_eq!(changed, vec![true, false, false]);
        let patched = base.apply_delta(&edges_only).unwrap();
        let incremental = views.update(&patched, &knn, &changed).unwrap();
        let fresh = ViewLaplacians::build(&patched, &knn).unwrap();
        for (a, b) in incremental.laplacians().iter().zip(fresh.laplacians()) {
            assert_eq!(a, b);
        }

        // Misaligned inputs are rejected.
        assert!(views.update(&updated, &knn, &[true]).is_err());
        assert!(ViewLaplacians::build(&updated, &knn)
            .unwrap()
            .update(&base, &knn, &views.all_changed())
            .is_err());
    }

    #[test]
    fn aggregate_matches_operator() {
        let mvag = figure2_example();
        let v = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        let w = [0.6, 0.4];
        let mat = v.aggregate(&w).unwrap();
        let op = v.aggregate_op(&w).unwrap();
        let x: Vec<f64> = (0..8).map(|i| (i as f64).cos()).collect();
        let mut y1 = vec![0.0; 8];
        let mut y2 = vec![0.0; 8];
        mat.matvec(&x, &mut y1);
        use mvag_sparse::LinOp;
        op.matvec(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn weight_validation() {
        let mvag = figure2_example();
        let v = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        assert!(v.aggregate(&[0.5]).is_err());
        assert!(v.aggregate(&[0.5, f64::NAN]).is_err());
    }

    #[test]
    fn from_laplacians_validates() {
        let l = CsrMatrix::identity(4);
        assert!(ViewLaplacians::from_laplacians(vec![l.clone()]).is_err());
        assert!(ViewLaplacians::from_laplacians(vec![l.clone(), CsrMatrix::identity(5)]).is_err());
        assert!(ViewLaplacians::from_laplacians(vec![l.clone(), l]).is_ok());
    }
}

//! Spectral clustering on the MVAG Laplacian (Section III-B downstream).
//!
//! The paper feeds `L` to the multiclass spectral clustering of Yu & Shi
//! \[32\]: take the bottom `k` eigenvectors, then round to a discrete
//! assignment. Both standard rounding schemes are provided — k-means on
//! row-normalized eigenvectors (Ng–Jordan–Weiss style, the default) and
//! \[32\]'s SVD-based rotation discretization.

use crate::kmeans::{kmeans, KMeansParams};
use crate::{Result, SglaError};
use mvag_sparse::eigen::{jacobi_eig, smallest_eigenpairs, EigOptions};
use mvag_sparse::qr::qr_thin;
use mvag_sparse::{vecops, CsrMatrix, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Rounding scheme converting the spectral embedding to discrete labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Rounding {
    /// k-means++ / Lloyd on row-normalized eigenvectors (default).
    #[default]
    KMeans,
    /// Yu–Shi rotation-based discretization \[32\].
    Discretize,
}

/// Parameters for [`spectral_clustering_with`].
#[derive(Debug, Clone)]
pub struct SpectralParams {
    /// Rounding scheme.
    pub rounding: Rounding,
    /// k-means restarts (ignored for [`Rounding::Discretize`]).
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
    /// Eigensolver options.
    pub eig: EigOptions,
    /// Optional warm-start block handed to the eigensolver: an
    /// `n × c` matrix whose columns approximate the bottom `k`
    /// eigenvectors. The classic choice after a small graph change is
    /// the normalized cluster-indicator matrix of the previous labels
    /// (well-clustered graphs' bottom eigenvectors are close to
    /// indicator combinations), which is what the incremental
    /// artifact-update path supplies. Default `None` (cold start).
    pub init: Option<DenseMatrix>,
}

impl Default for SpectralParams {
    fn default() -> Self {
        SpectralParams {
            rounding: Rounding::KMeans,
            restarts: 10,
            seed: 29,
            eig: EigOptions::default(),
            init: None,
        }
    }
}

/// Outcome of spectral clustering: labels plus the spectral embedding used.
#[derive(Debug, Clone)]
pub struct SpectralOutcome {
    /// Cluster label per node, in `0..k`.
    pub labels: Vec<usize>,
    /// The `n × k` bottom-eigenvector matrix (row-normalized).
    pub embedding: DenseMatrix,
}

/// Spectral clustering with default parameters.
///
/// # Errors
/// See [`spectral_clustering_with`].
pub fn spectral_clustering(l: &CsrMatrix, k: usize, seed: u64) -> Result<Vec<usize>> {
    let params = SpectralParams {
        seed,
        ..Default::default()
    };
    Ok(spectral_clustering_with(l, k, &params)?.labels)
}

/// Spectral clustering of the graph represented by the (normalized)
/// Laplacian `l` into `k` clusters.
///
/// # Errors
/// [`SglaError::InvalidArgument`] for invalid `k` or non-square input;
/// propagates eigensolver failures.
pub fn spectral_clustering_with(
    l: &CsrMatrix,
    k: usize,
    params: &SpectralParams,
) -> Result<SpectralOutcome> {
    let n = l.nrows();
    if l.ncols() != n {
        return Err(SglaError::InvalidArgument(format!(
            "laplacian is {}x{}, must be square",
            l.nrows(),
            l.ncols()
        )));
    }
    if k < 2 || k > n {
        return Err(SglaError::InvalidArgument(format!(
            "spectral clustering needs 2 <= k <= n, got k = {k}, n = {n}"
        )));
    }
    let mut eig_opts = params.eig.clone();
    eig_opts.seed = params.seed;
    if let Some(init) = &params.init {
        eig_opts.init = Some(init.clone());
    }
    // Stays open through rounding so `train.kmeans` nests inside it.
    let mut spectral_span = mvag_obs::span("train.spectral");
    let pairs = smallest_eigenpairs(l, k, &eig_opts)?;
    if spectral_span.is_live() {
        spectral_span.counter("matvecs", pairs.matvecs as u64);
        spectral_span.counter("rounds", pairs.stats.rounds as u64);
        spectral_span.counter("restarts", pairs.stats.restarts as u64);
        spectral_span.counter("reortho_sweeps", pairs.stats.reortho_sweeps as u64);
    }
    let mut u = pairs.vectors;
    // Row-normalize (Ng–Jordan–Weiss); zero rows (isolated nodes with no
    // spectral mass) are left as-is and fall into whichever cluster owns
    // the origin.
    for i in 0..n {
        let row = u.row_mut(i);
        let nrm = vecops::norm2(row);
        if nrm > 1e-12 {
            let inv = 1.0 / nrm;
            for v in row {
                *v *= inv;
            }
        }
    }
    let labels = {
        let _rounding = mvag_obs::span("train.kmeans");
        match params.rounding {
            Rounding::KMeans => {
                let mut km = KMeansParams::new(k);
                km.restarts = params.restarts;
                km.seed = params.seed;
                kmeans(&u, &km)?.labels
            }
            Rounding::Discretize => discretize(&u, params.seed)?,
        }
    };
    Ok(SpectralOutcome {
        labels,
        embedding: u,
    })
}

/// Builds the warm-start block for [`SpectralParams::init`] from a
/// previous clustering: the column-normalized `n × k` cluster
/// indicator matrix of `labels` (covering the first `labels.len()`
/// rows; any trailing rows — appended nodes without labels yet — get a
/// flat `1/k` membership so they bias no cluster). For a graph whose
/// clusters the labels describe well, the bottom `k` Laplacian
/// eigenvectors are close to the span of these columns, making this
/// an effective eigensolver seed after a small graph perturbation.
///
/// # Errors
/// [`SglaError::InvalidArgument`] if `labels.len() > n` or a label is
/// `>= k`.
pub fn label_indicator_init(labels: &[usize], k: usize, n: usize) -> Result<DenseMatrix> {
    if labels.len() > n {
        return Err(SglaError::InvalidArgument(format!(
            "{} labels for {n} rows",
            labels.len()
        )));
    }
    let mut m = DenseMatrix::zeros(n, k);
    for (i, &l) in labels.iter().enumerate() {
        if l >= k {
            return Err(SglaError::InvalidArgument(format!("label {l} >= k = {k}")));
        }
        m[(i, l)] = 1.0;
    }
    let flat = 1.0 / k as f64;
    for i in labels.len()..n {
        for j in 0..k {
            m[(i, j)] = flat;
        }
    }
    for j in 0..k {
        let norm = vecops::norm2(&m.col(j));
        if norm > 1e-12 {
            let inv = 1.0 / norm;
            for i in 0..n {
                m[(i, j)] *= inv;
            }
        }
    }
    Ok(m)
}

/// Yu–Shi multiclass discretization: alternate between snapping `U R` to
/// one-hot rows and re-fitting the rotation `R` by SVD.
fn discretize(u: &DenseMatrix, seed: u64) -> Result<Vec<usize>> {
    let n = u.nrows();
    let k = u.ncols();
    let mut rng = StdRng::seed_from_u64(seed);
    // Initialize R from maximally spread rows (the paper [32]'s scheme).
    let mut r = DenseMatrix::zeros(k, k);
    let first = rng.gen_range(0..n);
    for j in 0..k {
        r[(j, 0)] = u[(first, j)];
    }
    let mut c = vec![0.0f64; n];
    for col in 1..k {
        for i in 0..n {
            let mut dot = 0.0;
            for j in 0..k {
                dot += u[(i, j)] * r[(j, col - 1)];
            }
            c[i] += dot.abs();
        }
        let pick = (0..n)
            .min_by(|&a, &b| c[a].partial_cmp(&c[b]).expect("finite"))
            .expect("n >= 1");
        for j in 0..k {
            r[(j, col)] = u[(pick, j)];
        }
    }
    let mut labels = vec![0usize; n];
    let mut last_obj = 0.0f64;
    for _iter in 0..30 {
        // Snap UR to one-hot rows.
        let ur = u.matmul(&r)?;
        for i in 0..n {
            let row = ur.row(i);
            let mut best = 0usize;
            let mut best_v = f64::NEG_INFINITY;
            for (j, &v) in row.iter().enumerate() {
                if v > best_v {
                    best_v = v;
                    best = j;
                }
            }
            labels[i] = best;
        }
        // M = Xᵀ U where X is the one-hot assignment.
        let mut m = DenseMatrix::zeros(k, k);
        for i in 0..n {
            let li = labels[i];
            for j in 0..k {
                m[(li, j)] += u[(i, j)];
            }
        }
        // SVD of M via the eigendecomposition of MᵀM.
        let (a, sigma, b) = small_svd(&m)?;
        let obj: f64 = sigma.iter().sum();
        // R = B Aᵀ.
        r = b.matmul(&a.transpose())?;
        if (obj - last_obj).abs() < 1e-10 * (1.0 + obj.abs()) {
            break;
        }
        last_obj = obj;
    }
    Ok(labels)
}

/// Full SVD `m = A Σ Bᵀ` of a small square matrix via the symmetric
/// eigendecomposition of `mᵀm`, completing the left basis by QR when
/// singular values vanish.
fn small_svd(m: &DenseMatrix) -> Result<(DenseMatrix, Vec<f64>, DenseMatrix)> {
    let k = m.nrows();
    let mtm = m.transpose().matmul(m)?;
    let eig = jacobi_eig(&mtm)?;
    // Descending singular values.
    let mut sigma = Vec::with_capacity(k);
    let mut b = DenseMatrix::zeros(k, k);
    for j in 0..k {
        let src = k - 1 - j;
        sigma.push(eig.values[src].max(0.0).sqrt());
        b.set_col(j, &eig.vectors.col(src));
    }
    let mut a = DenseMatrix::zeros(k, k);
    for j in 0..k {
        if sigma[j] > 1e-12 {
            let bj = b.col(j);
            let mut av = vec![0.0; k];
            m.matvec(&bj, &mut av);
            vecops::scale(1.0 / sigma[j], &mut av);
            a.set_col(j, &av);
        } else {
            // Placeholder; fixed by the orthonormal completion below.
            a[(j.min(k - 1), j)] = 1.0;
        }
    }
    let (q, _) = qr_thin(&a)?;
    // Replace zero columns of Q (rank deficiency) with arbitrary
    // orthonormal completion — snap any all-zero column to a unit vector
    // orthogonal to the rest via another QR on an identity-augmented
    // matrix. In practice the discretization matrices are full rank.
    Ok((q, sigma, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::{KnnParams, ViewLaplacians};
    use mvag_graph::generators::{balanced_labels, sbm, SbmConfig};
    use mvag_graph::toy::figure2_example;
    use mvag_graph::Graph;

    fn planted_two_cluster_graph(n: usize, seed: u64) -> (Graph, Vec<usize>) {
        let labels = balanced_labels(n, 2).unwrap();
        let g = sbm(
            &labels,
            &SbmConfig {
                p_in: 0.25,
                p_out: 0.01,
                ..Default::default()
            },
            seed,
        )
        .unwrap();
        (g, labels)
    }

    fn agreement(a: &[usize], b: &[usize]) -> f64 {
        // 2-cluster agreement up to label swap.
        let same: usize = a.iter().zip(b).filter(|(x, y)| x == y).count();
        let flipped: usize = a.iter().zip(b).filter(|(x, y)| x != y).count();
        same.max(flipped) as f64 / a.len() as f64
    }

    #[test]
    fn recovers_planted_partition_kmeans() {
        let (g, truth) = planted_two_cluster_graph(200, 11);
        let l = g.normalized_laplacian();
        let labels = spectral_clustering(&l, 2, 5).unwrap();
        assert!(
            agreement(&labels, &truth) > 0.95,
            "agreement = {}",
            agreement(&labels, &truth)
        );
    }

    #[test]
    fn recovers_planted_partition_discretize() {
        let (g, truth) = planted_two_cluster_graph(200, 13);
        let l = g.normalized_laplacian();
        let params = SpectralParams {
            rounding: Rounding::Discretize,
            ..Default::default()
        };
        let out = spectral_clustering_with(&l, 2, &params).unwrap();
        assert!(
            agreement(&out.labels, &truth) > 0.95,
            "agreement = {}",
            agreement(&out.labels, &truth)
        );
    }

    #[test]
    fn figure2_mvag_clusters_correctly_with_mixed_weights() {
        let views = ViewLaplacians::build(&figure2_example(), &KnnParams::default()).unwrap();
        let l = views.aggregate(&[0.6, 0.4]).unwrap();
        let labels = spectral_clustering(&l, 2, 3).unwrap();
        let truth = [0, 0, 0, 0, 1, 1, 1, 1];
        assert!(agreement(&labels, &truth) == 1.0, "labels = {labels:?}");
    }

    #[test]
    fn three_clusters() {
        let labels_true = balanced_labels(240, 3).unwrap();
        let g = sbm(
            &labels_true,
            &SbmConfig {
                p_in: 0.3,
                p_out: 0.01,
                ..Default::default()
            },
            17,
        )
        .unwrap();
        let l = g.normalized_laplacian();
        let labels = spectral_clustering(&l, 3, 7).unwrap();
        // Check cluster purity: each predicted cluster should be dominated
        // by one ground-truth class.
        for c in 0..3 {
            let members: Vec<usize> = (0..240).filter(|&i| labels[i] == c).collect();
            if members.is_empty() {
                panic!("empty predicted cluster {c}");
            }
            let mut counts = [0usize; 3];
            for &m in &members {
                counts[labels_true[m]] += 1;
            }
            let max = *counts.iter().max().unwrap();
            assert!(
                max as f64 / members.len() as f64 > 0.9,
                "cluster {c} impure: {counts:?}"
            );
        }
    }

    #[test]
    fn warm_init_recovers_the_same_partition() {
        let (g, truth) = planted_two_cluster_graph(220, 31);
        let l = g.normalized_laplacian();
        let cold = spectral_clustering(&l, 2, 5).unwrap();
        // Seed the eigensolver with the indicator matrix of the cold
        // labels: same partition, and the indicator builder validates.
        let init = label_indicator_init(&cold, 2, 220).unwrap();
        assert_eq!(init.nrows(), 220);
        assert_eq!(init.ncols(), 2);
        let params = SpectralParams {
            init: Some(init),
            seed: 5,
            ..Default::default()
        };
        let warm = spectral_clustering_with(&l, 2, &params).unwrap();
        assert!(
            agreement(&warm.labels, &truth) > 0.95,
            "agreement = {}",
            agreement(&warm.labels, &truth)
        );
        assert_eq!(agreement(&warm.labels, &cold), 1.0);
        // Trailing unlabeled rows get flat membership; bad labels fail.
        let padded = label_indicator_init(&cold[..200], 2, 220).unwrap();
        assert!(padded[(219, 0)] > 0.0 && padded[(219, 1)] > 0.0);
        assert!(label_indicator_init(&[0, 5], 2, 10).is_err());
        assert!(label_indicator_init(&[0; 11], 2, 10).is_err());
    }

    #[test]
    fn validates_input() {
        let l = CsrMatrix::identity(5);
        assert!(spectral_clustering(&l, 1, 0).is_err());
        assert!(spectral_clustering(&l, 6, 0).is_err());
        let rect = CsrMatrix::zeros(3, 4);
        assert!(spectral_clustering(&rect, 2, 0).is_err());
    }

    #[test]
    fn label_range_valid() {
        let (g, _) = planted_two_cluster_graph(100, 23);
        let l = g.normalized_laplacian();
        for rounding in [Rounding::KMeans, Rounding::Discretize] {
            let params = SpectralParams {
                rounding,
                ..Default::default()
            };
            let out = spectral_clustering_with(&l, 4, &params).unwrap();
            assert_eq!(out.labels.len(), 100);
            assert!(out.labels.iter().all(|&l| l < 4));
            assert_eq!(out.embedding.nrows(), 100);
            assert_eq!(out.embedding.ncols(), 4);
        }
    }

    #[test]
    fn small_svd_reconstructs() {
        let m = DenseMatrix::from_rows(&[
            vec![3.0, 1.0, 0.0],
            vec![1.0, 2.0, 1.0],
            vec![0.0, 1.0, 1.0],
        ])
        .unwrap();
        let (a, sigma, b) = small_svd(&m).unwrap();
        // Reconstruct A Σ Bᵀ.
        let mut asig = a.clone();
        for j in 0..3 {
            for i in 0..3 {
                asig[(i, j)] *= sigma[j];
            }
        }
        let rec = asig.matmul(&b.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((rec[(i, j)] - m[(i, j)]).abs() < 1e-9);
            }
        }
        // Singular values descending and nonnegative.
        for w in sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}

//! The spectrum-guided objective (Section IV of the paper).
//!
//! For a weight vector `w` on the probability simplex, the aggregated
//! Laplacian `L(w) = Σ wᵢ Lᵢ` is scored by
//!
//! ```text
//! h(w) = g_k(L) − λ₂(L) + γ Σ wᵢ²          (Eq. 5)
//! g_k(L) = λ_k(L) / λ_{k+1}(L)             (Eq. 2, eigengap)
//! λ₂(L)                                     (connectivity)
//! ```
//!
//! * the **eigengap** term is small when the bottom `k` eigenvalues are
//!   well separated from `λ_{k+1}`, which by the higher-order Cheeger
//!   inequality (Theorem 1 / Corollary 1.1) certifies `k` low-normalized-
//!   cut clusters;
//! * the **connectivity** term `−λ₂` rewards a well-connected aggregate
//!   (Eq. 4: `λ₂/2 ≤ Φ(G) ≤ √(2λ₂)`);
//! * the `γ`-regularizer discourages single-view domination.
//!
//! All of this needs only the `k + 1` smallest eigenvalues of `L(w)`.
//! The weights are **fixed** for the duration of each eigensolve, so the
//! objective keeps one [`FusedSumOp`] alive across evaluations: the union
//! sparsity pattern is analyzed once at construction, each `evaluate`
//! refreshes the scratch CSR in `O(Σ nnz)` (about the cost of a single
//! lazy matvec), and every Lanczos matvec then streams one matrix
//! instead of `r` — plus the fused matrix yields a tighter Gershgorin
//! shift than the lazy operator's triangle-inequality bound.

use crate::views::ViewLaplacians;
use crate::{Result, SglaError};
use mvag_sparse::eigen::{smallest_eigenvalues_full, EigOptions};
use mvag_sparse::FusedSumOp;
use std::cell::{Cell, RefCell};

/// Which terms of the objective to use — `Full` is the paper's Eq. 5; the
/// single-term modes are the ablations of its Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObjectiveMode {
    /// `g_k − λ₂ + γ‖w‖²` (Eq. 5).
    #[default]
    Full,
    /// Eigengap only: `g_k + γ‖w‖²`.
    EigengapOnly,
    /// Connectivity only: `−λ₂ + γ‖w‖²`.
    ConnectivityOnly,
}

/// Evaluated components of `h(w)` at one weight vector.
#[derive(Debug, Clone)]
pub struct ObjectiveValue {
    /// Full objective value per the active [`ObjectiveMode`].
    pub h: f64,
    /// Eigengap `g_k = λ_k / λ_{k+1}`.
    pub eigengap: f64,
    /// Connectivity `λ₂`.
    pub connectivity: f64,
    /// The `k + 1` smallest eigenvalues of `L(w)`, ascending.
    pub eigenvalues: Vec<f64>,
}

/// The spectrum-guided objective over view weights.
///
/// Holds a reference to the view Laplacians; each [`Self::evaluate`] call
/// costs one Lanczos solve (`O(m + qnK)` per the paper's analysis) and is
/// counted for the efficiency experiments.
pub struct SglaObjective<'a> {
    views: &'a ViewLaplacians,
    k: usize,
    gamma: f64,
    mode: ObjectiveMode,
    eig: EigOptions,
    evaluations: Cell<usize>,
    /// Reusable fused aggregation: pattern precomputed once, values
    /// refreshed per evaluation.
    fused: RefCell<FusedSumOp<'a>>,
}

impl<'a> SglaObjective<'a> {
    /// Creates the objective for `k` clusters with regularization `gamma`.
    ///
    /// # Errors
    /// [`SglaError::InvalidArgument`] unless `2 ≤ k` and `k + 1 ≤ n`.
    pub fn new(
        views: &'a ViewLaplacians,
        k: usize,
        gamma: f64,
        mode: ObjectiveMode,
        eig: EigOptions,
    ) -> Result<Self> {
        if k < 2 {
            return Err(SglaError::InvalidArgument(format!(
                "objective needs k >= 2, got {k}"
            )));
        }
        if k + 1 > views.n() {
            return Err(SglaError::InvalidArgument(format!(
                "objective needs k + 1 <= n, got k = {k}, n = {}",
                views.n()
            )));
        }
        if !gamma.is_finite() {
            return Err(SglaError::InvalidArgument("non-finite gamma".into()));
        }
        let uniform = vec![1.0 / views.r() as f64; views.r()];
        let fused = RefCell::new(views.fused_op(&uniform)?);
        Ok(SglaObjective {
            views,
            k,
            gamma,
            mode,
            eig,
            evaluations: Cell::new(0),
            fused,
        })
    }

    /// Number of clusters `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The view Laplacians this objective scores.
    pub fn views(&self) -> &ViewLaplacians {
        self.views
    }

    /// How many full (eigenvalue-computing) evaluations have been made.
    pub fn evaluations(&self) -> usize {
        self.evaluations.get()
    }

    /// Evaluates `h(w)` and its components at a full weight vector.
    ///
    /// # Errors
    /// Propagates weight validation and eigensolver failures.
    pub fn evaluate(&self, weights: &[f64]) -> Result<ObjectiveValue> {
        self.views.validate_weights(weights)?;
        let mut op = self.fused.borrow_mut();
        op.set_weights(weights);
        // Each evaluation is one eigensolve — the expensive inner step
        // of Algorithm 2. The span carries the solver's work counters
        // so a trace shows *why* a given evaluation was slow
        // (restarts, extra deflation rounds) and not just that it was.
        let mut span = mvag_obs::span("train.eigensolve");
        let eig_res = smallest_eigenvalues_full(&*op, self.k + 1, &self.eig)?;
        if span.is_live() {
            span.counter("matvecs", eig_res.matvecs as u64);
            span.counter("rounds", eig_res.stats.rounds as u64);
            span.counter("restarts", eig_res.stats.restarts as u64);
            span.counter("reortho_sweeps", eig_res.stats.reortho_sweeps as u64);
        }
        drop(span);
        let eigenvalues = eig_res.values;
        self.evaluations.set(self.evaluations.get() + 1);
        let lambda2 = eigenvalues[1];
        let lambda_k = eigenvalues[self.k - 1];
        let lambda_k1 = eigenvalues[self.k];
        let eigengap = eigengap_ratio(lambda_k, lambda_k1);
        let reg: f64 = weights.iter().map(|w| w * w).sum::<f64>() * self.gamma;
        let h = match self.mode {
            ObjectiveMode::Full => eigengap - lambda2 + reg,
            ObjectiveMode::EigengapOnly => eigengap + reg,
            ObjectiveMode::ConnectivityOnly => -lambda2 + reg,
        };
        Ok(ObjectiveValue {
            h,
            eigengap,
            connectivity: lambda2,
            eigenvalues,
        })
    }
}

/// `λ_k / λ_{k+1}` with the degenerate cases pinned down:
/// * both ≈ 0 (more than `k` connected components): the aggregate cannot
///   distinguish `k` clusters — worst ratio 1;
/// * `λ_{k+1} ≈ 0` alone cannot happen with `λ_k ≤ λ_{k+1}`.
fn eigengap_ratio(lambda_k: f64, lambda_k1: f64) -> f64 {
    const TINY: f64 = 1e-12;
    let lk = lambda_k.max(0.0);
    let lk1 = lambda_k1.max(0.0);
    if lk1 <= TINY {
        1.0
    } else {
        (lk / lk1).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::KnnParams;
    use mvag_graph::toy::{figure2_example, toy_mvag};

    fn fig2_views() -> ViewLaplacians {
        ViewLaplacians::build(&figure2_example(), &KnnParams::default()).unwrap()
    }

    #[test]
    fn objective_components_sane_on_figure2() {
        let views = fig2_views();
        let obj =
            SglaObjective::new(&views, 2, 0.5, ObjectiveMode::Full, EigOptions::default()).unwrap();
        let v = obj.evaluate(&[0.5, 0.5]).unwrap();
        // λ₁ of a *mixture* of normalized Laplacians is small but nonzero
        // (the views' kernels D_i^{1/2}𝟙 differ).
        assert!(
            v.eigenvalues[0] >= -1e-9 && v.eigenvalues[0] < 0.2,
            "λ1 = {}",
            v.eigenvalues[0]
        );
        assert!((0.0..=1.0).contains(&v.eigengap));
        assert!(v.connectivity >= -1e-12);
        assert!(v.h.is_finite());
        assert_eq!(v.eigenvalues.len(), 3);
        assert_eq!(obj.evaluations(), 1);
    }

    #[test]
    fn figure2_prefers_mixed_weights() {
        // The paper's Table 2b: g_k − λ₂ is minimized strictly inside the
        // simplex, not at either single-view corner.
        let views = fig2_views();
        let obj = SglaObjective::new(
            &views,
            2,
            0.0, // no regularizer, match the table's g_k − λ₂ column
            ObjectiveMode::Full,
            EigOptions::default(),
        )
        .unwrap();
        let corner1 = obj.evaluate(&[1.0, 0.0]).unwrap().h;
        let corner2 = obj.evaluate(&[0.0, 1.0]).unwrap().h;
        let mut best_mixed = f64::INFINITY;
        for i in 1..10 {
            let w1 = i as f64 / 10.0;
            let v = obj.evaluate(&[w1, 1.0 - w1]).unwrap();
            best_mixed = best_mixed.min(v.h);
        }
        assert!(
            best_mixed < corner1 && best_mixed < corner2,
            "mixed {best_mixed} vs corners {corner1}, {corner2}"
        );
    }

    #[test]
    fn modes_differ() {
        let views = fig2_views();
        let w = [0.6, 0.4];
        let mk = |mode| {
            SglaObjective::new(&views, 2, 0.5, mode, EigOptions::default())
                .unwrap()
                .evaluate(&w)
                .unwrap()
        };
        let full = mk(ObjectiveMode::Full);
        let eg = mk(ObjectiveMode::EigengapOnly);
        let conn = mk(ObjectiveMode::ConnectivityOnly);
        let reg = 0.5 * (0.36 + 0.16);
        assert!((eg.h - (full.eigengap + reg)).abs() < 1e-9);
        assert!((conn.h - (-full.connectivity + reg)).abs() < 1e-9);
        assert!((full.h - (full.eigengap - full.connectivity + reg)).abs() < 1e-9);
    }

    #[test]
    fn regularizer_penalizes_concentration() {
        let views = fig2_views();
        let obj = SglaObjective::new(
            &views,
            2,
            10.0, // dominant regularizer
            ObjectiveMode::Full,
            EigOptions::default(),
        )
        .unwrap();
        let uniform = obj.evaluate(&[0.5, 0.5]).unwrap().h;
        let corner = obj.evaluate(&[1.0, 0.0]).unwrap().h;
        assert!(uniform < corner);
    }

    #[test]
    fn validation_errors() {
        let views = fig2_views();
        assert!(
            SglaObjective::new(&views, 1, 0.5, ObjectiveMode::Full, EigOptions::default()).is_err()
        );
        assert!(
            SglaObjective::new(&views, 8, 0.5, ObjectiveMode::Full, EigOptions::default()).is_err()
        );
        assert!(SglaObjective::new(
            &views,
            2,
            f64::NAN,
            ObjectiveMode::Full,
            EigOptions::default()
        )
        .is_err());
        let obj =
            SglaObjective::new(&views, 2, 0.5, ObjectiveMode::Full, EigOptions::default()).unwrap();
        assert!(obj.evaluate(&[0.5]).is_err());
    }

    #[test]
    fn eigengap_ratio_degenerate_cases() {
        assert_eq!(eigengap_ratio(0.0, 0.0), 1.0);
        assert_eq!(eigengap_ratio(1e-15, 1e-15), 1.0);
        assert!((eigengap_ratio(0.1, 0.2) - 0.5).abs() < 1e-12);
        assert_eq!(eigengap_ratio(-1e-14, 0.5), 0.0);
        assert_eq!(eigengap_ratio(0.3, 0.3), 1.0);
    }

    #[test]
    fn permutation_of_views_permutes_objective() {
        // h must depend on (view, weight) pairs, not on ordering.
        let mvag = toy_mvag(80, 2, 3);
        let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        let obj =
            SglaObjective::new(&views, 2, 0.5, ObjectiveMode::Full, EigOptions::default()).unwrap();
        let reversed =
            ViewLaplacians::from_laplacians(views.laplacians().iter().rev().cloned().collect())
                .unwrap();
        let obj_rev = SglaObjective::new(
            &reversed,
            2,
            0.5,
            ObjectiveMode::Full,
            EigOptions::default(),
        )
        .unwrap();
        let w = [0.2, 0.3, 0.5];
        let wr = [0.5, 0.3, 0.2];
        let a = obj.evaluate(&w).unwrap().h;
        let b = obj_rev.evaluate(&wr).unwrap().h;
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }
}

//! k-means with k-means++ seeding and Lloyd iterations.
//!
//! The rounding step of spectral clustering (following \[32\]'s pipeline,
//! with k-means as the standard alternative to the rotation-based
//! discretization, which is also provided in [`clustering`](crate::clustering)).

use crate::{Result, SglaError};
use mvag_sparse::{vecops, DenseMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansParams {
    /// Number of clusters.
    pub k: usize,
    /// Lloyd iteration cap per restart (default 100).
    pub max_iters: usize,
    /// Independent restarts; the lowest-inertia run wins (default 10).
    pub restarts: usize,
    /// Relative inertia improvement below which a restart stops early.
    pub tol: f64,
    /// RNG seed.
    pub seed: u64,
}

impl KMeansParams {
    /// Sensible defaults for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansParams {
            k,
            max_iters: 100,
            restarts: 10,
            tol: 1e-7,
            seed: 23,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster assignment per row.
    pub labels: Vec<usize>,
    /// Final centroids (`k × d`).
    pub centroids: DenseMatrix,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

/// Clusters the rows of `data` into `k` groups.
///
/// # Errors
/// [`SglaError::InvalidArgument`] if `k == 0`, `k > n`, or `data` has no
/// columns.
pub fn kmeans(data: &DenseMatrix, params: &KMeansParams) -> Result<KMeansResult> {
    let n = data.nrows();
    let d = data.ncols();
    let k = params.k;
    if k == 0 || k > n {
        return Err(SglaError::InvalidArgument(format!(
            "kmeans needs 1 <= k <= n, got k = {k}, n = {n}"
        )));
    }
    if d == 0 {
        return Err(SglaError::InvalidArgument(
            "kmeans needs at least one feature".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut best: Option<KMeansResult> = None;
    for _restart in 0..params.restarts.max(1) {
        let run = lloyd(data, k, params.max_iters, params.tol, &mut rng);
        if best.as_ref().is_none_or(|b| run.inertia < b.inertia) {
            best = Some(run);
        }
    }
    Ok(best.expect("at least one restart"))
}

fn lloyd(
    data: &DenseMatrix,
    k: usize,
    max_iters: usize,
    tol: f64,
    rng: &mut StdRng,
) -> KMeansResult {
    let n = data.nrows();
    let d = data.ncols();
    let mut centroids = kpp_init(data, k, rng);
    let mut labels = vec![0usize; n];
    let mut dists = vec![0.0f64; n];
    let mut prev_inertia = f64::INFINITY;
    let mut inertia = f64::INFINITY;
    for _iter in 0..max_iters {
        // Assignment.
        inertia = 0.0;
        for i in 0..n {
            let row = data.row(i);
            let mut best_c = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dist = vecops::dist2(row, centroids.row(c));
                if dist < best_d {
                    best_d = dist;
                    best_c = c;
                }
            }
            labels[i] = best_c;
            dists[i] = best_d;
            inertia += best_d;
        }
        // Update.
        let mut counts = vec![0usize; k];
        let mut sums = DenseMatrix::zeros(k, d);
        for i in 0..n {
            counts[labels[i]] += 1;
            let row = data.row(i);
            let srow = sums.row_mut(labels[i]);
            for (s, &x) in srow.iter_mut().zip(row) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed an empty cluster at the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| dists[a].partial_cmp(&dists[b]).expect("finite"))
                    .expect("n >= 1");
                centroids.row_mut(c).copy_from_slice(data.row(far));
                dists[far] = 0.0;
            } else {
                let inv = 1.0 / counts[c] as f64;
                let crow = centroids.row_mut(c);
                for (slot, &s) in crow.iter_mut().zip(sums.row(c)) {
                    *slot = s * inv;
                }
            }
        }
        if (prev_inertia - inertia).abs() <= tol * (1.0 + inertia) {
            break;
        }
        prev_inertia = inertia;
    }
    KMeansResult {
        labels,
        centroids,
        inertia,
    }
}

/// k-means++ seeding: iteratively pick centroids with probability
/// proportional to squared distance from the nearest chosen one.
fn kpp_init(data: &DenseMatrix, k: usize, rng: &mut StdRng) -> DenseMatrix {
    let n = data.nrows();
    let d = data.ncols();
    let mut centroids = DenseMatrix::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut min_d2: Vec<f64> = (0..n)
        .map(|i| vecops::dist2(data.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = min_d2.iter().sum();
        let pick = if total <= f64::MIN_POSITIVE {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in min_d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(data.row(pick));
        for i in 0..n {
            let dist = vecops::dist2(data.row(i), centroids.row(c));
            if dist < min_d2[i] {
                min_d2[i] = dist;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per: usize, centers: &[(f64, f64)], spread: f64, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..n_per {
                rows.push(vec![
                    cx + (rng.gen::<f64>() - 0.5) * spread,
                    cy + (rng.gen::<f64>() - 0.5) * spread,
                ]);
            }
        }
        DenseMatrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs(30, &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)], 1.0, 3);
        let res = kmeans(&data, &KMeansParams::new(3)).unwrap();
        // All points in a blob share a label, and blobs differ.
        for b in 0..3 {
            let first = res.labels[b * 30];
            for i in 0..30 {
                assert_eq!(res.labels[b * 30 + i], first, "blob {b} split");
            }
        }
        assert_ne!(res.labels[0], res.labels[30]);
        assert_ne!(res.labels[30], res.labels[60]);
        assert_ne!(res.labels[0], res.labels[60]);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = blobs(20, &[(0.0, 0.0), (5.0, 5.0)], 2.0, 7);
        let r2 = kmeans(&data, &KMeansParams::new(2)).unwrap();
        let r4 = kmeans(&data, &KMeansParams::new(4)).unwrap();
        assert!(r4.inertia <= r2.inertia + 1e-9);
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let data = blobs(2, &[(0.0, 0.0), (5.0, 5.0)], 1.0, 1);
        let res = kmeans(&data, &KMeansParams::new(4)).unwrap();
        assert!(res.inertia < 1e-12);
        let mut sorted = res.labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "all singleton clusters used");
    }

    #[test]
    fn invalid_args() {
        let data = DenseMatrix::zeros(5, 2);
        assert!(kmeans(&data, &KMeansParams::new(0)).is_err());
        assert!(kmeans(&data, &KMeansParams::new(6)).is_err());
        let empty = DenseMatrix::zeros(5, 0);
        assert!(kmeans(&empty, &KMeansParams::new(2)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(25, &[(0.0, 0.0), (8.0, 1.0)], 2.0, 5);
        let a = kmeans(&data, &KMeansParams::new(2)).unwrap();
        let b = kmeans(&data, &KMeansParams::new(2)).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn duplicate_points_handled() {
        let data = DenseMatrix::from_rows(&vec![vec![1.0, 1.0]; 10]).unwrap();
        let res = kmeans(&data, &KMeansParams::new(2)).unwrap();
        assert_eq!(res.labels.len(), 10);
        assert!(res.inertia < 1e-12);
    }
}

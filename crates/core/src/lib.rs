//! # sgla-core — Spectrum-Guided Laplacian Aggregation
//!
//! The primary contribution of *"Efficient Integration of Multi-View
//! Attributed Graphs for Clustering and Embedding"* (ICDE 2025),
//! implemented from scratch:
//!
//! * [`views`] — per-view Laplacian construction (Section III-B): graph
//!   views contribute their normalized Laplacians, attribute views the
//!   Laplacians of their similarity-weighted KNN graphs;
//! * [`objective`] — the spectrum-guided objective (Section IV):
//!   eigengap `g_k(L) = λ_k/λ_{k+1}` (Eq. 2), connectivity `λ₂(L)`, and
//!   the full `h(w) = g_k − λ₂ + γ‖w‖²` (Eq. 5) over the weight simplex;
//! * [`sgla`] — Algorithm 1: direct derivative-free optimization of `h`;
//! * [`sgla_plus`] — Algorithm 2: sample `r + 1` weight vectors, fit the
//!   quadratic surrogate `h_Θ*` (Eq. 9), optimize the surrogate instead;
//! * [`clustering`] — downstream consumers: spectral clustering with
//!   k-means++/Lloyd and Yu–Shi multiclass discretization;
//! * [`embedding`] — NetMF-style factorization embedding on the integrated
//!   graph, with a scalable spectral backend for large `n`;
//! * [`baselines`] — the alternative integrations of the paper's Fig. 11
//!   (single view, Equal-w, eigengap-only, connectivity-only, Graph-Agg)
//!   plus consensus-graph clustering baselines (MCGC/MvAGC-like) for the
//!   quality-vs-cost comparisons of Tables III/IV.

#![forbid(unsafe_code)]
// Indexed loops over matched row/column structures are the clearest idiom
// for the numerical kernels in this crate: the index relationships *are*
// the algorithm. The iterator rewrites clippy suggests obscure them.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::field_reassign_with_default)]
#![warn(missing_docs)]

pub mod baselines;
pub mod clustering;
pub mod embedding;
pub mod error;
pub mod kmeans;
pub mod objective;
pub mod sgla;
pub mod sgla_plus;
pub mod views;

pub use error::SglaError;
pub use objective::{ObjectiveMode, SglaObjective};
pub use sgla::{Sgla, SglaOutcome, SglaParams, TracePoint};
pub use sgla_plus::SglaPlus;
pub use views::{KnnParams, ViewLaplacians};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SglaError>;

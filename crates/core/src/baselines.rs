//! Alternative integrations and comparison baselines.
//!
//! Two families:
//!
//! 1. **Integration ablations** (the paper's Fig. 11): single view,
//!    `Equal-w`, eigengap-only, connectivity-only, and `Graph-Agg`
//!    (aggregate raw adjacencies instead of normalized Laplacians). Each
//!    produces a Laplacian consumable by the same downstream clustering
//!    and embedding as SGLA.
//! 2. **Consensus-graph clustering baselines** standing in for the
//!    quadratic-cost competitor family (MCGC/MAGC) and its linear-time
//!    sampled variant (MvAGC). [`consensus_cluster`] materializes a dense
//!    `n × n` consensus similarity — intentionally `O(n²)` memory and
//!    per-matvec cost, with a hard memory budget mirroring how those
//!    baselines go out-of-memory on the large datasets (the `-` entries of
//!    Table III). [`sampled_consensus_cluster`] uses anchor sampling for
//!    linear cost at lower fidelity, like MvAGC.

use crate::kmeans::{kmeans, KMeansParams};
use crate::objective::ObjectiveMode;
use crate::sgla::{SglaOutcome, SglaParams};
use crate::sgla_plus::SglaPlus;
use crate::views::{KnnParams, ViewLaplacians};
use crate::{Result, SglaError};
use mvag_graph::knn::{knn_graph, KnnConfig};
use mvag_graph::{Mvag, View};
use mvag_sparse::eigen::{smallest_eigenpairs, EigOptions};
use mvag_sparse::{vecops, CsrMatrix, DenseMatrix, LinOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Laplacian of a single view `i` (trivial integration).
///
/// # Errors
/// [`SglaError::InvalidArgument`] if `i` is out of range.
pub fn single_view(views: &ViewLaplacians, i: usize) -> Result<CsrMatrix> {
    if i >= views.r() {
        return Err(SglaError::InvalidArgument(format!(
            "view index {i} out of range for r = {}",
            views.r()
        )));
    }
    Ok(views.laplacians()[i].clone())
}

/// Equal-weight aggregation `L = (1/r) Σ Lᵢ` (the paper's `Equal-w`).
///
/// # Errors
/// Propagates aggregation failures.
pub fn equal_weights(views: &ViewLaplacians) -> Result<CsrMatrix> {
    let r = views.r();
    views.aggregate(&vec![1.0 / r as f64; r])
}

/// SGLA+ restricted to a single objective term (the paper's
/// `Eigengap`/`Connectivity` ablations in Fig. 11).
///
/// # Errors
/// Propagates [`SglaPlus::integrate`] failures.
pub fn single_objective(
    views: &ViewLaplacians,
    k: usize,
    mode: ObjectiveMode,
    params: &SglaParams,
) -> Result<SglaOutcome> {
    let mut p = params.clone();
    p.mode = mode;
    SglaPlus::new(p).integrate(views, k)
}

/// `Graph-Agg`: sum the *raw* adjacency matrices of graph views and KNN
/// graphs of attribute views with equal weights, then take the normalized
/// Laplacian of the summed graph. The contrast with SGLA (which aggregates
/// *normalized Laplacians*) isolates the value of spectrum-preserving
/// normalization.
///
/// # Errors
/// Propagates KNN construction and aggregation failures.
pub fn graph_agg(mvag: &Mvag, knn: &KnnParams) -> Result<CsrMatrix> {
    let mut adjacencies: Vec<CsrMatrix> = Vec::with_capacity(mvag.r());
    let mut attr_idx = 0usize;
    for view in mvag.views() {
        match view {
            View::Graph(g) => adjacencies.push(g.adjacency().clone()),
            View::Attributes(x) => {
                let k = knn_k_for(knn, attr_idx, x.nrows());
                let g = knn_graph(
                    x,
                    &KnnConfig {
                        k,
                        threads: knn.threads,
                    },
                )?;
                adjacencies.push(g.adjacency().clone());
                attr_idx += 1;
            }
        }
    }
    let refs: Vec<&CsrMatrix> = adjacencies.iter().collect();
    let summed = CsrMatrix::linear_combination(&refs, &vec![1.0; refs.len()])?;
    let g = mvag_graph::Graph::from_adjacency(summed)?;
    Ok(g.normalized_laplacian())
}

fn knn_k_for(knn: &KnnParams, idx: usize, n: usize) -> usize {
    knn.overrides
        .iter()
        .find_map(|&(i, k)| (i == idx).then_some(k))
        .unwrap_or(knn.k)
        .min(n.saturating_sub(1))
        .max(1)
}

/// Parameters for the consensus-graph baselines.
#[derive(Debug, Clone)]
pub struct ConsensusParams {
    /// Weight of the 2-hop smoothing term added to the consensus
    /// similarity (`S + α S²`), mimicking the graph-filter smoothing of
    /// the MCGC family.
    pub alpha: f64,
    /// Refinement iterations for the dense consensus (each costs
    /// `O(n² k)`: a rank-`k` eigendecomposition of the dense matrix plus a
    /// low-rank self-expression update — the per-iteration complexity
    /// class of the MCGC/MAGC family).
    pub iterations: usize,
    /// Step size of the low-rank refinement.
    pub eta: f64,
    /// Hard cap on `n` for the dense consensus (default 9000 ≈ 0.6 GiB);
    /// beyond it the baseline reports an out-of-memory style failure,
    /// matching the `-` entries in the paper's Table III.
    pub max_dense_n: usize,
    /// Number of anchors for the sampled variant.
    pub anchors: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ConsensusParams {
    fn default() -> Self {
        ConsensusParams {
            alpha: 0.5,
            iterations: 10,
            eta: 0.3,
            max_dense_n: 9000,
            anchors: 256,
            seed: 41,
        }
    }
}

/// Dense consensus similarity operator: `C = S + α S²` with
/// `S = (1/r) Σ (I − Lᵢ)`, exposed as the normalized Laplacian
/// `I − D^{-1/2} C D^{-1/2}` for spectral clustering. Every matvec costs
/// `O(n²)` — the complexity class of the MCGC/MAGC baselines.
struct ConsensusLaplacianOp {
    s: DenseMatrix,
    alpha: f64,
    inv_sqrt_deg: Vec<f64>,
}

impl ConsensusLaplacianOp {
    fn c_matvec(&self, x: &[f64], out: &mut [f64], tmp: &mut [f64]) {
        // out = S x + α S (S x)
        self.s.matvec(x, tmp);
        self.s.matvec(tmp, out);
        for (o, t) in out.iter_mut().zip(tmp.iter()) {
            *o = *t + self.alpha * *o;
        }
    }
}

impl LinOp for ConsensusLaplacianOp {
    fn dim(&self) -> usize {
        self.s.nrows()
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let mut scaled = vec![0.0; n];
        for i in 0..n {
            scaled[i] = x[i] * self.inv_sqrt_deg[i];
        }
        let mut tmp = vec![0.0; n];
        let mut cx = vec![0.0; n];
        self.c_matvec(&scaled, &mut cx, &mut tmp);
        for i in 0..n {
            y[i] = x[i] - self.inv_sqrt_deg[i] * cx[i];
        }
    }

    fn spectral_bound(&self) -> Option<f64> {
        Some(2.0)
    }
}

/// MCGC-like dense consensus clustering: `O(n²)` time and memory.
///
/// # Errors
/// * [`SglaError::InvalidArgument`] with an "out of memory budget" message
///   when `n > max_dense_n` (how the quadratic baselines fail on MAG-scale
///   data);
/// * propagates eigensolver and k-means failures.
pub fn consensus_cluster(
    views: &ViewLaplacians,
    k: usize,
    params: &ConsensusParams,
) -> Result<Vec<usize>> {
    let n = views.n();
    if n > params.max_dense_n {
        return Err(SglaError::InvalidArgument(format!(
            "consensus baseline out of memory budget: n = {n} > {}",
            params.max_dense_n
        )));
    }
    // S = (1/r) Σ (I − Lᵢ), densified.
    let mut s = DenseMatrix::zeros(n, n);
    let r = views.r();
    for l in views.laplacians() {
        for (i, j, v) in l.iter() {
            let contrib = if i == j { 1.0 - v } else { -v };
            s[(i, j)] += contrib / r as f64;
        }
    }
    // Iterative low-rank self-expression refinement, the per-iteration
    // workload of the consensus-graph family: rank-k eigendecomposition of
    // the (normalized) dense consensus + blend of the rank-k
    // reconstruction back into S.
    for it in 0..params.iterations {
        let op = normalized_consensus_op(&s, params.alpha);
        let mut eig_opts = EigOptions::default();
        eig_opts.seed = params.seed.wrapping_add(it as u64);
        eig_opts.tol = 1e-6;
        let pairs = smallest_eigenpairs(&op, k, &eig_opts)?;
        // Rank-k reconstruction of the similarity: Σ (1 − λ_c) u_c u_cᵀ.
        // Blend, clamp to nonnegative, re-symmetrize.
        let u = &pairs.vectors;
        for i in 0..n {
            for j in 0..n {
                let mut rec = 0.0;
                for (c, &lam) in pairs.values.iter().enumerate() {
                    rec += (1.0 - lam).max(0.0) * u[(i, c)] * u[(j, c)];
                }
                let blended = (1.0 - params.eta) * s[(i, j)] + params.eta * rec;
                s[(i, j)] = blended.max(0.0);
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (s[(i, j)] + s[(j, i)]);
                s[(i, j)] = avg;
                s[(j, i)] = avg;
            }
            s[(i, i)] = 0.0;
        }
    }
    let op = normalized_consensus_op(&s, params.alpha);
    cluster_operator(&op, k, params.seed)
}

/// Builds the normalized consensus Laplacian operator for the current
/// dense similarity.
fn normalized_consensus_op(s: &DenseMatrix, alpha: f64) -> ConsensusLaplacianOp {
    let n = s.nrows();
    let ones = vec![1.0; n];
    let stub = ConsensusLaplacianOp {
        s: s.clone(),
        alpha,
        inv_sqrt_deg: vec![0.0; n],
    };
    let mut deg = vec![0.0; n];
    let mut tmp = vec![0.0; n];
    stub.c_matvec(&ones, &mut deg, &mut tmp);
    let inv_sqrt_deg: Vec<f64> = deg
        .iter()
        .map(|&d| if d > 1e-12 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    ConsensusLaplacianOp {
        inv_sqrt_deg,
        ..stub
    }
}

/// Anchor-sampled low-rank consensus operator `S = B Bᵀ` where `B` holds
/// the consensus similarity of every node to `s` sampled anchors; matvecs
/// cost `O(ns)` — the linear-time regime of MvAGC.
struct SampledConsensusOp {
    b: DenseMatrix,
    inv_sqrt_deg: Vec<f64>,
}

impl LinOp for SampledConsensusOp {
    fn dim(&self) -> usize {
        self.b.nrows()
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let s = self.b.ncols();
        let mut scaled = vec![0.0; n];
        for i in 0..n {
            scaled[i] = x[i] * self.inv_sqrt_deg[i];
        }
        // t = Bᵀ scaled
        let mut t = vec![0.0; s];
        for i in 0..n {
            let row = self.b.row(i);
            let si = scaled[i];
            if si == 0.0 {
                continue;
            }
            for (tj, &bij) in t.iter_mut().zip(row) {
                *tj += bij * si;
            }
        }
        // y = x − D^{-1/2} B t
        for i in 0..n {
            let row = self.b.row(i);
            let bx = vecops::dot(row, &t);
            y[i] = x[i] - self.inv_sqrt_deg[i] * bx;
        }
    }

    fn spectral_bound(&self) -> Option<f64> {
        // S = BBᵀ is entrywise nonnegative and D^{-1/2} S D^{-1/2} is
        // similar to the row-stochastic D^{-1} S, so spec ⊆ [0, 2].
        Some(2.0)
    }
}

/// MvAGC-like anchor-sampled consensus clustering: linear time/memory,
/// lossier than the dense consensus (it sees similarity only through the
/// sampled anchor columns).
///
/// # Errors
/// [`SglaError::InvalidArgument`] if there are fewer nodes than anchors
/// requested would allow (`anchors` is clamped to `n`); propagates
/// eigensolver and k-means failures.
pub fn sampled_consensus_cluster(
    views: &ViewLaplacians,
    k: usize,
    params: &ConsensusParams,
) -> Result<Vec<usize>> {
    let n = views.n();
    let s = params.anchors.clamp(k.max(2), n);
    let mut rng = StdRng::seed_from_u64(params.seed);
    // Sample distinct anchors.
    let mut anchor_of: Vec<Option<usize>> = vec![None; n];
    let mut count = 0usize;
    while count < s {
        let a = rng.gen_range(0..n);
        if anchor_of[a].is_none() {
            anchor_of[a] = Some(count);
            count += 1;
        }
    }
    // B[i, j] = consensus similarity of node i to anchor j:
    // (1/r) Σ_v (I − L_v)[i, anchor_j].
    let r = views.r();
    let mut b = DenseMatrix::zeros(n, s);
    for l in views.laplacians() {
        for (i, j, v) in l.iter() {
            if let Some(aj) = anchor_of[j] {
                let contrib = if i == j { 1.0 - v } else { -v };
                b[(i, aj)] += contrib / r as f64;
            }
        }
    }
    // Clamp tiny negatives from numerical noise so S stays nonnegative.
    for v in b.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    // Degrees d = B (Bᵀ 1).
    let ones = vec![1.0; n];
    let mut bt1 = vec![0.0; s];
    for i in 0..n {
        for (tj, &bij) in bt1.iter_mut().zip(b.row(i)) {
            *tj += bij * ones[i];
        }
    }
    let deg: Vec<f64> = (0..n).map(|i| vecops::dot(b.row(i), &bt1)).collect();
    let inv_sqrt_deg: Vec<f64> = deg
        .iter()
        .map(|&d| if d > 1e-12 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let op = SampledConsensusOp { b, inv_sqrt_deg };
    cluster_operator(&op, k, params.seed)
}

fn cluster_operator(op: &dyn LinOp, k: usize, seed: u64) -> Result<Vec<usize>> {
    let mut eig_opts = EigOptions::default();
    eig_opts.seed = seed;
    let pairs = smallest_eigenpairs(op, k, &eig_opts)?;
    let mut u = pairs.vectors;
    let n = u.nrows();
    for i in 0..n {
        let row = u.row_mut(i);
        let nrm = vecops::norm2(row);
        if nrm > 1e-12 {
            let inv = 1.0 / nrm;
            for v in row {
                *v *= inv;
            }
        }
    }
    let mut km = KMeansParams::new(k);
    km.seed = seed;
    Ok(kmeans(&u, &km)?.labels)
}

/// PANE-substitute embedding baseline: randomized SVD of the concatenated
/// attribute views (positional stand-in for attributed network embedding
/// baselines applied with concatenated attributes, per the paper's
/// baseline protocol). Graph structure is ignored — exactly the weakness
/// SGLA's integration addresses.
///
/// # Errors
/// [`SglaError::InvalidArgument`] if the MVAG has no attribute views;
/// propagates SVD failures.
pub fn attribute_svd_embedding(mvag: &Mvag, dim: usize, seed: u64) -> Result<DenseMatrix> {
    let attrs: Vec<&DenseMatrix> = mvag
        .views()
        .iter()
        .filter_map(|v| match v {
            View::Attributes(x) => Some(x),
            View::Graph(_) => None,
        })
        .collect();
    if attrs.is_empty() {
        return Err(SglaError::InvalidArgument(
            "attribute_svd_embedding needs at least one attribute view".into(),
        ));
    }
    let n = mvag.n();
    let total_d: usize = attrs.iter().map(|x| x.ncols()).sum();
    let mut concat = DenseMatrix::zeros(n, total_d);
    let mut off = 0usize;
    for x in attrs {
        for i in 0..n {
            concat.row_mut(i)[off..off + x.ncols()].copy_from_slice(x.row(i));
        }
        off += x.ncols();
    }
    let rank = dim.min(n.saturating_sub(1)).min(total_d).max(1);
    let svd = mvag_sparse::svd::rsvd(
        &concat,
        rank,
        &mvag_sparse::svd::RsvdOptions {
            seed,
            ..Default::default()
        },
    )?;
    let mut emb = svd.u;
    for j in 0..rank {
        let s = svd.s[j].max(0.0).sqrt();
        for i in 0..n {
            emb[(i, j)] *= s;
        }
    }
    Ok(emb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvag_graph::toy::{figure1_example, figure2_example, toy_mvag};

    fn toy_views() -> (Mvag, ViewLaplacians) {
        let mvag = toy_mvag(150, 2, 8);
        let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        (mvag, views)
    }

    fn agreement2(a: &[usize], b: &[usize]) -> f64 {
        let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
        let flip = a.len() - same;
        same.max(flip) as f64 / a.len() as f64
    }

    #[test]
    fn single_view_and_equal_weights() {
        let (_, views) = toy_views();
        let l0 = single_view(&views, 0).unwrap();
        assert_eq!(&l0, &views.laplacians()[0]);
        assert!(single_view(&views, 5).is_err());
        let eq = equal_weights(&views).unwrap();
        assert!(eq.is_symmetric(1e-10));
        // Equal weights = aggregate with 1/r.
        let manual = views.aggregate(&[1.0 / 3.0; 3]).unwrap();
        assert_eq!(eq, manual);
    }

    #[test]
    fn single_objective_modes_run() {
        let views = ViewLaplacians::build(&figure2_example(), &KnnParams::default()).unwrap();
        for mode in [ObjectiveMode::EigengapOnly, ObjectiveMode::ConnectivityOnly] {
            let out = single_objective(&views, 2, mode, &SglaParams::default()).unwrap();
            assert_eq!(out.weights.len(), 2);
            assert!(out.objective.is_finite());
        }
    }

    #[test]
    fn graph_agg_produces_valid_laplacian() {
        let mvag = figure1_example();
        let l = graph_agg(
            &mvag,
            &KnnParams {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(l.nrows(), 8);
        assert!(l.is_symmetric(1e-10));
        // Normalized Laplacian diagonal of non-isolated nodes is 1.
        for d in l.diag() {
            assert!((0.0..=1.0 + 1e-12).contains(&d));
        }
    }

    #[test]
    fn consensus_recovers_planted_clusters() {
        let (mvag, views) = toy_views();
        let labels = consensus_cluster(&views, 2, &ConsensusParams::default()).unwrap();
        let truth = mvag.labels().unwrap();
        assert!(
            agreement2(&labels, truth) > 0.85,
            "agreement = {}",
            agreement2(&labels, truth)
        );
    }

    #[test]
    fn consensus_respects_memory_budget() {
        let (_, views) = toy_views();
        let params = ConsensusParams {
            max_dense_n: 50,
            ..Default::default()
        };
        let err = consensus_cluster(&views, 2, &params).unwrap_err();
        assert!(err.to_string().contains("memory budget"), "{err}");
    }

    #[test]
    fn sampled_consensus_runs_and_is_reasonable() {
        let (mvag, views) = toy_views();
        let params = ConsensusParams {
            anchors: 64,
            ..Default::default()
        };
        let labels = sampled_consensus_cluster(&views, 2, &params).unwrap();
        let truth = mvag.labels().unwrap();
        assert_eq!(labels.len(), 150);
        // Lossier than dense consensus but far better than random.
        assert!(
            agreement2(&labels, truth) > 0.7,
            "agreement = {}",
            agreement2(&labels, truth)
        );
    }

    #[test]
    fn attribute_svd_embedding_works() {
        let mvag = figure1_example();
        let emb = attribute_svd_embedding(&mvag, 4, 3).unwrap();
        assert_eq!(emb.nrows(), 8);
        assert!(emb.ncols() <= 4);
        // Graph-only MVAG errors.
        let g_only = figure2_example();
        assert!(attribute_svd_embedding(&g_only, 4, 3).is_err());
    }

    #[test]
    fn cluster_operator_used_by_baselines_validates() {
        let (_, views) = toy_views();
        // k too large propagates from eigensolver/kmeans.
        let params = ConsensusParams::default();
        assert!(consensus_cluster(&views, 200, &params).is_err());
    }
}

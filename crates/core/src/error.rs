//! Error type for the SGLA core.

use mvag_graph::GraphError;
use mvag_optim::OptimError;
use mvag_sparse::SparseError;
use std::fmt;

/// Errors raised by the SGLA pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SglaError {
    /// A linear-algebra kernel failed.
    Sparse(SparseError),
    /// Graph construction/analysis failed.
    Graph(GraphError),
    /// An optimizer failed.
    Optim(OptimError),
    /// Structurally invalid input (k out of range, weight vector length
    /// mismatch, ...).
    InvalidArgument(String),
}

impl fmt::Display for SglaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SglaError::Sparse(e) => write!(f, "linear algebra error: {e}"),
            SglaError::Graph(e) => write!(f, "graph error: {e}"),
            SglaError::Optim(e) => write!(f, "optimization error: {e}"),
            SglaError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for SglaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SglaError::Sparse(e) => Some(e),
            SglaError::Graph(e) => Some(e),
            SglaError::Optim(e) => Some(e),
            SglaError::InvalidArgument(_) => None,
        }
    }
}

impl From<SparseError> for SglaError {
    fn from(e: SparseError) -> Self {
        SglaError::Sparse(e)
    }
}

impl From<GraphError> for SglaError {
    fn from(e: GraphError) -> Self {
        SglaError::Graph(e)
    }
}

impl From<OptimError> for SglaError {
    fn from(e: OptimError) -> Self {
        SglaError::Optim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let s: SglaError = SparseError::NumericalBreakdown("lu").into();
        assert!(s.to_string().contains("linear algebra"));
        let g: SglaError = GraphError::InvalidArgument("x".into()).into();
        assert!(g.to_string().contains("graph"));
        let o: SglaError = OptimError::InvalidArgument("y".into()).into();
        assert!(o.to_string().contains("optimization"));
        use std::error::Error;
        assert!(s.source().is_some());
        assert!(SglaError::InvalidArgument("z".into()).source().is_none());
    }
}

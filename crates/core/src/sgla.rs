//! SGLA — Algorithm 1 of the paper.
//!
//! Direct optimization of the spectrum-guided objective: starting from
//! uniform weights, repeatedly (i) evaluate `h(w)` — one Lanczos solve on
//! the lazily aggregated Laplacian — and (ii) update the first `r − 1`
//! weights with the COBYLA-style optimizer under the simplex constraints
//! `Ω`, until the weight update is negligible (`ε`) or the evaluation
//! budget `T_max` is spent. Returns the MVAG Laplacian `L = Σ wᵢ* Lᵢ`.

use crate::objective::{ObjectiveMode, SglaObjective};
use crate::views::ViewLaplacians;
use crate::{Result, SglaError};
use mvag_optim::cobyla::{cobyla, CobylaParams};
use mvag_optim::simplex::{expand_weights, project_simplex, reduced_simplex_constraints};
use mvag_sparse::eigen::EigOptions;
use mvag_sparse::CsrMatrix;
use std::cell::RefCell;

/// Parameters shared by SGLA and SGLA+ (the paper uses one setting across
/// all datasets: `γ = 0.5`, `ε = 0.001`, `T_max = 50`, `α_r = 0.05`).
#[derive(Debug, Clone)]
pub struct SglaParams {
    /// Regularization coefficient `γ` of Eq. 5.
    pub gamma: f64,
    /// Early-termination threshold `ε` on the weight update (drives the
    /// final trust-region radius of the optimizer).
    pub epsilon: f64,
    /// Maximum number of objective evaluations `T_max` (each Algorithm 1
    /// iteration performs exactly one).
    pub t_max: usize,
    /// Ridge parameter `α_r` of the SGLA+ surrogate regression (Eq. 9).
    pub alpha_r: f64,
    /// Sample-count adjustment `Δs` for SGLA+ (Fig. 10): negative removes
    /// random samples from the canonical `r + 1`, positive adds random
    /// simplex points.
    pub extra_samples: i64,
    /// Objective variant (Fig. 11 ablations).
    pub mode: ObjectiveMode,
    /// Eigensolver options.
    pub eig: EigOptions,
    /// Seed for any randomized component (extra samples, eigensolver start
    /// vectors via `eig.seed`).
    pub seed: u64,
}

impl Default for SglaParams {
    fn default() -> Self {
        SglaParams {
            gamma: 0.5,
            epsilon: 1e-3,
            t_max: 50,
            alpha_r: 0.05,
            extra_samples: 0,
            mode: ObjectiveMode::Full,
            eig: EigOptions::default(),
            seed: 13,
        }
    }
}

/// One recorded objective evaluation (for the convergence study, Fig. 7).
#[derive(Debug, Clone)]
pub struct TracePoint {
    /// 1-based evaluation index.
    pub eval: usize,
    /// Full weight vector at this evaluation.
    pub weights: Vec<f64>,
    /// Objective value `h(w)`.
    pub h: f64,
}

/// The result of an integration run.
#[derive(Debug, Clone)]
pub struct SglaOutcome {
    /// Final view weights `w*` (on the probability simplex).
    pub weights: Vec<f64>,
    /// The materialized MVAG Laplacian `L = Σ wᵢ* Lᵢ`.
    pub laplacian: CsrMatrix,
    /// Objective value at `weights` as assessed by the optimizing model
    /// (exact `h` for SGLA; the surrogate `h_Θ*` minimum for SGLA+).
    pub objective: f64,
    /// Number of *expensive* objective evaluations (eigenvalue solves).
    pub evaluations: usize,
    /// Per-evaluation trace of the expensive objective.
    pub trace: Vec<TracePoint>,
}

/// Algorithm 1: direct spectrum-guided optimization.
#[derive(Debug, Clone)]
pub struct Sgla {
    params: SglaParams,
}

impl Sgla {
    /// Creates the algorithm with the given parameters.
    pub fn new(params: SglaParams) -> Self {
        Sgla { params }
    }

    /// Access to the parameters.
    pub fn params(&self) -> &SglaParams {
        &self.params
    }

    /// Integrates the views into an MVAG Laplacian for `k` clusters.
    ///
    /// # Errors
    /// Propagates objective construction/evaluation and aggregation
    /// failures; the optimizer returning without any successful objective
    /// evaluation surfaces the first underlying error.
    pub fn integrate(&self, views: &ViewLaplacians, k: usize) -> Result<SglaOutcome> {
        let obj = SglaObjective::new(views, k, self.params.gamma, self.params.mode, {
            let mut eig = self.params.eig.clone();
            eig.seed = self.params.seed;
            eig
        })?;
        let r = views.r();
        let p = r - 1;
        let trace: RefCell<Vec<TracePoint>> = RefCell::new(Vec::new());
        let first_error: RefCell<Option<SglaError>> = RefCell::new(None);
        let v0 = vec![1.0 / r as f64; p];
        let constraints = reduced_simplex_constraints(p);
        let eval = |v: &[f64]| -> f64 {
            let mut w = expand_weights(v);
            // Numerical guard: points slightly outside the simplex from
            // trust-region exploration are projected before evaluation.
            project_simplex(&mut w);
            match obj.evaluate(&w) {
                Ok(val) => {
                    let mut t = trace.borrow_mut();
                    let idx = t.len() + 1;
                    t.push(TracePoint {
                        eval: idx,
                        weights: w,
                        h: val.h,
                    });
                    val.h
                }
                Err(e) => {
                    first_error.borrow_mut().get_or_insert(e);
                    f64::INFINITY
                }
            }
        };
        let res = cobyla(
            eval,
            &constraints,
            &v0,
            &CobylaParams {
                rho_start: 0.15,
                rho_end: self.params.epsilon.max(1e-9),
                max_evals: self.params.t_max.max(p + 2),
            },
        )?;
        let trace = trace.into_inner();
        if trace.is_empty() {
            return Err(first_error
                .into_inner()
                .unwrap_or_else(|| SglaError::InvalidArgument("no objective evaluations".into())));
        }
        let mut weights = expand_weights(&res.x);
        project_simplex(&mut weights);
        let laplacian = views.aggregate(&weights)?;
        Ok(SglaOutcome {
            weights,
            laplacian,
            objective: res.fx,
            evaluations: obj.evaluations(),
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::KnnParams;
    use mvag_graph::toy::{figure2_example, toy_mvag};
    use mvag_optim::simplex::is_on_simplex;

    #[test]
    fn integrates_figure2() {
        let views = ViewLaplacians::build(&figure2_example(), &KnnParams::default()).unwrap();
        let out = Sgla::new(SglaParams::default())
            .integrate(&views, 2)
            .unwrap();
        assert!(is_on_simplex(&out.weights, 1e-9), "w = {:?}", out.weights);
        assert_eq!(out.laplacian.nrows(), 8);
        assert!(out.objective.is_finite());
        assert!(out.evaluations >= 3);
        assert!(!out.trace.is_empty());
        // The optimum should not be a pure single view (the paper's Table
        // 2b shows mixed weights dominate corners).
        assert!(
            out.weights.iter().all(|&w| w < 0.999),
            "w = {:?}",
            out.weights
        );
    }

    #[test]
    fn objective_decreases_along_trace() {
        let views = ViewLaplacians::build(&figure2_example(), &KnnParams::default()).unwrap();
        let out = Sgla::new(SglaParams::default())
            .integrate(&views, 2)
            .unwrap();
        let first = out.trace.first().unwrap().h;
        let best = out.trace.iter().map(|t| t.h).fold(f64::INFINITY, f64::min);
        assert!(best <= first + 1e-12);
        assert!((out.objective - best).abs() < 1e-9);
    }

    #[test]
    fn respects_eval_budget() {
        let views = ViewLaplacians::build(&figure2_example(), &KnnParams::default()).unwrap();
        let params = SglaParams {
            t_max: 10,
            ..Default::default()
        };
        let out = Sgla::new(params).integrate(&views, 2).unwrap();
        assert!(out.evaluations <= 12, "evals = {}", out.evaluations);
    }

    #[test]
    fn beats_uniform_weights_on_toy() {
        let mvag = toy_mvag(150, 3, 21);
        let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        let out = Sgla::new(SglaParams::default())
            .integrate(&views, 3)
            .unwrap();
        let obj =
            SglaObjective::new(&views, 3, 0.5, ObjectiveMode::Full, EigOptions::default()).unwrap();
        let uniform = obj.evaluate(&[1.0 / 3.0; 3]).unwrap().h;
        assert!(
            out.objective <= uniform + 1e-9,
            "sgla {} vs uniform {}",
            out.objective,
            uniform
        );
    }

    #[test]
    fn invalid_k_propagates() {
        let views = ViewLaplacians::build(&figure2_example(), &KnnParams::default()).unwrap();
        assert!(Sgla::new(SglaParams::default())
            .integrate(&views, 1)
            .is_err());
        assert!(Sgla::new(SglaParams::default())
            .integrate(&views, 8)
            .is_err());
    }

    #[test]
    fn deterministic() {
        let views = ViewLaplacians::build(&figure2_example(), &KnnParams::default()).unwrap();
        let a = Sgla::new(SglaParams::default())
            .integrate(&views, 2)
            .unwrap();
        let b = Sgla::new(SglaParams::default())
            .integrate(&views, 2)
            .unwrap();
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.evaluations, b.evaluations);
    }
}

//! # mvag-obs — dependency-light tracing for the SGLA workspace
//!
//! A tracing core small enough to live underneath hot numeric kernels:
//!
//! * **RAII spans** ([`span`], [`Span`]) with a thread-local span stack
//!   and monotonic timing. Opening a span when tracing is disabled is a
//!   single relaxed atomic load and nothing else — no allocation, no
//!   clock read, no lock — so instrumented kernels stay unperturbed.
//! * **A lock-striped ring buffer** of completed [`SpanRecord`]s.
//!   Threads hash onto one of [`STRIPES`] independently locked rings,
//!   so concurrent request handlers do not serialize on one mutex; the
//!   ring keeps the most recent [`ring_capacity`] spans and silently
//!   drops the oldest.
//! * **Trace contexts**: every span carries a `trace` id (0 = untraced
//!   background work). The serve layer allocates one id per HTTP
//!   request ([`next_request_id`]) and binds it with [`with_trace`];
//!   cross-thread stages (batcher queue wait, shared kernel passes)
//!   record into a specific trace with [`record`].
//! * **Stage histograms**: every span close also feeds a process-wide
//!   log₂-bucketed duration histogram keyed by span name
//!   ([`stage_snapshot`]), which the serve crate renders as
//!   `sgla_stage_*` Prometheus series.
//! * **Chrome trace-event export**: [`chrome_trace_json`] renders
//!   records as a `chrome://tracing` / Perfetto-loadable JSON document
//!   (`"ph": "X"` complete events with microsecond `ts`/`dur`).
//!
//! The crate has no dependencies, no unsafe code, and no background
//! threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Number of independently locked rings completed spans hash into.
pub const STRIPES: usize = 8;

/// Completed spans kept per stripe; the global ring holds
/// `STRIPES * STRIPE_CAPACITY` records before dropping the oldest.
const STRIPE_CAPACITY: usize = 1024;

/// Log₂ duration buckets per stage histogram: bucket `i` counts
/// durations in `[2^i, 2^(i+1))` microseconds (bucket 0 also absorbs
/// sub-microsecond durations). Matches the serve endpoint histograms.
pub const STAGE_BUCKETS: usize = 36;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is globally enabled. This is the *entire* cost of
/// an instrumented site when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables tracing. Spans opened while enabled
/// still close correctly if tracing is disabled mid-flight.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Process-wide monotonic epoch; all span timestamps are microseconds
/// since the first call.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process tracing epoch.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh nonzero trace id (one per HTTP request in the
/// serve layer; the training CLI uses one per pipeline run).
pub fn next_request_id() -> u64 {
    NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small dense per-thread id (stable for the thread's lifetime);
    /// `ThreadId::as_u64` is unstable, so we mint our own.
    static THREAD_NUM: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    /// Ambient trace id; 0 = untraced.
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
    /// Depth of the thread-local span stack.
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

/// This thread's dense numeric id (used as `tid` in trace events).
pub fn thread_num() -> u64 {
    THREAD_NUM.with(|t| *t)
}

/// The ambient trace id bound by the innermost [`with_trace`] on this
/// thread (0 when none).
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// Runs `f` with `trace` as the ambient trace id on this thread;
/// spans opened inside attach to it. Restores the previous id on exit
/// (including panic unwind via RAII would be nicer, but the closures
/// used here do not continue after a panic, so a plain save/restore
/// is sufficient for the non-panicking path).
pub fn with_trace<R>(trace: u64, f: impl FnOnce() -> R) -> R {
    let prev = CURRENT_TRACE.with(|c| c.replace(trace));
    let out = f();
    CURRENT_TRACE.with(|c| c.set(prev));
    out
}

/// A completed span as stored in the ring buffer.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Trace (request) id; 0 for untraced background work.
    pub trace: u64,
    /// Static span name (e.g. `"serve.backend"`, `"train.eigensolve"`).
    pub name: &'static str,
    /// Start time in microseconds since the process tracing epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth on the opening thread (0 = root).
    pub depth: u16,
    /// Dense id of the thread that recorded the span.
    pub thread: u64,
    /// Attached counters (e.g. eigensolver matvecs/restarts).
    pub counters: Vec<(&'static str, u64)>,
}

struct LiveSpan {
    trace: u64,
    name: &'static str,
    start: Instant,
    start_us: u64,
    depth: u16,
    counters: Vec<(&'static str, u64)>,
}

/// An open RAII span. Dropping it records the duration into the ring
/// buffer and the stage histogram for its name. When tracing was
/// disabled at open time the guard is inert (a `None` inside).
#[must_use = "a span measures the scope it is alive in"]
pub struct Span(Option<LiveSpan>);

/// Opens a span named `name` on the ambient trace. When tracing is
/// disabled this costs one atomic load and returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    span_slow(name, current_trace())
}

/// Opens a span on an explicit trace id regardless of the ambient one
/// (for worker threads that received the id through a job, not a
/// [`with_trace`] scope).
#[inline]
pub fn span_in(trace: u64, name: &'static str) -> Span {
    if !enabled() {
        return Span(None);
    }
    span_slow(name, trace)
}

#[cold]
fn span_slow(name: &'static str, trace: u64) -> Span {
    let depth = DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth.saturating_add(1));
        depth
    });
    let start = Instant::now();
    Span(Some(LiveSpan {
        trace,
        name,
        start,
        start_us: start.duration_since(epoch()).as_micros() as u64,
        depth,
        counters: Vec::new(),
    }))
}

impl Span {
    /// Attaches (or accumulates into) a named counter on this span.
    /// No-op on an inert guard.
    pub fn counter(&mut self, name: &'static str, value: u64) {
        if let Some(live) = &mut self.0 {
            if let Some(slot) = live.counters.iter_mut().find(|(n, _)| *n == name) {
                slot.1 += value;
            } else {
                live.counters.push((name, value));
            }
        }
    }

    /// Whether this guard is actually measuring (tracing was enabled
    /// when it was opened).
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.0.take() else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur_us = live.start.elapsed().as_micros() as u64;
        stage_record(live.name, dur_us);
        push_record(SpanRecord {
            trace: live.trace,
            name: live.name,
            start_us: live.start_us,
            dur_us,
            depth: live.depth,
            thread: thread_num(),
            counters: live.counters,
        });
    }
}

/// Records an already-measured interval into trace `trace` (used for
/// cross-thread stages like batcher queue wait, where the span's open
/// and close happen on different threads). Feeds the stage histogram
/// like a normal span close. No-op when tracing is disabled.
pub fn record(trace: u64, name: &'static str, start_us: u64, dur_us: u64, depth: u16) {
    record_with(trace, name, start_us, dur_us, depth, Vec::new());
}

/// [`record`] with attached counters.
pub fn record_with(
    trace: u64,
    name: &'static str,
    start_us: u64,
    dur_us: u64,
    depth: u16,
    counters: Vec<(&'static str, u64)>,
) {
    if !enabled() {
        return;
    }
    stage_record(name, dur_us);
    push_record(SpanRecord {
        trace,
        name,
        start_us,
        dur_us,
        depth,
        thread: thread_num(),
        counters,
    });
}

// ---------------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------------

fn rings() -> &'static [Mutex<VecDeque<SpanRecord>>; STRIPES] {
    static RINGS: OnceLock<[Mutex<VecDeque<SpanRecord>>; STRIPES]> = OnceLock::new();
    RINGS.get_or_init(|| std::array::from_fn(|_| Mutex::new(VecDeque::new())))
}

/// Total completed spans the ring buffer retains before dropping the
/// oldest.
pub fn ring_capacity() -> usize {
    STRIPES * STRIPE_CAPACITY
}

fn push_record(record: SpanRecord) {
    let stripe = (thread_num() as usize) % STRIPES;
    let mut ring = rings()[stripe].lock().unwrap_or_else(|e| e.into_inner());
    if ring.len() >= STRIPE_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(record);
}

/// Clones every retained span, sorted by start time.
pub fn snapshot() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for stripe in rings() {
        let ring = stripe.lock().unwrap_or_else(|e| e.into_inner());
        out.extend(ring.iter().cloned());
    }
    out.sort_by_key(|r| (r.start_us, r.depth));
    out
}

/// Removes and returns every retained span, sorted by start time.
pub fn drain() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    for stripe in rings() {
        let mut ring = stripe.lock().unwrap_or_else(|e| e.into_inner());
        out.extend(ring.drain(..));
    }
    out.sort_by_key(|r| (r.start_us, r.depth));
    out
}

/// Discards every retained span.
pub fn clear() {
    for stripe in rings() {
        stripe.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

// ---------------------------------------------------------------------------
// Stage histograms
// ---------------------------------------------------------------------------

/// A per-stage duration histogram: log₂ buckets plus count and sum.
struct StageHist {
    name: &'static str,
    buckets: [AtomicU64; STAGE_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

/// Read-mostly registry: span close takes the read lock and scans a
/// short list (one entry per distinct span name in the process).
fn stages() -> &'static RwLock<Vec<&'static StageHist>> {
    static STAGES: OnceLock<RwLock<Vec<&'static StageHist>>> = OnceLock::new();
    STAGES.get_or_init(|| RwLock::new(Vec::new()))
}

fn bucket_of(micros: u64) -> usize {
    let micros = micros.max(1);
    ((63 - micros.leading_zeros()) as usize).min(STAGE_BUCKETS - 1)
}

fn stage_record(name: &'static str, dur_us: u64) {
    let hist = {
        let list = stages().read().unwrap_or_else(|e| e.into_inner());
        list.iter().find(|h| h.name == name).copied()
    };
    let hist = match hist {
        Some(h) => h,
        None => {
            let mut list = stages().write().unwrap_or_else(|e| e.into_inner());
            if let Some(h) = list.iter().find(|h| h.name == name) {
                *h
            } else {
                // One leak per distinct static span name: bounded.
                let h: &'static StageHist = Box::leak(Box::new(StageHist {
                    name,
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    count: AtomicU64::new(0),
                    sum_us: AtomicU64::new(0),
                }));
                list.push(h);
                h
            }
        }
    };
    hist.buckets[bucket_of(dur_us)].fetch_add(1, Ordering::Relaxed);
    hist.count.fetch_add(1, Ordering::Relaxed);
    hist.sum_us.fetch_add(dur_us, Ordering::Relaxed);
}

/// A point-in-time copy of one stage histogram.
#[derive(Debug, Clone)]
pub struct StageSnapshot {
    /// The span name this histogram tracks.
    pub name: &'static str,
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))` µs.
    pub buckets: [u64; STAGE_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed durations in microseconds.
    pub sum_us: u64,
}

/// Snapshots every stage histogram, sorted by name. Counters are
/// cumulative since process start (Prometheus semantics).
pub fn stage_snapshot() -> Vec<StageSnapshot> {
    let list = stages().read().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<StageSnapshot> = list
        .iter()
        .map(|h| StageSnapshot {
            name: h.name,
            buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
            count: h.count.load(Ordering::Relaxed),
            sum_us: h.sum_us.load(Ordering::Relaxed),
        })
        .collect();
    out.sort_by_key(|s| s.name);
    out
}

/// Looks up one stage snapshot by name.
pub fn stage(name: &str) -> Option<StageSnapshot> {
    stage_snapshot().into_iter().find(|s| s.name == name)
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// Renders records as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form), loadable in
/// `chrome://tracing` and Perfetto. Each span becomes one complete
/// (`"ph": "X"`) event with microsecond `ts`/`dur`, `pid` 1, and the
/// recording thread as `tid`; trace id, depth, and span counters ride
/// in `args`.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 128 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json_into(r.name, &mut out);
        out.push_str("\",\"cat\":\"sgla\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.push_str(&r.thread.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&r.start_us.to_string());
        out.push_str(",\"dur\":");
        out.push_str(&r.dur_us.to_string());
        out.push_str(",\"args\":{\"trace\":");
        out.push_str(&r.trace.to_string());
        out.push_str(",\"depth\":");
        out.push_str(&r.depth.to_string());
        for (name, value) in &r.counters {
            out.push_str(",\"");
            escape_json_into(name, &mut out);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping (span names are static identifiers,
/// but the writer must stay correct for any input).
fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global tracing state is process-wide; tests that toggle it run
    /// under this lock so `cargo test`'s parallel runner cannot
    /// interleave them.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_span_is_inert() {
        let _guard = test_lock();
        set_enabled(false);
        clear();
        {
            let mut s = span("test.disabled");
            assert!(!s.is_live());
            s.counter("x", 1);
        }
        assert!(snapshot().iter().all(|r| r.name != "test.disabled"));
    }

    #[test]
    fn span_records_nesting_and_counters() {
        let _guard = test_lock();
        set_enabled(true);
        clear();
        with_trace(7, || {
            let _outer = span("test.outer");
            {
                let mut inner = span("test.inner");
                inner.counter("items", 3);
                inner.counter("items", 2);
            }
        });
        set_enabled(false);
        let records = snapshot();
        let outer = records.iter().find(|r| r.name == "test.outer").unwrap();
        let inner = records.iter().find(|r| r.name == "test.inner").unwrap();
        assert_eq!(outer.trace, 7);
        assert_eq!(inner.trace, 7);
        assert_eq!(inner.depth, outer.depth + 1);
        assert_eq!(inner.counters, vec![("items", 5)]);
        // Inner closed first but starts later and fits inside outer.
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us + 1);
    }

    #[test]
    fn with_trace_restores_previous() {
        let _guard = test_lock();
        assert_eq!(current_trace(), 0);
        with_trace(5, || {
            assert_eq!(current_trace(), 5);
            with_trace(6, || assert_eq!(current_trace(), 6));
            assert_eq!(current_trace(), 5);
        });
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let _guard = test_lock();
        set_enabled(true);
        clear();
        // All from one thread → one stripe → stripe capacity applies.
        for _ in 0..(STRIPE_CAPACITY + 10) {
            record(1, "test.fill", 0, 1, 0);
        }
        set_enabled(false);
        let n = snapshot().iter().filter(|r| r.name == "test.fill").count();
        assert_eq!(n, STRIPE_CAPACITY);
        clear();
    }

    #[test]
    fn stage_histogram_accumulates() {
        let _guard = test_lock();
        set_enabled(true);
        let before = stage("test.stage").map(|s| s.count).unwrap_or(0);
        record(0, "test.stage", 0, 5, 0);
        record(0, "test.stage", 0, 900, 0);
        set_enabled(false);
        let snap = stage("test.stage").unwrap();
        assert_eq!(snap.count, before + 2);
        assert!(snap.sum_us >= 905);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        // 5 µs → bucket 2 ([4,8)); 900 µs → bucket 9 ([512,1024)).
        assert!(snap.buckets[2] >= 1);
        assert!(snap.buckets[9] >= 1);
    }

    #[test]
    fn bucket_of_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), STAGE_BUCKETS - 1);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let records = vec![
            SpanRecord {
                trace: 9,
                name: "phase.a",
                start_us: 10,
                dur_us: 100,
                depth: 0,
                thread: 1,
                counters: vec![("matvecs", 42)],
            },
            SpanRecord {
                trace: 9,
                name: "needs \"escaping\"\n",
                start_us: 20,
                dur_us: 5,
                depth: 1,
                thread: 1,
                counters: vec![],
            },
        ];
        let json = chrome_trace_json(&records);
        assert!(json.starts_with('{'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"matvecs\":42"));
        assert!(json.contains("\\\"escaping\\\""));
        assert!(json.contains("\\n"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn request_ids_are_unique_and_nonzero() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}

//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no network access, so instead of the real
//! `rand` crate the workspace vendors this minimal, deterministic
//! implementation: an xoshiro256** generator behind the familiar
//! `StdRng` / `Rng` / `SeedableRng` names. Only the methods the
//! workspace actually calls are provided (`gen`, `gen_range`,
//! `gen_bool`, `fill`), for the types it calls them with.
//!
//! The streams are high-quality (xoshiro256** passes BigCrush) but are
//! **not** the same streams the real `rand` crate would produce for a
//! given seed; all workspace code treats seeds as opaque reproducibility
//! handles, never as cross-library fixtures, so this is safe.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by rejection-free multiply-shift
/// (Lemire); bias is negligible for the bounds used in this workspace,
/// but we do one widening multiply with rejection for exactness.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty range in gen_range");
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_range {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    };
}

impl_int_range!(usize);
impl_int_range!(u64);
impl_int_range!(u32);

impl SampleRange<i64> for Range<i64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(uniform_below(rng, span) as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; same API, different — but still high-quality — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn ranges_inclusive_and_exclusive() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hit_hi = false;
        for _ in 0..1000 {
            let v = rng.gen_range(0..5usize);
            assert!(v < 5);
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
            hit_hi |= w == 4;
        }
        assert!(hit_hi, "inclusive upper bound never drawn");
        assert_eq!(rng.gen_range(3..4usize), 3);
        assert_eq!(rng.gen_range(2..=2usize), 2);
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

//! Offline shim for the subset of the `criterion` benchmark API this
//! workspace uses: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark is
//! warmed up once and then timed for a fixed number of batches; the
//! mean, minimum, and maximum per-iteration times are printed. That is
//! enough to compare kernels and track regressions by eye, with zero
//! external dependencies. Honors `CRITERION_SHIM_ITERS` (per-batch
//! iteration override) for quick smoke runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the timed closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    /// Total measured nanoseconds across all iterations.
    total_nanos: u128,
}

impl Bencher {
    /// Times `f`, running it repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up (also primes caches/allocations).
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

fn shim_iters() -> u64 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: shim_iters(),
        total_nanos: 0,
    };
    f(&mut b);
    let per_iter = b.total_nanos as f64 / b.iters as f64;
    println!(
        "bench {label:<48} {:>12.1} ns/iter ({} iters)",
        per_iter, b.iters
    );
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed batch size is
    /// controlled by `CRITERION_SHIM_ITERS` instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        std::env::set_var("CRITERION_SHIM_ITERS", "2");
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("f", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("p", 4), &4usize, |b, &n| {
                b.iter(|| ran += n as u32)
            });
            g.finish();
        }
        c.bench_function("standalone", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }
}

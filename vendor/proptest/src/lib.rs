//! Offline shim for the subset of the `proptest` crate API this
//! workspace uses.
//!
//! Provides the [`Strategy`] trait (`prop_map` / `prop_flat_map`),
//! range and tuple strategies, [`collection::vec`], the [`proptest!`]
//! macro and the `prop_assert*` / `prop_assume!` assertion macros.
//!
//! Differences from the real crate, deliberate for an offline shim:
//!
//! * **no shrinking** — a failing case reports its generated inputs via
//!   the panic message (every `prop_assert!` in this workspace already
//!   formats the relevant values), but is not minimized;
//! * **deterministic seeding** — cases derive from a fixed per-test
//!   seed (FNV-1a of the test name), so failures always reproduce.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Minimal deterministic generator for strategies (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from a strategy built from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    };
}

impl_int_strategy!(usize);
impl_int_strategy!(u64);
impl_int_strategy!(u32);
impl_int_strategy!(u16);
impl_int_strategy!(u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start
            .wrapping_add(rng.below(self.end.wrapping_sub(self.start) as u64) as i64)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below((self.end - self.start) as u64) as i32
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Sizes accepted by [`vec()`]: an exact `usize` or a `usize` range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and length `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Number of cases to run per property (shim of the real crate's
    /// much larger config).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Deterministic per-test seed: FNV-1a of the test name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, Strategy, TestRng};
}

/// Defines property tests. Each case samples the argument strategies
/// and runs the body; failures panic with the formatted message (no
/// shrinking in this shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
                for __case in 0..__cfg.cases {
                    let ($($p,)+) = (
                        $($crate::Strategy::sample(&($s), &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..200 {
            let v = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let (a, b) = Strategy::sample(&((0usize..4), (10u64..20)), &mut rng);
            assert!(a < 4 && (10..20).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::new(1);
        let s = collection::vec(0usize..5, 2..6);
        for _ in 0..100 {
            let v = Strategy::sample(&s, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = collection::vec(0usize..5, 3usize);
        assert_eq!(Strategy::sample(&exact, &mut rng).len(), 3);
    }

    #[test]
    fn flat_map_threads_dependencies() {
        let mut rng = TestRng::new(9);
        let s = (2usize..6).prop_flat_map(|n| collection::vec(0..n, n).prop_map(move |v| (n, v)));
        for _ in 0..100 {
            let (n, v) = Strategy::sample(&s, &mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_single_arg(x in 0usize..50) {
            prop_assert!(x < 50);
        }

        #[test]
        fn macro_multi_arg_and_patterns((a, b) in ((0usize..5), (0usize..5)), mut c in 0u64..3) {
            c += 1;
            prop_assert!(a < 5 && b < 5);
            prop_assert!(c >= 1);
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}

//! Offline shim for the subset of the `bytes` crate API this workspace
//! uses: big-endian cursor reads ([`Buf`]), big-endian appends
//! ([`BufMut`]), a cheaply cloneable immutable buffer ([`Bytes`]) and a
//! growable builder ([`BytesMut`]). Semantics (including the big-endian
//! byte order of the `get_*`/`put_*` families) match the real crate so
//! on-disk formats produced before/after any future switch back to the
//! real dependency stay compatible.

#![forbid(unsafe_code)]

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Immutable, cheaply cloneable, sliceable byte buffer with a read
/// cursor (the [`Buf`] methods consume from the front).
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-slice sharing the same backing storage.
    ///
    /// # Panics
    /// If the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&b) => b,
            Bound::Excluded(&b) => b + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&b) => b + 1,
            Bound::Excluded(&b) => b,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the remaining bytes into a new `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// Growable byte buffer builder; freeze into [`Bytes`] when done.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut { vec: Vec::new() }
    }

    /// Empty builder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

macro_rules! get_be {
    ($name:ident, $t:ty, $n:expr) => {
        /// Reads a big-endian value, advancing the cursor.
        ///
        /// # Panics
        /// If fewer than the required bytes remain (match the real
        /// `bytes` crate; callers bounds-check with `remaining`).
        fn $name(&mut self) -> $t {
            let mut raw = [0u8; $n];
            raw.copy_from_slice(self.take($n));
            <$t>::from_be_bytes(raw)
        }
    };
}

/// Cursor reads from the front of a buffer. Byte order is big-endian,
/// as in the real `bytes` crate.
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next `n` bytes as a slice.
    fn take(&mut self, n: usize) -> &[u8];

    /// Advances the cursor without reading.
    fn advance(&mut self, n: usize) {
        self.take(n);
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    get_be!(get_u16, u16, 2);
    get_be!(get_u32, u32, 4);
    get_be!(get_u64, u64, 8);
    get_be!(get_i64, i64, 8);
    get_be!(get_f64, f64, 8);

    /// Consumes `n` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes::from(self.take(n))
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let at = self.start;
        self.start += n;
        &self.data[at..at + n]
    }
}

macro_rules! put_be {
    ($name:ident, $t:ty) => {
        /// Appends a big-endian value.
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.to_be_bytes());
        }
    };
}

/// Appends to the back of a buffer. Byte order is big-endian, as in the
/// real `bytes` crate.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_be!(put_u16, u16);
    put_be!(put_u32, u32);
    put_be!(put_u64, u64);
    put_be!(put_i64, i64);
    put_be!(put_f64, f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_f64(-1234.5678e-9);
        buf.put_slice(b"tail");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 2 + 4 + 8 + 8 + 4);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0xBEEF);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(b.get_f64(), -1234.5678e-9);
        assert_eq!(b.copy_to_bytes(4).to_vec(), b"tail");
        assert!(b.is_empty());
    }

    #[test]
    fn big_endian_layout() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x0102_0304);
        assert_eq!(buf.as_ref(), &[1, 2, 3, 4]);
    }

    #[test]
    fn slice_shares_and_narrows() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mut s = b.slice(2..5);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(s.get_u8(), 2);
        assert_eq!(s.remaining(), 2);
        let half = b.slice(..b.len() / 2);
        assert_eq!(half.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32();
    }
}

//! Quickstart: integrate a multi-view attributed graph with SGLA+ and
//! cluster it.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use sgla::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small synthetic MVAG: two SBM graph views of different quality
    // plus a Gaussian attribute view, three planted communities.
    let mvag = sgla::data::toy_mvag(300, 3, 42);
    println!("dataset: {}", mvag.summary());

    // 1. Build one normalized Laplacian per view (attribute views become
    //    similarity-weighted KNN graphs).
    let views = ViewLaplacians::build(&mvag, &KnnParams::default())?;

    // 2. SGLA+ finds view weights by sampling the spectrum-guided
    //    objective r + 1 times and optimizing a quadratic surrogate.
    let outcome = SglaPlus::new(SglaParams::default()).integrate(&views, mvag.k())?;
    println!(
        "learned view weights: {:?}  ({} objective evaluations)",
        outcome
            .weights
            .iter()
            .map(|w| (w * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        outcome.evaluations
    );

    // 3. The aggregated MVAG Laplacian plugs into classic spectral
    //    clustering.
    let labels = spectral_clustering(&outcome.laplacian, mvag.k(), 7)?;

    // 4. Score against the planted communities.
    let truth = mvag.labels().expect("toy data has ground truth");
    let metrics = ClusterMetrics::compute(&labels, truth)?;
    println!(
        "clustering quality: Acc = {:.3}, NMI = {:.3}, ARI = {:.3}",
        metrics.acc, metrics.nmi, metrics.ari
    );

    // 5. The same Laplacian powers node embedding.
    let embedding = embed(
        &outcome.laplacian,
        &EmbedParams {
            dim: 32,
            ..Default::default()
        },
    )?;
    println!(
        "embedding: {} nodes x {} dims",
        embedding.nrows(),
        embedding.ncols()
    );
    Ok(())
}

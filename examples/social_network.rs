//! Social-network community detection across platforms.
//!
//! The paper's motivating scenario: the same people are connected on
//! several platforms (one graph view per platform) and carry profile
//! features (attribute views). Views differ wildly in how much community
//! signal they carry; SGLA's learned weights expose which platforms
//! matter.
//!
//! ```bash
//! cargo run --release --example social_network
//! ```

use sgla::data::by_name;
use sgla::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The RM (Reality Mining) simulation: 10 proximity/communication
    // graph views of very different quality + one feature view.
    let spec = by_name("rm").expect("registry contains rm");
    let mvag = spec.generate(1.0, 11)?;
    println!("dataset: {}", mvag.summary());

    let knn = KnnParams {
        k: spec.effective_knn(mvag.n()),
        ..Default::default()
    };
    let views = ViewLaplacians::build(&mvag, &knn)?;

    // Integrate with both algorithms and compare their view weights.
    let sgla = Sgla::new(SglaParams::default()).integrate(&views, mvag.k())?;
    let plus = SglaPlus::new(SglaParams::default()).integrate(&views, mvag.k())?;

    println!("\nper-view weights (which platforms carry community signal):");
    println!("view  kind       SGLA    SGLA+");
    for i in 0..views.r() {
        let kind = if views.is_graph_view(i) {
            "graph"
        } else {
            "attrs"
        };
        println!(
            "{:>4}  {:<9}  {:.3}   {:.3}",
            i + 1,
            kind,
            sgla.weights[i],
            plus.weights[i]
        );
    }
    println!(
        "(SGLA used {} objective evaluations, SGLA+ only {})",
        sgla.evaluations, plus.evaluations
    );

    // Cluster with the integrated Laplacian and with the naive equal-
    // weight aggregation, and compare.
    let truth = mvag.labels().expect("simulated data has ground truth");
    let ours = spectral_clustering(&plus.laplacian, mvag.k(), 3)?;
    let equal = sgla::core::baselines::equal_weights(&views)?;
    let naive = spectral_clustering(&equal, mvag.k(), 3)?;
    let m_ours = ClusterMetrics::compute(&ours, truth)?;
    let m_naive = ClusterMetrics::compute(&naive, truth)?;
    println!("\ncommunity recovery (Acc / NMI):");
    println!("  SGLA+ weighting : {:.3} / {:.3}", m_ours.acc, m_ours.nmi);
    println!(
        "  equal weighting : {:.3} / {:.3}",
        m_naive.acc, m_naive.nmi
    );
    Ok(())
}

//! Product embeddings for recommendation.
//!
//! An e-commerce catalogue as an MVAG: a co-purchase graph view plus two
//! product-feature views (the Amazon-photos shape). SGLA+ integrates the
//! views; NetMF embeds the products; nearest neighbours in embedding
//! space act as "customers also bought" candidates, and a logistic probe
//! checks the embedding predicts product categories.
//!
//! ```bash
//! cargo run --release --example recommendation_embedding
//! ```

use mvag_eval::classify::evaluate_embedding;
use mvag_sparse::vecops;
use sgla::data::by_name;
use sgla::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = by_name("amazon-photos").expect("registry contains amazon-photos");
    // Quarter-size catalogue keeps the example fast (~2k products).
    let mvag = spec.generate(0.25, 5)?;
    println!("catalogue: {}", mvag.summary());

    let knn = KnnParams {
        k: spec.effective_knn(mvag.n()),
        ..Default::default()
    };
    let views = ViewLaplacians::build(&mvag, &knn)?;
    let outcome = SglaPlus::new(SglaParams::default()).integrate(&views, mvag.k())?;
    println!(
        "view weights (co-purchase graph, features, seller tags): {:?}",
        outcome
            .weights
            .iter()
            .map(|w| (w * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let embedding = embed(
        &outcome.laplacian,
        &EmbedParams {
            dim: 64,
            ..Default::default()
        },
    )?;

    // "Customers also bought": top-5 cosine neighbours of a product.
    let query = 0usize;
    let mut scored: Vec<(usize, f64)> = (0..embedding.nrows())
        .filter(|&j| j != query)
        .map(|j| (j, vecops::cosine(embedding.row(query), embedding.row(j))))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite similarity"));
    let truth = mvag.labels().expect("simulated data has ground truth");
    println!(
        "\ntop-5 recommendations for product {query} (category {}):",
        truth[query]
    );
    let mut same_cat = 0;
    for &(j, sim) in scored.iter().take(5) {
        println!(
            "  product {j:>5}  similarity {sim:.3}  category {}",
            truth[j]
        );
        if truth[j] == truth[query] {
            same_cat += 1;
        }
    }
    println!("  {same_cat}/5 recommendations share the query's category");

    // Category prediction from the embedding (Table IV protocol).
    let (maf1, mif1) = evaluate_embedding(&embedding, truth, 0.2, 9)?;
    println!("\ncategory classification from embeddings: MaF1 = {maf1:.3}, MiF1 = {mif1:.3}");
    Ok(())
}

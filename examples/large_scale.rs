//! Large-scale integration: the MAG-eng regime.
//!
//! The paper's headline efficiency claim is that SGLA+ integrates
//! million-scale MVAGs where consensus-graph methods run out of memory.
//! This example runs the (scaled) MAG-eng simulation end to end, prints
//! the time/memory budget of each stage, and shows the dense-consensus
//! alternative failing its memory budget.
//!
//! ```bash
//! cargo run --release --example large_scale
//! ```

use sgla::core::baselines::{consensus_cluster, ConsensusParams};
use sgla::core::embedding::{embed, EmbedBackend, EmbedParams};
use sgla::data::by_name;
use sgla::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = by_name("mag-eng").expect("registry contains mag-eng");
    // Half of the default simulation size keeps this example under a
    // minute; pass-through of the full pipeline is identical.
    let t0 = Instant::now();
    let mvag = spec.generate(0.5, 1)?;
    println!(
        "generated {} in {:.1}s (paper-scale original: n = {})",
        mvag.summary(),
        t0.elapsed().as_secs_f64(),
        spec.paper.n
    );

    let t1 = Instant::now();
    let knn = KnnParams {
        k: spec.effective_knn(mvag.n()),
        ..Default::default()
    };
    let views = ViewLaplacians::build(&mvag, &knn)?;
    let nnz: usize = views.laplacians().iter().map(|l| l.nnz()).sum();
    let bytes: usize = views.laplacians().iter().map(|l| l.heap_bytes()).sum();
    println!(
        "view Laplacians: {nnz} nonzeros, {:.1} MiB, built in {:.1}s",
        bytes as f64 / (1024.0 * 1024.0),
        t1.elapsed().as_secs_f64()
    );

    let t2 = Instant::now();
    let outcome = SglaPlus::new(SglaParams::default()).integrate(&views, mvag.k())?;
    println!(
        "SGLA+ integration: {:.1}s with exactly {} objective evaluations (r + 1)",
        t2.elapsed().as_secs_f64(),
        outcome.evaluations
    );

    let t3 = Instant::now();
    let labels = spectral_clustering(&outcome.laplacian, mvag.k(), 5)?;
    let metrics = ClusterMetrics::compute(&labels, mvag.labels().expect("ground truth"))?;
    println!(
        "spectral clustering: {:.1}s, Acc = {:.3}, NMI = {:.3}",
        t3.elapsed().as_secs_f64(),
        metrics.acc,
        metrics.nmi
    );

    // At this size the dense consensus baseline needs n² floats; its
    // memory budget refuses, which is exactly how the quadratic baselines
    // disappear from the paper's large-dataset columns.
    match consensus_cluster(&views, mvag.k(), &ConsensusParams::default()) {
        Err(e) => println!("dense consensus baseline: {e}"),
        Ok(_) => println!("dense consensus baseline unexpectedly fit in budget"),
    }

    // Scalable embedding backend (SketchNE substitute): bottom eigenpairs
    // only, no dense n × n matrix.
    let t4 = Instant::now();
    let embedding = embed(
        &outcome.laplacian,
        &EmbedParams {
            dim: 64,
            backend: EmbedBackend::Spectral,
            ..Default::default()
        },
    )?;
    println!(
        "spectral embedding: {} x {} in {:.1}s",
        embedding.nrows(),
        embedding.ncols(),
        t4.elapsed().as_secs_f64()
    );
    println!("total: {:.1}s", t0.elapsed().as_secs_f64());
    Ok(())
}

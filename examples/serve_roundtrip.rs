//! Train → save artifact → load → query, then serve the same artifact
//! over HTTP and issue the same queries through the network path.
//!
//! ```bash
//! cargo run --release --example serve_roundtrip
//! ```

use sgla::prelude::*;
use sgla::serve::HttpClient;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train: the full pipeline (view Laplacians → SGLA+ → spectral
    //    clustering → embedding) bundled into one artifact.
    let mvag = sgla::data::toy_mvag(300, 3, 42);
    println!("dataset: {}", mvag.summary());
    let mut config = TrainConfig::default();
    config.embed.dim = 32;
    let artifact = Artifact::train(&mvag, &config)?;

    // 2. Persist and reload — the store is versioned and checksummed,
    //    and the round-trip is bit-exact. Encode once and reuse the
    //    bytes for both the size report and the file write.
    let encoded = artifact.encode()?;
    println!(
        "trained: weights {:?}, {} bytes encoded",
        artifact.weights,
        encoded.len()
    );
    let path = std::env::temp_dir().join("sgla-serve-roundtrip.sgla");
    std::fs::write(&path, encoded.as_ref())?;
    let loaded = Artifact::load(&path)?;
    assert_eq!(artifact, loaded);
    println!("saved + reloaded bit-exact from {}", path.display());

    // 3. Query the engine directly.
    let engine = Arc::new(QueryEngine::new(loaded, EngineConfig::default())?);
    let info = engine.cluster_of(7)?;
    println!(
        "node 7: cluster {} (centroid distance {:.4})",
        info.cluster, info.centroid_dist
    );
    let direct_neighbors = engine.top_k_similar(7, 5)?;
    for nb in &direct_neighbors {
        println!("  neighbour {} score {:.4}", nb.node, nb.score);
    }

    // 4. Serve the same engine over HTTP and repeat the query through
    //    the network path — identical answers.
    let server = Server::start(
        Arc::clone(&engine),
        &ServerConfig {
            addr: "127.0.0.1:0".parse()?,
            ..ServerConfig::default()
        },
    )?;
    println!("serving on http://{}", server.local_addr());
    let mut client = HttpClient::connect(server.local_addr())?;
    let res = client.get("/topk/7?k=5")?;
    assert_eq!(res.status, 200);
    let wire_nodes: Vec<usize> = res
        .body
        .get("neighbors")
        .and_then(|v| v.as_array())
        .map(|arr| {
            arr.iter()
                .filter_map(|nb| nb.get("node").and_then(|n| n.as_usize()))
                .collect()
        })
        .unwrap_or_default();
    let direct_nodes: Vec<usize> = direct_neighbors.iter().map(|nb| nb.node).collect();
    assert_eq!(wire_nodes, direct_nodes);
    println!("HTTP answer matches the direct library call: {wire_nodes:?}");

    let stats = client.get("/stats")?;
    println!(
        "server stats: {} requests so far",
        stats
            .body
            .get("total_requests")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    );

    server.shutdown();
    std::fs::remove_file(&path).ok();
    println!("done");
    Ok(())
}

//! # SGLA — Spectrum-Guided Laplacian Aggregation
//!
//! Facade crate re-exporting the full public API of the SGLA reproduction
//! workspace. Reproduces *"Efficient Integration of Multi-View Attributed
//! Graphs for Clustering and Embedding"* (ICDE 2025).
//!
//! ## Quickstart
//!
//! ```
//! use sgla::prelude::*;
//!
//! // Generate a small synthetic multi-view attributed graph with 2 planted
//! // clusters, integrate its views with SGLA+, and cluster.
//! let mvag = sgla::data::toy_mvag(120, 2, 42);
//! let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
//! let outcome = SglaPlus::new(SglaParams::default())
//!     .integrate(&views, 2)
//!     .unwrap();
//! let labels = spectral_clustering(&outcome.laplacian, 2, 7).unwrap();
//! assert_eq!(labels.len(), 120);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mvag_data as data;
pub use mvag_eval as eval;
pub use mvag_graph as graph;
pub use mvag_index as index;
pub use mvag_optim as optim;
pub use mvag_sparse as sparse;
pub use sgla_core as core;
pub use sgla_serve as serve;

/// Convenience re-exports covering the common pipeline:
/// dataset → view Laplacians → SGLA/SGLA+ → clustering/embedding →
/// metrics → trained artifact → query serving.
pub mod prelude {
    pub use mvag_eval::cluster_metrics::ClusterMetrics;
    pub use mvag_graph::mvag::Mvag;
    pub use sgla_core::clustering::spectral_clustering;
    pub use sgla_core::embedding::{embed, EmbedParams};
    pub use sgla_core::objective::SglaObjective;
    pub use sgla_core::sgla::{Sgla, SglaOutcome, SglaParams};
    pub use sgla_core::sgla_plus::SglaPlus;
    pub use sgla_core::views::{KnnParams, ViewLaplacians};
    pub use sgla_serve::{
        Artifact, EngineConfig, QueryBackend, QueryEngine, RouterConfig, Server, ServerConfig,
        ShardRouter, TrainConfig,
    };
}

//! Cross-crate integration tests: the full SGLA pipeline from dataset
//! generation to evaluated clustering/embedding, plus failure injection.

use sgla::core::baselines::{self, ConsensusParams};
use sgla::core::clustering::{spectral_clustering_with, Rounding, SpectralParams};
use sgla::core::embedding::{embed, EmbedBackend, EmbedParams};
use sgla::core::objective::{ObjectiveMode, SglaObjective};
use sgla::data::{full_registry, toy_mvag};
use sgla::eval::classify::evaluate_embedding;
use sgla::graph::{Graph, Mvag, View};
use sgla::prelude::*;
use sgla::sparse::eigen::EigOptions;
use sgla::sparse::DenseMatrix;

/// The headline end-to-end property: on an MVAG with heterogeneous view
/// quality, the full pipeline recovers the planted partition with high
/// accuracy, and SGLA+ gets there with exactly `r + 1` objective
/// evaluations.
#[test]
fn full_pipeline_recovers_planted_partition() {
    let mvag = toy_mvag(240, 3, 17);
    let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
    let outcome = SglaPlus::new(SglaParams::default())
        .integrate(&views, mvag.k())
        .unwrap();
    assert_eq!(outcome.evaluations, views.r() + 1);
    let labels = spectral_clustering(&outcome.laplacian, mvag.k(), 5).unwrap();
    let metrics = ClusterMetrics::compute(&labels, mvag.labels().unwrap()).unwrap();
    assert!(metrics.acc > 0.85, "acc = {}", metrics.acc);
    assert!(metrics.nmi > 0.5, "nmi = {}", metrics.nmi);
}

/// SGLA and SGLA+ find similar weights on the same instance (the paper's
/// Fig. 3 claim: the surrogate's optimum is near the true optimum).
#[test]
fn sgla_and_sgla_plus_agree_roughly() {
    let mvag = toy_mvag(200, 2, 23);
    let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
    let a = Sgla::new(SglaParams::default())
        .integrate(&views, 2)
        .unwrap();
    let b = SglaPlus::new(SglaParams::default())
        .integrate(&views, 2)
        .unwrap();
    // Compare through the true objective rather than raw weights (the
    // surface can be flat around the optimum).
    let obj =
        SglaObjective::new(&views, 2, 0.5, ObjectiveMode::Full, EigOptions::default()).unwrap();
    let ha = obj.evaluate(&a.weights).unwrap().h;
    let hb = obj.evaluate(&b.weights).unwrap().h;
    assert!(
        (ha - hb).abs() < 0.2 * (1.0 + ha.abs()),
        "h(w*) = {ha} vs h(w†) = {hb}"
    );
}

/// Both rounding schemes of the spectral clustering stage work on the
/// integrated Laplacian.
#[test]
fn clustering_roundings_consistent() {
    let mvag = toy_mvag(180, 2, 31);
    let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
    let outcome = SglaPlus::new(SglaParams::default())
        .integrate(&views, 2)
        .unwrap();
    let truth = mvag.labels().unwrap();
    for rounding in [Rounding::KMeans, Rounding::Discretize] {
        let params = SpectralParams {
            rounding,
            ..Default::default()
        };
        let out = spectral_clustering_with(&outcome.laplacian, 2, &params).unwrap();
        let m = ClusterMetrics::compute(&out.labels, truth).unwrap();
        assert!(m.acc > 0.8, "{rounding:?}: acc = {}", m.acc);
    }
}

/// Both embedding backends yield classifiable embeddings from the same
/// integrated Laplacian.
#[test]
fn embedding_backends_classifiable() {
    let mvag = toy_mvag(220, 2, 37);
    let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
    let outcome = SglaPlus::new(SglaParams::default())
        .integrate(&views, 2)
        .unwrap();
    let truth = mvag.labels().unwrap();
    for backend in [EmbedBackend::NetMf, EmbedBackend::Spectral] {
        let emb = embed(
            &outcome.laplacian,
            &EmbedParams {
                dim: 8,
                backend,
                ..Default::default()
            },
        )
        .unwrap();
        let (maf1, mif1) = evaluate_embedding(&emb, truth, 0.2, 3).unwrap();
        // The spectral backend (SketchNE substitute) trades quality for
        // scalability; NetMF should be clearly better than chance and the
        // spectral one still usable.
        let floor = if backend == EmbedBackend::NetMf {
            0.8
        } else {
            0.7
        };
        assert!(mif1 > floor, "{backend:?}: micro-f1 = {mif1}");
        assert!(maf1 > floor - 0.1, "{backend:?}: macro-f1 = {maf1}");
    }
}

/// Every registry dataset generates and integrates at miniature scale —
/// the exhaustive smoke test of the whole substrate stack.
#[test]
fn registry_datasets_integrate_miniature() {
    for spec in full_registry() {
        let scale = (260.0 / spec.n as f64).min(1.0);
        let mvag = spec.generate(scale, 3).unwrap();
        let knn = KnnParams {
            k: spec.effective_knn(mvag.n()).min(8),
            ..Default::default()
        };
        let views = ViewLaplacians::build(&mvag, &knn)
            .unwrap_or_else(|e| panic!("{}: views failed: {e}", spec.name));
        let out = SglaPlus::new(SglaParams::default())
            .integrate(&views, mvag.k())
            .unwrap_or_else(|e| panic!("{}: integrate failed: {e}", spec.name));
        assert_eq!(out.weights.len(), spec.r(), "{}", spec.name);
        assert!(
            out.weights.iter().sum::<f64>() > 0.99,
            "{}: weights {:?}",
            spec.name,
            out.weights
        );
        let labels = spectral_clustering(&out.laplacian, mvag.k(), 7)
            .unwrap_or_else(|e| panic!("{}: clustering failed: {e}", spec.name));
        assert_eq!(labels.len(), mvag.n());
    }
}

/// Failure injection: a view whose graph is completely disconnected from
/// the community structure (isolated nodes + wrong components) must not
/// break the pipeline; SGLA should still produce a valid partition.
#[test]
fn tolerates_degenerate_views() {
    let good = toy_mvag(150, 2, 41);
    // Replace one view with an edgeless graph (all isolated nodes).
    let mut views_list: Vec<View> = good.views().to_vec();
    views_list[1] = View::Graph(Graph::from_unweighted_edges(150, &[]).unwrap());
    let mvag = Mvag::new(
        "degenerate",
        views_list,
        good.labels().map(<[usize]>::to_vec),
        2,
    )
    .unwrap();
    let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
    let out = SglaPlus::new(SglaParams::default())
        .integrate(&views, 2)
        .unwrap();
    let labels = spectral_clustering(&out.laplacian, 2, 3).unwrap();
    let m = ClusterMetrics::compute(&labels, mvag.labels().unwrap()).unwrap();
    // The two informative views should still carry the day.
    assert!(m.acc > 0.8, "acc = {}", m.acc);
}

/// r = 2 edge case end to end (minimum view count).
#[test]
fn two_view_mvag_end_to_end() {
    let base = toy_mvag(160, 2, 43);
    let views_list: Vec<View> = base.views()[..2].to_vec();
    let mvag = Mvag::new(
        "two-view",
        views_list,
        base.labels().map(<[usize]>::to_vec),
        2,
    )
    .unwrap();
    let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
    for run in [
        Sgla::new(SglaParams::default()).integrate(&views, 2),
        SglaPlus::new(SglaParams::default()).integrate(&views, 2),
    ] {
        let out = run.unwrap();
        assert_eq!(out.weights.len(), 2);
        let labels = spectral_clustering(&out.laplacian, 2, 3).unwrap();
        assert_eq!(labels.len(), 160);
    }
}

/// Dataset persistence round-trips through both codecs and the loaded
/// MVAG produces identical integration results.
#[test]
fn persistence_preserves_pipeline_results() {
    let mvag = toy_mvag(120, 2, 47);
    let dir = std::env::temp_dir().join("sgla-integration-io");
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("toy.json");
    let bin_path = dir.join("toy.mvag");
    sgla::data::io::save_json(&mvag, &json_path).unwrap();
    sgla::data::io::save_binary(&mvag, &bin_path).unwrap();
    let from_json = sgla::data::io::load_json(&json_path).unwrap();
    let from_bin = sgla::data::io::load_binary(&bin_path).unwrap();
    assert_eq!(mvag, from_json);
    assert_eq!(mvag, from_bin);
    let views_a = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
    let views_b = ViewLaplacians::build(&from_bin, &KnnParams::default()).unwrap();
    let wa = SglaPlus::new(SglaParams::default())
        .integrate(&views_a, 2)
        .unwrap()
        .weights;
    let wb = SglaPlus::new(SglaParams::default())
        .integrate(&views_b, 2)
        .unwrap()
        .weights;
    assert_eq!(wa, wb);
    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&bin_path).ok();
}

/// The consensus baselines' contrasting failure modes: the dense one
/// respects its memory budget, the sampled one scales but is lossier.
#[test]
fn consensus_baseline_contrast() {
    let mvag = toy_mvag(200, 2, 51);
    let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
    let tight = ConsensusParams {
        max_dense_n: 100,
        ..Default::default()
    };
    assert!(baselines::consensus_cluster(&views, 2, &tight).is_err());
    let ok = baselines::sampled_consensus_cluster(&views, 2, &ConsensusParams::default());
    assert_eq!(ok.unwrap().len(), 200);
}

/// The objective rejects invalid weight vectors gracefully throughout the
/// stack (no panics on misuse).
#[test]
fn misuse_produces_errors_not_panics() {
    let mvag = toy_mvag(100, 2, 53);
    let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
    assert!(views.aggregate(&[0.5]).is_err());
    assert!(views.aggregate(&[f64::NAN, 0.5, 0.5]).is_err());
    assert!(SglaPlus::new(SglaParams::default())
        .integrate(&views, 0)
        .is_err());
    assert!(SglaPlus::new(SglaParams::default())
        .integrate(&views, 1)
        .is_err());
    assert!(spectral_clustering(&views.laplacians()[0], 101, 3).is_err());
    let tiny = DenseMatrix::zeros(3, 0);
    assert!(sgla::core::kmeans::kmeans(&tiny, &sgla::core::kmeans::KMeansParams::new(2)).is_err());
}

/// Weights returned by the optimizers always live on the probability
/// simplex — across datasets, seeds, and parameter settings.
#[test]
fn weights_always_on_simplex() {
    use sgla::optim::simplex::is_on_simplex;
    for seed in [1u64, 9, 77] {
        let mvag = toy_mvag(130, 2, seed);
        let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        for gamma in [-1.0, 0.0, 0.5, 2.0] {
            let params = SglaParams {
                gamma,
                seed,
                ..Default::default()
            };
            let a = Sgla::new(params.clone()).integrate(&views, 2).unwrap();
            let b = SglaPlus::new(params).integrate(&views, 2).unwrap();
            assert!(is_on_simplex(&a.weights, 1e-9), "SGLA {:?}", a.weights);
            assert!(is_on_simplex(&b.weights, 1e-9), "SGLA+ {:?}", b.weights);
        }
    }
}

/// The documented complexity behaviour: SGLA+'s evaluation count is r + 1
/// regardless of dataset size, while SGLA's grows with its optimization
/// trajectory (bounded by T_max).
#[test]
fn evaluation_count_contract() {
    for (n, seed) in [(100usize, 3u64), (300, 5)] {
        let mvag = toy_mvag(n, 2, seed);
        let views = ViewLaplacians::build(&mvag, &KnnParams::default()).unwrap();
        let plus = SglaPlus::new(SglaParams::default())
            .integrate(&views, 2)
            .unwrap();
        assert_eq!(plus.evaluations, views.r() + 1);
        let base = Sgla::new(SglaParams::default())
            .integrate(&views, 2)
            .unwrap();
        assert!(base.evaluations <= SglaParams::default().t_max);
        assert!(base.evaluations > views.r() + 1);
    }
}
